"""E5 (extension) — mapping-heuristic sweep under the robustness metric.

Motivated by the paper's framing ("how to determine a mapping ... so as to
maximize robustness"): evaluate every heuristic on the E1 workload for
makespan AND robustness, against the 1000-random-mapping baseline.  Shape
claims: makespan-oriented heuristics beat random on makespan; the
robustness-objective variants beat their makespan-oriented counterparts on
the metric.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.generators import random_assignments
from repro.alloc.heuristics import HEURISTICS, min_min
from repro.alloc.makespan import batch_makespan, load_balance_index, makespan
from repro.alloc.robustness import batch_robustness, robustness
from repro.etcgen import cvb_etc_matrix
from repro.utils.tables import format_table

SEED = 2003
TAU = 1.2


@pytest.fixture(scope="module")
def etc():
    return cvb_etc_matrix(20, 5, seed=SEED)


@pytest.fixture(scope="module")
def sweep(etc, save_report):
    rows = []
    results = {}
    for name in sorted(HEURISTICS):
        mapping = HEURISTICS[name](etc, seed=0)
        ms = makespan(mapping, etc)
        rho = robustness(mapping, etc, TAU).value
        lbi = load_balance_index(mapping, etc)
        results[name] = (ms, rho)
        rows.append([name, ms, rho, lbi])
    rand = random_assignments(1000, 20, 5, seed=SEED + 1)
    rand_ms = batch_makespan(rand, etc)
    rand_rho = batch_robustness(rand, etc, TAU)
    rows.append(["random (mean of 1000)", rand_ms.mean(), rand_rho.mean(), float("nan")])
    results["random"] = (float(rand_ms.mean()), float(rand_rho.mean()))
    save_report(
        "heuristics",
        format_table(
            ["heuristic", "makespan", "robustness (tau=1.2)", "load balance"],
            rows,
            title="=== E5 — heuristic sweep on the E1 workload ===",
        ),
    )
    return results


def test_makespan_heuristics_beat_random(sweep):
    rand_ms = sweep["random"][0]
    for name in ("min_min", "max_min", "mct", "ga", "duplex", "sufferage", "tabu"):
        assert sweep[name][0] < rand_ms, f"{name} should beat random makespan"


def test_robustness_variants_beat_seeds(sweep):
    assert sweep["greedy_robust"][1] >= sweep["min_min"][1] - 1e-12
    assert sweep["robust_mct"][1] >= sweep["random"][1]


def test_bench_heuristic_min_min(etc, sweep, benchmark):
    m = benchmark(min_min, etc)
    assert m.n_tasks == 20


def test_bench_heuristic_ga(etc, benchmark):
    from repro.alloc.heuristics import genetic_algorithm

    benchmark.pedantic(
        genetic_algorithm,
        args=(etc,),
        kwargs={"seed": 0, "generations": 30, "population": 30},
        rounds=3,
        iterations=1,
    )
