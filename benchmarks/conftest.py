"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the experiment pipeline, asserts the paper's qualitative claims (the
"shape"), times the hot computation with pytest-benchmark, and writes the
regenerated table/series to ``benchmarks/out/`` (also echoed to stdout with
``-s``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def save_report():
    """Persist a regenerated report and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[report saved to {path}]")
        return path

    return _save
