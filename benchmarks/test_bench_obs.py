"""Observability overhead benchmark — the <2% disabled-cost budget.

Observability is off by default, so its entire steady-state cost is the
guard that every instrumentation point pays: an ``enabled()`` flag read or a
``maybe_span()`` call that returns the shared null span.  This benchmark

- proves disabled instrumentation is *bit-for-bit inert*: enabling and
  disabling tracing around the same numeric population leaves every radius
  unchanged;
- measures the per-guard cost directly and scales it by a deliberately
  pessimistic count of guards per radius solve, asserting the implied
  overhead fraction stays under the 2% budget from docs/OBSERVABILITY.md;
- measures the enabled-mode cost for the record (not asserted — tracing is
  opt-in, so its cost is a documented price, not a regression);
- lands the numbers in ``benchmarks/out/BENCH_obs.json`` for the regression
  gate.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core.config import SolverConfig
from repro.core.features import FeatureBounds, PerformanceFeature
from repro.core.impact import CallableImpact
from repro.core.perturbation import PerturbationParameter
from repro.engine import RobustnessEngine
from repro.obs import trace as obs_trace

OUT_DIR = Path(__file__).parent / "out"

N_PROBLEMS = 12
GUARD_CALLS = 200_000
REPEATS = 3
MAX_OVERHEAD_FRACTION = 0.02
#: deliberately pessimistic guards-per-solve: the serial path pays roughly
#: half a dozen enabled()/maybe_span() checks per task; we budget for 4x that.
GUARDS_PER_SOLVE = 24

PARAM = PerturbationParameter("pi", np.array([0.5, 0.5]))


def _quad(pi):
    return float(pi @ pi)


def _quad_grad(pi):
    return 2.0 * pi


def _problems(n: int):
    return [
        (
            [
                PerformanceFeature(
                    f"q_{i}",
                    CallableImpact(_quad, grad=_quad_grad, name="quad"),
                    FeatureBounds.upper_only(4.0 + 0.01 * i),
                )
            ],
            PARAM,
        )
        for i in range(n)
    ]


def _engine() -> RobustnessEngine:
    return RobustnessEngine(
        config=SolverConfig(pool_size=0, max_retries=0, cache_size=0)
    )


def _radii(batch) -> list[float]:
    return [r.radius for m in batch for r in m.radii]


def _best_of(repeats: int, fn):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.disable()
    obs.reset_metrics()


def test_disabled_observability_is_bit_for_bit_inert():
    problems = _problems(N_PROBLEMS)
    baseline = _radii(_engine().evaluate_population(problems))
    with obs.observed():
        enabled = _radii(_engine().evaluate_population(problems))
    after = _radii(_engine().evaluate_population(problems))
    assert baseline == enabled == after  # exact float equality


def test_disabled_guard_cost_within_budget():
    problems = _problems(N_PROBLEMS)
    engine = _engine()
    engine.evaluate_population(problems[:2])  # warm numpy/scipy paths

    t_solve, batch = _best_of(
        REPEATS, lambda: engine.evaluate_population(problems)
    )
    assert batch.ok
    per_solve_s = t_solve / N_PROBLEMS

    def guards():
        for _ in range(GUARD_CALLS):
            obs_trace.enabled()
            with obs.maybe_span("bench.guard"):
                pass

    t_guard, _ = _best_of(REPEATS, guards)
    per_guard_s = t_guard / (2 * GUARD_CALLS)

    overhead_fraction = (GUARDS_PER_SOLVE * per_guard_s) / per_solve_s

    with obs.observed():
        t_enabled, _ = _best_of(
            REPEATS, lambda: _engine().evaluate_population(problems)
        )
    enabled_fraction = max(0.0, t_enabled / t_solve - 1.0)

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "n_problems": N_PROBLEMS,
        "per_solve_ms": round(per_solve_s * 1e3, 4),
        "per_guard_ns": round(per_guard_s * 1e9, 1),
        "guards_per_solve_budget": GUARDS_PER_SOLVE,
        "disabled_overhead_fraction": round(overhead_fraction, 6),
        "enabled_overhead_fraction": round(enabled_fraction, 4),
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "repeats": REPEATS,
    }
    out = OUT_DIR / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nobs overhead: guard {per_guard_s * 1e9:.0f} ns, solve "
        f"{per_solve_s * 1e3:.2f} ms, disabled fraction "
        f"{overhead_fraction:.5f} (budget {MAX_OVERHEAD_FRACTION})\n"
        f"[report saved to {out}]"
    )
    assert overhead_fraction < MAX_OVERHEAD_FRACTION, payload
