"""Ablation — closed-form vs generic-framework vs numeric solver, and batch
vs per-mapping evaluation (DESIGN.md Section 6).

All three solver routes compute the same Eq. 7 metric; the ablation
quantifies what the specialization buys:

- closed form (Eq. 6, vectorized)  — the fast path;
- generic FePIA framework          — object-per-feature, analytic solve;
- numeric SLSQP                    — pretending the impacts were nonlinear.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.generators import random_assignments, random_mapping
from repro.alloc.mapping import Mapping
from repro.alloc.robustness import batch_robustness, fepia_analysis, robustness
from repro.core.boundary import boundary_relations
from repro.core.features import FeatureBounds, PerformanceFeature
from repro.core.impact import CallableImpact
from repro.core.perturbation import PerturbationParameter
from repro.core.radius import robustness_radius
from repro.etcgen import cvb_etc_matrix

SEED = 11
TAU = 1.2


@pytest.fixture(scope="module")
def workload():
    etc = cvb_etc_matrix(20, 5, seed=SEED)
    assignments = random_assignments(100, 20, 5, seed=SEED + 1)
    return etc, assignments


def test_all_routes_agree(workload):
    etc, assignments = workload
    mapping = Mapping(assignments[0], 5)
    closed = robustness(mapping, etc, TAU).value
    generic = fepia_analysis(mapping, etc, TAU).value
    assert generic == pytest.approx(closed, rel=1e-9)
    # Numeric route on the binding machine's feature.
    res = robustness(mapping, etc, TAU)
    j = res.critical_machine
    indicator = mapping.indicator_matrix()[j]
    feature = PerformanceFeature(
        "F",
        CallableImpact(lambda c, ind=indicator: float(ind @ c)),
        FeatureBounds(upper=TAU * res.makespan),
    )
    p = PerturbationParameter("C", mapping.executed_times(etc))
    numeric = robustness_radius(feature, p).radius
    assert numeric == pytest.approx(closed, rel=1e-5)


def test_bench_closed_form_batch(workload, benchmark):
    etc, assignments = workload
    out = benchmark(batch_robustness, assignments, etc, TAU)
    assert out.shape == (100,)


def test_bench_closed_form_loop(workload, benchmark):
    etc, assignments = workload
    mappings = [Mapping(a, 5) for a in assignments]

    def loop():
        return [robustness(m, etc, TAU).value for m in mappings]

    out = benchmark(loop)
    np.testing.assert_allclose(out, batch_robustness(assignments, etc, TAU))


def test_bench_generic_fepia(workload, benchmark):
    etc, assignments = workload
    mappings = [Mapping(a, 5) for a in assignments[:10]]

    def generic():
        return [fepia_analysis(m, etc, TAU).value for m in mappings]

    out = benchmark(generic)
    np.testing.assert_allclose(
        out, batch_robustness(assignments[:10], etc, TAU), rtol=1e-9
    )


def test_bench_numeric_solver_single(workload, benchmark):
    etc, _ = workload
    mapping = random_mapping(20, 5, seed=SEED + 2)
    res = robustness(mapping, etc, TAU)
    indicator = mapping.indicator_matrix()[res.critical_machine]
    feature = PerformanceFeature(
        "F",
        CallableImpact(lambda c: float(indicator @ c)),
        FeatureBounds(upper=TAU * res.makespan),
    )
    p = PerturbationParameter("C", mapping.executed_times(etc))

    out = benchmark(robustness_radius, feature, p)
    assert out.radius == pytest.approx(res.value, rel=1e-5)
