"""Benchmark regression gate — tolerance-checked comparison against
committed baselines.

The repo's headline performance wins (the batched engine's order-of-
magnitude speedup over the scalar loop, the lint summary cache's warm-run
speedup, the observability layer's near-zero disabled cost) are recorded as
JSON baselines under ``benchmarks/baselines/``.  The producing benchmarks
write fresh measurements to ``benchmarks/out/BENCH_*.json``; this module
compares the two with generous tolerances so a real regression fails loudly
while ordinary machine-to-machine noise does not.

Run after the producing benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_engine.py \
        benchmarks/test_bench_lint.py benchmarks/test_bench_obs.py \
        benchmarks/test_bench_regression.py

A missing ``out`` file skips its comparison (the producer did not run);
a missing *baseline* is an error — the gate exists to be non-optional.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

BASE_DIR = Path(__file__).parent / "baselines"
OUT_DIR = Path(__file__).parent / "out"

#: (file, metric, direction, tolerance_factor)
#: "higher": fresh >= baseline * factor — protects speedup wins.
#: "lower":  fresh <= max(baseline / factor, absolute_floor) — protects
#: cost budgets without failing on a tiny-but-noisy baseline.
CHECKS = [
    ("BENCH_engine.json", "speedup", "higher", 0.4),
    ("BENCH_engine.json", "shm_speedup_over_process", "higher", 0.7),
    ("BENCH_lint.json", "speedup", "higher", 0.4),
    ("BENCH_lint.json", "concur_files_per_second", "higher", 0.4),
    ("BENCH_lint.json", "perf_files_per_second", "higher", 0.4),
    ("BENCH_obs.json", "disabled_overhead_fraction", "lower", 0.02),
    ("BENCH_resilience.json", "steps_per_second", "higher", 0.3),
    ("BENCH_serve.json", "rps_64", "higher", 0.2),
    # tolerance doubles as the absolute ceiling: the micro-batcher must keep
    # coalescing >2 requests per engine call at 64 clients (the service bar)
    ("BENCH_serve.json", "batching_efficiency_ratio", "lower", 0.5),
]


def _load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize(
    ("name", "metric", "direction", "tolerance"),
    CHECKS,
    ids=[f"{c[0].removesuffix('.json')}-{c[1]}" for c in CHECKS],
)
def test_benchmark_has_not_regressed(name, metric, direction, tolerance):
    baseline_path = BASE_DIR / name
    assert baseline_path.is_file(), (
        f"missing committed baseline {baseline_path} — regenerate it from a "
        f"known-good run and commit it"
    )
    out_path = OUT_DIR / name
    if not out_path.is_file():
        pytest.skip(f"{out_path} absent: run the producing benchmark first")

    baseline = _load(baseline_path)[metric]
    fresh = _load(out_path)[metric]

    if direction == "higher":
        floor = baseline * tolerance
        assert fresh >= floor, (
            f"{name}: {metric} regressed to {fresh} "
            f"(baseline {baseline}, floor {floor:.2f})"
        )
    else:
        # tolerance doubles as the absolute budget for cost-style metrics
        ceiling = max(baseline * 3.0, tolerance)
        assert fresh <= ceiling, (
            f"{name}: {metric} grew to {fresh} "
            f"(baseline {baseline}, ceiling {ceiling:.4f})"
        )


def test_baselines_are_well_formed():
    for name, metric, _, _ in CHECKS:
        doc = _load(BASE_DIR / name)
        assert metric in doc, f"{name} baseline lacks {metric!r}"
        assert doc[metric] > 0
