"""E2 — regenerate Figure 4 (robustness vs slack) for the HiPer-D system
(paper Section 4.3).

Workload: generated 19-path system (3 sensors with the paper's relative
rates, 20 applications, 5 machines, latency limits with the U[750, 1250]
shape, calibrated feasibility — see DESIGN.md), 1000 random mappings at
initial loads (962, 380, 240).

Shape claims checked:
- robustness generally grows with slack, but mappings with nearly equal
  slack differ in robustness by large factors (Table 2 found 3.3x);
- a flat band exists: many mappings share one binding constraint and hence
  (nearly) one robustness value across a range of slacks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.mapping import Mapping
from repro.experiments.experiment2 import (
    find_ab_pair,
    find_flat_band,
    run_experiment_two,
)
from repro.experiments.reporting import report_figure4
from repro.hiperd.robustness import robustness

SEED = 7
N_MAPPINGS = 1000


@pytest.fixture(scope="module")
def result(save_report):
    res = run_experiment_two(n_mappings=N_MAPPINGS, seed=SEED)
    save_report("figure4", report_figure4(res))
    return res


def test_figure4_report(result):
    assert "Figure 4" in report_figure4(result)


def test_figure4_shape_correlation_with_spread(result):
    feas = result.feasible
    assert feas.mean() > 0.6, "calibrated instance should be mostly feasible"
    corr = np.corrcoef(result.slack[feas], result.robustness[feas])[0, 1]
    assert corr > 0.5, "larger slack should generally mean more robust"
    pair = find_ab_pair(result, slack_tolerance=0.01)
    # The paper's instance exhibited 3.3x (Table 2 — reproduced exactly in
    # the E3 benchmark); generated instances show 2.1x-2.9x depending on the
    # seed.  The qualitative claim is a large factor at nearly equal slack.
    assert pair.ratio >= 2.0, (
        "nearly-equal-slack mappings should differ in robustness by a large "
        f"factor (paper's instance: 3.3x); found {pair.ratio:.2f}x"
    )


def test_figure4_flat_band(result):
    """Figure 4's 'same robustness across a slack range' band: the paper saw
    one across slack ~0.2-0.5; generated instances show a narrower but
    clearly visible band."""
    band = find_flat_band(result)
    assert band.size >= 5
    assert band.slack_range > 0.01, (
        "the flat band should span a visible slack range "
        f"(got {band.slack_range:.4f})"
    )


def test_bench_figure4_robustness_sweep(result, benchmark):
    """Time Eq. 11 over 100 mappings (constraint assembly + radii)."""
    system = result.system
    load = result.initial_load
    mappings = [Mapping(row, system.n_machines) for row in result.assignments[:100]]

    def sweep():
        return [robustness(system, m, load).value for m in mappings]

    values = benchmark(sweep)
    np.testing.assert_allclose(values, result.robustness[:100])
