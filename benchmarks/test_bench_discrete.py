"""Ablation — flooring vs exact integer-lattice radii (Section 3.2 / step 4).

The paper handles the discrete sensor-load parameter by treating it
continuously and flooring the metric.  The alternative in step 4's
parenthetical is to work on the integer lattice directly.  This ablation
quantifies the flooring approximation on 2-sensor instances small enough for
exhaustive lattice search: the exact smallest *integer* violating
displacement always lies in ``[continuous radius, floor + sqrt(n)]`` and the
floor is a sound lower bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.mapping import Mapping
from repro.core.impact import AffineImpact
from repro.core.solvers.discrete import floor_radius, lattice_radius
from repro.hiperd.constraints import build_constraints
from repro.hiperd.generators import generate_system, random_hiperd_mappings
from repro.utils.tables import format_table

SEED = 31


@pytest.fixture(scope="module")
def cases():
    """Binding constraints of random 2-sensor HiPer-D mappings, with their
    continuous radii and exact lattice radii."""
    system = generate_system(
        seed=SEED,
        n_sensors=2,
        n_apps=8,
        n_paths=5,
        rates=(4e-5, 3e-5),
        initial_load=(60.0, 40.0),
        target_fraction=0.6,
    )
    lam0 = np.array([60.0, 40.0])
    rows = []
    for m in random_hiperd_mappings(system, 24, seed=SEED + 1):
        cs = build_constraints(system, m)
        gaps = cs.limits - cs.coefficients @ lam0
        norms = np.linalg.norm(cs.coefficients, axis=1)
        with np.errstate(divide="ignore"):
            dists = np.where(norms > 0, gaps / np.where(norms > 0, norms, 1), np.inf)
        k = int(np.argmin(dists))
        cont = float(dists[k])
        if not (0 < cont < 40):  # keep the lattice search tractable
            continue
        imp = AffineImpact(cs.coefficients[k])
        exact = lattice_radius(imp, float(cs.limits[k]), lam0, max_radius=cont + 3.0)
        rows.append((cont, floor_radius(cont), exact))
    assert len(rows) >= 5
    return rows


def test_discrete_report(cases, save_report):
    save_report(
        "discrete_ablation",
        format_table(
            ["continuous radius", "floored (paper)", "exact lattice"],
            [list(r) for r in cases],
            title="=== ablation — flooring vs exact integer-lattice radii ===",
        ),
    )


def test_floor_is_sound_lower_bound(cases):
    """floor(rho) <= exact integer radius: no integer displacement of length
    <= floor(rho) violates."""
    for cont, floored, exact in cases:
        assert floored <= exact + 1e-9


def test_exact_at_least_continuous(cases):
    for cont, _f, exact in cases:
        assert exact >= cont - 1e-9


def test_lattice_gap_bounded(cases):
    """The exact integer radius exceeds the continuous one by at most the
    lattice diameter factor (sqrt(n) + 1 covers rounding to a violating
    integer point in 2-D)."""
    for cont, _f, exact in cases:
        if np.isfinite(exact):
            assert exact <= cont + np.sqrt(2.0) + 1.0


def test_bench_lattice_search(cases, benchmark):
    imp = AffineImpact([3.0, 2.0])
    out = benchmark(lattice_radius, imp, 200.0, np.array([20.0, 20.0]), max_radius=30.0)
    assert np.isfinite(out)
