"""E3 — regenerate Table 2 (mappings A and B) from the reconstructed
instance (paper Section 4.3).

The published computation-time functions, assignments and initial loads are
encoded verbatim; the unpublished DAG/limits are reconstructed as described
in :mod:`repro.hiperd.table2`.  Expected agreement:

- robustness 353 (A) and 1166 (B) — exact;
- boundary loads lambda* (962, 380, 593) and (962, 1546, 240) — exact;
- slack(B) = 0.5914 — exact; slack(A) = 0.5953 vs the paper's 0.5961 (the
  published lambda_3* = 593 forces 1 - 240/593; the 8e-4 gap is a rounding
  inconsistency inside the published table itself).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.reporting import report_table2
from repro.hiperd.robustness import robustness
from repro.hiperd.slack import slack
from repro.hiperd.table2 import PAPER_TABLE2, build_table2_system


@pytest.fixture(scope="module")
def inst():
    return build_table2_system()


@pytest.fixture(scope="module")
def measured(inst, save_report):
    out = {}
    for which, mapping in (("A", inst.mapping_a), ("B", inst.mapping_b)):
        r = robustness(inst.system, mapping, inst.initial_load)
        out[which] = {
            "robustness": r.value,
            "slack": slack(inst.system, mapping, inst.initial_load),
            "lambda_star": tuple(r.boundary),
        }
    save_report("table2", report_table2(out, PAPER_TABLE2))
    return out


def test_table2_report(measured):
    assert "Table 2" in report_table2(measured, PAPER_TABLE2)


def test_table2_robustness_exact(measured):
    assert measured["A"]["robustness"] == PAPER_TABLE2["A"]["robustness"]
    assert measured["B"]["robustness"] == PAPER_TABLE2["B"]["robustness"]


def test_table2_lambda_star_exact(measured):
    for which in ("A", "B"):
        np.testing.assert_allclose(
            measured[which]["lambda_star"],
            PAPER_TABLE2[which]["lambda_star"],
            atol=1e-6,
        )


def test_table2_slack(measured):
    assert measured["B"]["slack"] == pytest.approx(PAPER_TABLE2["B"]["slack"], abs=5e-5)
    # A: forced to 1 - 240/593 by the published lambda* (see module doc).
    assert measured["A"]["slack"] == pytest.approx(1 - 240 / 593, abs=5e-5)
    assert abs(measured["A"]["slack"] - PAPER_TABLE2["A"]["slack"]) < 1e-3


def test_table2_headline_ratio(measured):
    ratio = measured["B"]["robustness"] / measured["A"]["robustness"]
    assert ratio == pytest.approx(3.3, abs=0.05)


def test_bench_table2_evaluation(inst, measured, benchmark):
    """Time the A+B evaluation (constraint assembly + Eq. 11 + slack)."""

    def evaluate():
        out = []
        for m in (inst.mapping_a, inst.mapping_b):
            r = robustness(inst.system, m, inst.initial_load)
            out.append((r.value, slack(inst.system, m, inst.initial_load)))
        return out

    values = benchmark(evaluate)
    assert values[0][0] == 353.0
    assert values[1][0] == 1166.0
