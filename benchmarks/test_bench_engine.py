"""Engine benchmark — batched population evaluation vs the per-mapping loop.

Workload: a GA-sized population of 1000 random mappings (20 applications x
5 machines, CVB-Gamma ETCs, tau = 1.2), the Figure 3 scale.  The engine
evaluates the whole population in one ``(P, m)`` vectorized pass; the
baseline calls the scalar Eq. 6/7 path once per mapping, which is what every
objective evaluation cost before the engine existed.

Claims checked:

- the batched result is *bit-for-bit* equal to the scalar loop;
- the engine is at least 10x faster than the loop on the 1000-mapping
  population (measured min-of-repeats with ``time.perf_counter``; in
  practice the gap is two to three orders of magnitude);
- the HiPer-D stacked pass beats its scalar loop as well (same experiment
  scale as Figure 4);
- every execution backend (serial / thread / process / shm / asyncio) produces
  bit-for-bit identical radii on a 10k numeric-solve population, and the
  shared-memory backend's batched zero-copy dispatch beats the per-task
  process pool on wall time.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.alloc.generators import random_assignments
from repro.alloc.mapping import Mapping
from repro.alloc.robustness import robustness as alloc_robustness
from repro.core import (
    CallableImpact,
    FeatureBounds,
    PerformanceFeature,
    PerturbationParameter,
    SolverConfig,
)
from repro.engine import RobustnessEngine
from repro.engine.backends import BACKEND_NAMES
from repro.engine.fault import solve_radius_tasks_isolated
from repro.etcgen.cvb import cvb_etc_matrix
from repro.hiperd.generators import (
    PAPER_INITIAL_LOAD,
    generate_system,
    random_hiperd_mappings,
)
from repro.hiperd.robustness import robustness as hiperd_robustness

OUT_DIR = Path(__file__).parent / "out"

SEED = 424242
N_MAPPINGS = 1000
N_TASKS = 20
N_MACHINES = 5
TAU = 1.2
MIN_SPEEDUP = 10.0

BACKEND_POP = 10_000
BACKEND_POOL = 2
MIN_SHM_OVER_PROCESS = 1.05


def _update_bench_json(**fields) -> None:
    """Merge *fields* into ``out/BENCH_engine.json`` without clobbering the
    rows other tests in this module may already have written."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_engine.json"
    payload = json.loads(path.read_text(encoding="utf-8")) if path.is_file() else {}
    payload.update(fields)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@pytest.fixture(scope="module")
def population():
    etc = cvb_etc_matrix(N_TASKS, N_MACHINES, seed=SEED)
    assignments = random_assignments(N_MAPPINGS, N_TASKS, N_MACHINES, seed=SEED + 1)
    return etc, assignments


def _scalar_loop(assignments, etc, tau):
    return np.array(
        [
            alloc_robustness(Mapping(a, N_MACHINES), etc, tau).value
            for a in assignments
        ]
    )


def _best_of(repeats: int, fn, *args):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_engine_matches_scalar_loop_bit_for_bit(population):
    etc, assignments = population
    engine = RobustnessEngine()
    batch = engine.evaluate_allocation(assignments, etc, TAU)
    assert np.array_equal(batch.values, _scalar_loop(assignments, etc, TAU))


def test_engine_speedup_on_ga_population(population, save_report):
    """The headline claim: >= 10x over the per-mapping loop at P = 1000."""
    etc, assignments = population
    engine = RobustnessEngine()
    # Warm both paths (imports, allocator) before timing.
    engine.evaluate_allocation(assignments[:10], etc, TAU)
    _scalar_loop(assignments[:10], etc, TAU)

    t_loop, loop_values = _best_of(3, _scalar_loop, assignments, etc, TAU)
    t_engine, batch = _best_of(
        3, engine.evaluate_allocation, assignments, etc, TAU
    )
    speedup = t_loop / t_engine
    save_report(
        "engine_speedup",
        "Engine benchmark: 1000-mapping GA population (Eq. 7)\n"
        f"per-mapping loop : {t_loop * 1e3:9.2f} ms\n"
        f"batched engine   : {t_engine * 1e3:9.2f} ms\n"
        f"speedup          : {speedup:9.1f}x (floor {MIN_SPEEDUP}x)",
    )
    _update_bench_json(
        n_mappings=N_MAPPINGS,
        loop_seconds=round(t_loop, 4),
        engine_seconds=round(t_engine, 4),
        speedup=round(speedup, 2),
        repeats=3,
    )
    assert np.array_equal(batch.values, loop_values)
    assert speedup >= MIN_SPEEDUP, (
        f"engine speedup {speedup:.1f}x below the {MIN_SPEEDUP}x floor "
        f"(loop {t_loop:.4f}s vs engine {t_engine:.4f}s)"
    )


def test_hiperd_engine_faster_than_loop():
    system = generate_system(seed=SEED + 2)
    mappings = random_hiperd_mappings(system, 200, seed=SEED + 3)
    load = np.asarray(PAPER_INITIAL_LOAD, dtype=float)
    engine = RobustnessEngine()
    engine.evaluate_hiperd(system, mappings[:5], load)  # warm up

    def loop():
        return np.array([hiperd_robustness(system, m, load).value for m in mappings])

    t_loop, loop_values = _best_of(3, loop)
    t_engine, batch = _best_of(3, engine.evaluate_hiperd, system, mappings, load)
    assert np.array_equal(batch.values, loop_values)
    # Constraint building dominates both paths; the stacked radii/slack pass
    # still has to win clearly.
    assert t_engine < t_loop


def _quad(x):
    return float(np.dot(x, x))


def _quad_grad(x):
    return 2.0 * np.asarray(x, dtype=float)


def _numeric_tasks(n: int, config: SolverConfig) -> list:
    """*n* cheap numeric radius tasks with distinct perturbation origins so
    the radius cache cannot deduplicate them into a single solve."""
    rng = np.random.default_rng(SEED + 4)
    feature = PerformanceFeature(
        "quad",
        CallableImpact(_quad, grad=_quad_grad, name="quad"),
        FeatureBounds.upper_only(4.0),
    )
    return [
        (feature, PerturbationParameter(f"pi_{i}", rng.uniform(0.2, 0.8, 2)), None, config)
        for i in range(n)
    ]


def test_backend_rows_on_numeric_population(save_report):
    """Time every execution backend on the same 10k numeric-solve population.

    All five backends must agree bit-for-bit, and the shared-memory backend's
    batched dispatch must beat the per-task process pool — that win is the
    reason the backend exists, so it is asserted, not just reported.
    """
    config = SolverConfig(solver="numeric", n_starts=1, seed=SEED, pool_size=BACKEND_POOL)
    tasks = _numeric_tasks(BACKEND_POP, config)
    for name in BACKEND_NAMES:  # warm pools + imports outside the timed runs
        solve_radius_tasks_isolated(tasks[:32], config, backend=name)

    rows: dict[str, float] = {}
    reference = None
    for name in BACKEND_NAMES:
        t0 = time.perf_counter()
        results, records = solve_radius_tasks_isolated(tasks, config, backend=name)
        rows[name] = round(time.perf_counter() - t0, 4)
        assert not records, f"{name}: unexpected failures {records[:3]}"
        radii = [r.radius for r in results]
        if reference is None:
            reference = radii
        else:
            assert radii == reference, f"{name} diverged from serial radii"

    shm_speedup = round(rows["process"] / rows["shm"], 2)
    _update_bench_json(
        backend_population=BACKEND_POP,
        backend_pool_size=BACKEND_POOL,
        backends=rows,
        shm_speedup_over_process=shm_speedup,
    )
    lines = "\n".join(f"{name:8s}: {rows[name] * 1e3:10.1f} ms" for name in BACKEND_NAMES)
    save_report(
        "engine_backends",
        f"Backend rows: {BACKEND_POP} numeric solves, pool_size={BACKEND_POOL}\n"
        f"{lines}\n"
        f"shm over process : {shm_speedup:.2f}x (floor {MIN_SHM_OVER_PROCESS}x)",
    )
    assert shm_speedup >= MIN_SHM_OVER_PROCESS, (
        f"shared-memory backend no longer beats the process pool "
        f"({rows['shm']:.3f}s vs {rows['process']:.3f}s)"
    )


def test_bench_engine_allocation(population, benchmark):
    """pytest-benchmark timing of the batched path (for the saved report)."""
    etc, assignments = population
    engine = RobustnessEngine()
    batch = benchmark(engine.evaluate_allocation, assignments, etc, TAU)
    assert batch.values.shape == (N_MAPPINGS,)
