"""Load benchmark for the robustness service: throughput, latency, coalescing.

Drives the pinned allocation problem through a real :class:`ServerThread`
from 1, 8 and 64 concurrent keep-alive clients and records, per level,

- requests per second over the whole burst;
- p50 / p99 request latency (milliseconds);
- the batching-efficiency ratio (engine calls / requests) — the number the
  micro-batcher exists to push down.  One request per deadline flush gives
  1.0; the acceptance bar for the 64-client burst is **< 0.5**.

Every response must come back 200 — a dropped or shed response under this
load is a failure, not a data point.  Results land in
``benchmarks/out/BENCH_serve.json`` for the regression gate in
``test_bench_regression.py``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.serve import ServeConfig, ServerThread

OUT_DIR = Path(__file__).parent / "out"

CONCURRENCY_LEVELS = (1, 8, 64)
REQUESTS_PER_CLIENT = 12
WARMUP_REQUESTS = 4

ALLOCATION = {
    "kind": "allocation",
    "mapping": [0, 1, 0],
    "etc": [[4.0, 8.0], [6.0, 3.0], [2.0, 5.0]],
    "tau": 1.3,
}


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _drive(harness: ServerThread, n_clients: int) -> dict:
    """One burst: ``n_clients`` threads, each a keep-alive client."""
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    statuses: list[list[int]] = [[] for _ in range(n_clients)]
    barrier = threading.Barrier(n_clients + 1)

    def worker(slot: int) -> None:
        client = harness.client(client_id=f"bench-{slot}")
        try:
            barrier.wait()
            for _ in range(REQUESTS_PER_CLIENT):
                t0 = time.perf_counter()
                reply = client.evaluate(ALLOCATION)
                latencies[slot].append(time.perf_counter() - t0)
                statuses[slot].append(reply.status)
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_clients)]
    for t in threads:
        t.start()
    requests_before = harness.server.n_requests
    calls_before = harness.server.n_engine_calls
    barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t_start

    flat = sorted(lat for per_client in latencies for lat in per_client)
    codes = [code for per_client in statuses for code in per_client]
    n_requests = n_clients * REQUESTS_PER_CLIENT
    assert len(codes) == n_requests, "a client thread dropped requests"
    assert all(code == 200 for code in codes), f"non-200 under load: {set(codes)}"

    served = harness.server.n_requests - requests_before
    engine_calls = harness.server.n_engine_calls - calls_before
    assert served == n_requests
    return {
        "clients": n_clients,
        "requests": n_requests,
        "rps": round(n_requests / elapsed, 1),
        "p50_ms": round(_percentile(flat, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(flat, 0.99) * 1e3, 3),
        "engine_calls": engine_calls,
        "batching_efficiency_ratio": round(engine_calls / served, 4),
    }


def test_serve_load_throughput_and_coalescing():
    config = ServeConfig(port=0, max_batch=32, flush_ms=5.0, max_pending=4096)
    with ServerThread(config) as harness:
        warm = harness.client(client_id="bench-warmup")
        for _ in range(WARMUP_REQUESTS):
            assert warm.evaluate(ALLOCATION).status == 200
        warm.close()

        levels = [_drive(harness, n) for n in CONCURRENCY_LEVELS]

    by_clients = {level["clients"]: level for level in levels}
    burst64 = by_clients[64]
    # the acceptance bar: at 64 clients the batcher must coalesce >2 requests
    # per engine call on average, with zero dropped responses (asserted above)
    assert burst64["batching_efficiency_ratio"] < 0.5

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "requests_per_client": REQUESTS_PER_CLIENT,
        "max_batch": config.max_batch,
        "flush_ms": config.flush_ms,
        "levels": levels,
        "rps_64": burst64["rps"],
        "p50_ms_64": burst64["p50_ms"],
        "p99_ms_64": burst64["p99_ms"],
        "batching_efficiency_ratio": burst64["batching_efficiency_ratio"],
        "dropped": 0,
    }
    out = OUT_DIR / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    summary = " | ".join(
        f"{level['clients']}c: {level['rps']:,.0f} rps "
        f"p50 {level['p50_ms']:.1f}ms p99 {level['p99_ms']:.1f}ms "
        f"ratio {level['batching_efficiency_ratio']:.2f}"
        for level in levels
    )
    print(f"\nserve load: {summary}\n[report saved to {out}]")
    # sanity floor, far below any real machine: the gate proper compares
    # against the committed baseline with tolerance
    assert burst64["rps"] > 20.0
