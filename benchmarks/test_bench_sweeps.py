"""Parameter sweeps — how the metric responds to workload knobs.

Not paper artifacts, but the natural next questions a user of the tool asks
(and the test of whether the reproduction behaves like a research
instrument):

- **heterogeneity sweep** (E1 workload): how the robustness distribution of
  random mappings shifts with task/machine heterogeneity;
- **tau sweep**: the metric grows affinely in ``tau`` for a fixed mapping
  (Eq. 6 is linear in ``tau``), with slope ``M_orig / sqrt(n)`` on the
  binding machine — checked exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.generators import random_assignments
from repro.alloc.robustness import batch_robustness
from repro.etcgen import cvb_etc_matrix
from repro.utils.tables import format_table

SEED = 41


@pytest.fixture(scope="module")
def het_sweep():
    rows = []
    for het in (0.1, 0.4, 0.7, 1.0):
        etc = cvb_etc_matrix(20, 5, task_het=het, machine_het=het, seed=SEED)
        a = random_assignments(400, 20, 5, seed=SEED + 1)
        rho = batch_robustness(a, etc, 1.2)
        rows.append(
            [het, float(np.median(rho)), float(rho.min()), float(rho.max()),
             float(rho.std() / rho.mean())]
        )
    return rows


def test_heterogeneity_report(het_sweep, save_report):
    save_report(
        "heterogeneity_sweep",
        format_table(
            ["heterogeneity", "median rho", "min", "max", "rho COV"],
            het_sweep,
            title="=== sweep — robustness of 400 random mappings vs heterogeneity ===",
        ),
    )


def test_heterogeneity_increases_spread(het_sweep):
    """More heterogeneous workloads spread the robustness distribution: the
    COV of rho grows with the generation heterogeneity."""
    covs = [row[4] for row in het_sweep]
    assert covs[-1] > covs[0]


def test_tau_concave_increasing():
    """Each machine's Eq. 6 radius is affine in tau, so rho(tau) — their
    minimum — is concave and strictly increasing in tau."""
    etc = cvb_etc_matrix(20, 5, seed=SEED + 2)
    a = random_assignments(50, 20, 5, seed=SEED + 3)
    taus = np.array([1.05, 1.2, 1.35, 1.5])
    values = np.stack([batch_robustness(a, etc, t) for t in taus])
    d2 = np.diff(values, n=2, axis=0)
    assert np.all(d2 <= 1e-9)  # concave (binding machine can only switch down)
    assert np.all(np.diff(values, axis=0) > 0)  # strictly increasing


def test_consistency_regimes(save_report):
    """Consistent vs semi-consistent vs inconsistent ETC matrices (the
    standard HC regimes, built from the same draws): min-min exploits
    consistent matrices for makespan, but its robustness behaves
    differently — the regime study the tool enables."""
    from repro.alloc.heuristics import min_min
    from repro.alloc.makespan import makespan
    from repro.alloc.robustness import robustness
    from repro.etcgen import make_consistent, make_semi_consistent

    base = cvb_etc_matrix(20, 5, seed=SEED + 4)
    regimes = {
        "inconsistent": base,
        "semi-consistent": make_semi_consistent(base, 0.5, seed=SEED + 5),
        "consistent": make_consistent(base),
    }
    rows = []
    for name, etc in regimes.items():
        a = random_assignments(300, 20, 5, seed=SEED + 6)
        rho = batch_robustness(a, etc, 1.2)
        mm = min_min(etc)
        rows.append(
            [
                name,
                float(np.median(rho)),
                makespan(mm, etc),
                robustness(mm, etc, 1.2).value,
            ]
        )
    save_report(
        "consistency_sweep",
        format_table(
            ["ETC regime", "median random rho", "min-min makespan", "min-min rho"],
            rows,
            title="=== sweep — ETC consistency regimes (same underlying draws) ===",
        ),
    )
    # Same multiset of values in every regime -> total work identical; only
    # the structure changes.
    for etc in regimes.values():
        np.testing.assert_allclose(np.sort(etc.ravel()), np.sort(base.ravel()))


def test_bench_heterogeneity_sweep(benchmark):
    def sweep():
        out = []
        for het in (0.1, 0.7):
            etc = cvb_etc_matrix(20, 5, task_het=het, machine_het=het, seed=SEED)
            a = random_assignments(200, 20, 5, seed=SEED + 1)
            out.append(batch_robustness(a, etc, 1.2))
        return out

    result = benchmark(sweep)
    assert len(result) == 2
