"""Schedule-run throughput benchmark for the resilience subsystem.

:func:`repro.sim.run_schedule` is the inner loop of every resilience
evaluation — the radius-vs-resilience experiment calls it once per mapping,
so population sweeps live or die on its per-step cost.  This benchmark

- measures steps-per-second through a representative schedule (all four
  event kinds, outages included) on a mid-sized workload;
- checks the emitted series is bit-for-bit stable across repeats (a
  benchmark that silently changes answers measures nothing);
- lands the numbers in ``benchmarks/out/BENCH_resilience.json`` for the
  regression gate in ``test_bench_regression.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.alloc.mapping import Mapping
from repro.etcgen.cvb import cvb_etc_matrix
from repro.faults import PerturbationSchedule
from repro.sim import run_schedule

OUT_DIR = Path(__file__).parent / "out"

N_TASKS = 40
N_MACHINES = 8
N_STEPS = 400
N_EVENTS = 12
REPEATS = 5
TAU = 1.2


def _case():
    etc = cvb_etc_matrix(N_TASKS, N_MACHINES, seed=11)
    mapping = Mapping(np.arange(N_TASKS) % N_MACHINES, N_MACHINES)
    schedule = PerturbationSchedule.generate(
        N_EVENTS, N_TASKS, N_MACHINES, seed=12
    )
    return mapping, etc, schedule


def test_schedule_run_throughput():
    mapping, etc, schedule = _case()
    run_schedule(mapping, etc, schedule, TAU, n_steps=50)  # warm up

    best = float("inf")
    reference = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        run = run_schedule(mapping, etc, schedule, TAU, n_steps=N_STEPS)
        best = min(best, time.perf_counter() - t0)
        if reference is None:
            reference = run
        else:
            assert run.values.tobytes() == reference.values.tobytes()

    steps_per_second = N_STEPS / best

    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "n_tasks": N_TASKS,
        "n_machines": N_MACHINES,
        "n_steps": N_STEPS,
        "n_events": N_EVENTS,
        "run_seconds": round(best, 6),
        "steps_per_second": round(steps_per_second, 1),
        "n_violations": reference.n_violations,
        "repeats": REPEATS,
    }
    out = OUT_DIR / "BENCH_resilience.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nschedule run: {N_STEPS} steps in {best * 1e3:.2f} ms "
        f"({steps_per_second:,.0f} steps/s)\n[report saved to {out}]"
    )
    # sanity floor, far below any real machine: the gate proper compares
    # against the committed baseline with tolerance
    assert steps_per_second > 100.0
