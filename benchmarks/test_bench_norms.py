"""Ablation — the perturbation norm (l2 vs l1 vs linf vs weighted l2).

The paper fixes the Euclidean norm; Ali's thesis [1] discusses alternatives.
This ablation evaluates the same systems under the four norms and checks the
dual-norm ordering ``rho_linf <= rho_l2 <= rho_l1`` that must hold for any
single upper-bound constraint set (unit balls are nested), plus timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.generators import random_mapping
from repro.alloc.robustness import fepia_analysis, makespan
from repro.core.fepia import FePIAAnalysis
from repro.core.norms import L1Norm, L2Norm, LInfNorm, WeightedL2Norm
from repro.etcgen import cvb_etc_matrix
from repro.utils.tables import format_table

SEED = 21
TAU = 1.2


def _analysis(etc, mapping):
    m_orig = makespan(mapping, etc)
    a = FePIAAnalysis("norms").with_perturbation("C", mapping.executed_times(etc))
    indicator = mapping.indicator_matrix()
    for j in range(mapping.n_machines):
        if indicator[j].sum():
            a.add_feature(f"F_{j}", impact=indicator[j], upper=TAU * m_orig)
    return a


@pytest.fixture(scope="module")
def case():
    etc = cvb_etc_matrix(20, 5, seed=SEED)
    mapping = random_mapping(20, 5, seed=SEED + 1)
    return etc, mapping, _analysis(etc, mapping)


def test_norm_ordering_and_report(case, save_report):
    etc, mapping, analysis = case
    norms = {
        "l2 (paper)": L2Norm(),
        "l1": L1Norm(),
        "linf": LInfNorm(),
        "weighted l2 (w=2)": WeightedL2Norm(np.full(20, 2.0)),
    }
    values = {name: analysis.analyze(norm=n).value for name, n in norms.items()}
    save_report(
        "norms_ablation",
        format_table(
            ["norm", "robustness"],
            [[k, v] for k, v in values.items()],
            title="=== ablation — robustness of one mapping under different norms ===",
        ),
    )
    assert values["linf"] <= values["l2 (paper)"] <= values["l1"]
    # ||x||_w = sqrt(2) ||x||_2 shrinks every radius by exactly sqrt(2)... in
    # the dual: radius_w = gap / ||c||_{w*} = gap / (||c||_2 / sqrt(2)).
    assert values["weighted l2 (w=2)"] == pytest.approx(
        values["l2 (paper)"] * np.sqrt(2.0), rel=1e-9
    )


@pytest.mark.parametrize(
    "norm",
    [L2Norm(), L1Norm(), LInfNorm()],
    ids=lambda n: n.name,
)
def test_bench_norm_analysis(case, norm, benchmark):
    _, _, analysis = case
    out = benchmark(analysis.analyze, norm=norm)
    assert np.isfinite(out.value)
