"""Ablation — zero vs nonzero communication times in the HiPer-D system.

The paper's experiments set all communication times to zero "only to
simplify the experiments"; the formulation includes them (Eq. 8, Eq. 9).
This ablation generates matched instances with and without linear
communication coefficients and reports how the binding-constraint mix and
the robustness distribution shift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hiperd.generators import generate_system, random_hiperd_mappings
from repro.hiperd.robustness import robustness
from repro.utils.tables import format_table

SEED = 33
LOAD0 = np.array([962.0, 380.0, 240.0])
N_MAPPINGS = 200


def _sweep(comm_mean: float):
    system = generate_system(seed=SEED, comm_mean=comm_mean)
    rhos = []
    kinds: dict[str, int] = {}
    for m in random_hiperd_mappings(system, N_MAPPINGS, seed=SEED + 1):
        r = robustness(system, m, LOAD0)
        rhos.append(r.value)
        kinds[r.binding_kind] = kinds.get(r.binding_kind, 0) + 1
    return np.asarray(rhos), kinds


@pytest.fixture(scope="module")
def sweeps():
    return {mean: _sweep(mean) for mean in (0.0, 50.0, 200.0)}


def test_comm_report(sweeps, save_report):
    rows = []
    for mean, (rhos, kinds) in sweeps.items():
        feas = rhos[rhos > 0]
        rows.append(
            [
                mean,
                kinds.get("comp", 0),
                kinds.get("comm", 0),
                kinds.get("latency", 0),
                float(np.median(feas)) if feas.size else float("nan"),
            ]
        )
    save_report(
        "comm_ablation",
        format_table(
            ["comm mean", "binds: comp", "binds: comm", "binds: latency", "median rho"],
            rows,
            title="=== ablation — communication times off/on (200 mappings each) ===",
        ),
    )


def test_zero_comm_never_binds_on_transfers(sweeps):
    _, kinds = sweeps[0.0]
    assert kinds.get("comm", 0) == 0


def test_heavy_comm_binds_on_transfers(sweeps):
    _, kinds = sweeps[200.0]
    assert kinds.get("comm", 0) > 0


def test_bench_comm_robustness(benchmark):
    system = generate_system(seed=SEED, comm_mean=50.0)
    mappings = random_hiperd_mappings(system, 50, seed=SEED + 2)

    def sweep():
        return [robustness(system, m, LOAD0).value for m in mappings]

    out = benchmark(sweep)
    assert len(out) == 50
