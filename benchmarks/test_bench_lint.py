"""Lint benchmark — incremental summary cache vs a cold full analysis.

Workload: the shipped ``src/repro`` tree (~95 modules) under the full rule
registry, including the interprocedural dataflow rules.  The cold run
parses, summarizes and lints every file; the warm run replays the per-file
work from the :class:`~repro.analysis.dataflow.SummaryStore` and re-runs
only the project propagation phase.

Claims checked:

- the warm run re-analyzes **zero** modules;
- warm and cold runs produce identical findings and suppression counts;
- the warm run is measurably faster (at least 1.25x on min-of-repeats);
- the concurrency family (R110-R114) alone costs no more than a full
  cold run — its facts ride the same single parse/summary pass;
- likewise the performance family (R120-R124): its ndarray/loop facts are
  extracted in the same pass, so a perf-only run stays cold-run cheap;
- the measured times land in ``benchmarks/out/BENCH_lint.json`` so CI can
  chart the cache's effect over time.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

import repro
from repro.analysis import SummaryStore, lint_paths

OUT_DIR = Path(__file__).parent / "out"
SRC_TREE = Path(repro.__file__).resolve().parent
REPEATS = 3
MIN_SPEEDUP = 1.25
CONCUR_RULES = ["R110", "R111", "R112", "R113", "R114"]
PERF_RULES = ["R120", "R121", "R122", "R123", "R124"]


def _time_lint(cache_path: Path):
    best = float("inf")
    report = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        report = lint_paths([SRC_TREE], cache=SummaryStore(cache_path))
        best = min(best, time.perf_counter() - t0)
    return best, report


@pytest.fixture(scope="module")
def timings(tmp_path_factory):
    cache_path = tmp_path_factory.mktemp("lint-cache") / "cache.json"
    # cold: time a single run against an empty store (repeats would hit the
    # cache the first run just wrote, so cold is one measurement by nature)
    t0 = time.perf_counter()
    cold_report = lint_paths([SRC_TREE], cache=SummaryStore(cache_path))
    cold = time.perf_counter() - t0
    warm, warm_report = _time_lint(cache_path)
    # family-only runs: select bypasses the cache, so every repeat is cold
    concur = float("inf")
    concur_report = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        concur_report = lint_paths([SRC_TREE], select=CONCUR_RULES)
        concur = min(concur, time.perf_counter() - t0)
    perf = float("inf")
    perf_report = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        perf_report = lint_paths([SRC_TREE], select=PERF_RULES)
        perf = min(perf, time.perf_counter() - t0)
    return (
        cold, cold_report, warm, warm_report,
        concur, concur_report, perf, perf_report,
    )


class TestIncrementalCacheBenchmark:
    def test_warm_run_reanalyzes_nothing(self, timings):
        _, cold_report, _, warm_report = timings[:4]
        assert cold_report.n_reanalyzed == cold_report.files_checked
        assert warm_report.n_reanalyzed == 0
        assert warm_report.files_cached == warm_report.files_checked

    def test_findings_identical_cold_vs_warm(self, timings):
        _, cold_report, _, warm_report = timings[:4]
        assert warm_report.findings == cold_report.findings
        assert warm_report.n_suppressed == cold_report.n_suppressed
        assert warm_report.files_checked == cold_report.files_checked

    def test_concur_family_not_costlier_than_full_registry(self, timings):
        cold, cold_report = timings[0], timings[1]
        concur, concur_report = timings[4], timings[5]
        assert concur_report.clean
        assert concur_report.files_checked == cold_report.files_checked
        # parse+summaries dominate and are shared: five extra rules must
        # not cost more than the whole registry does (generous 1.5x slack
        # because `cold` is a single measurement, `concur` min-of-repeats)
        assert concur <= cold * 1.5, (concur, cold)

    def test_perf_family_not_costlier_than_full_registry(self, timings):
        cold, cold_report = timings[0], timings[1]
        perf, perf_report = timings[6], timings[7]
        assert perf_report.clean
        assert perf_report.files_checked == cold_report.files_checked
        # same argument as the concur family: the perf facts ride the one
        # shared parse/summary pass, so the family adds no second traversal
        assert perf <= cold * 1.5, (perf, cold)

    def test_warm_is_faster_and_recorded(self, timings):
        (
            cold, cold_report, warm, warm_report,
            concur, concur_report, perf, perf_report,
        ) = timings
        speedup = cold / warm if warm > 0 else float("inf")
        concur_fps = concur_report.files_checked / concur if concur > 0 else float("inf")
        perf_fps = perf_report.files_checked / perf if perf > 0 else float("inf")
        OUT_DIR.mkdir(exist_ok=True)
        payload = {
            "files": cold_report.files_checked,
            "cold_seconds": round(cold, 4),
            "warm_seconds": round(warm, 4),
            "speedup": round(speedup, 2),
            "warm_reanalyzed": warm_report.n_reanalyzed,
            "concur_seconds": round(concur, 4),
            "concur_files_per_second": round(concur_fps, 1),
            "perf_seconds": round(perf, 4),
            "perf_files_per_second": round(perf_fps, 1),
            "repeats": REPEATS,
        }
        out = OUT_DIR / "BENCH_lint.json"
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"\nlint cache: cold {cold:.3f}s, warm {warm:.3f}s "
              f"({speedup:.1f}x); concur-only {concur:.3f}s; "
              f"perf-only {perf:.3f}s\n"
              f"[report saved to {out}]")
        assert speedup >= MIN_SPEEDUP, payload
