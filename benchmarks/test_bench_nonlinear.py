"""Ablation — linear vs power-law (convex) complexity functions.

Section 3.2 allows any convex complexity; the experiments use linear ones.
This ablation evaluates the same mappings under exponent 1 (closed-form
hyperplanes) and exponent 1.5 with rescaled coefficients (numeric SLSQP),
reporting the value shift and the solver cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.mapping import Mapping
from repro.hiperd.generators import generate_system
from repro.hiperd.model import HiperDSystem
from repro.hiperd.nonlinear import power_law_robustness
from repro.core.config import SolverConfig
from repro.hiperd.robustness import robustness
from repro.utils.tables import format_table

SEED = 35
LAM0 = np.array([50.0, 30.0, 20.0])


@pytest.fixture(scope="module")
def setting():
    system = generate_system(
        seed=SEED, n_apps=6, n_paths=4, initial_load=LAM0, target_fraction=0.4
    )
    mappings = [
        Mapping((np.arange(6) + k) % system.n_machines, system.n_machines)
        for k in range(4)
    ]
    return system, mappings


def test_nonlinear_report(setting, save_report):
    system, mappings = setting
    exps = np.full((6, 3), 1.5)
    # Rescale coefficients so T(lam0) is unchanged per term: c' = c / lam0^0.5
    scale = LAM0**0.5
    rescaled = HiperDSystem.from_paths(
        sensors=system.sensors,
        n_apps=system.n_apps,
        n_machines=system.n_machines,
        n_actuators=system.n_actuators,
        paths=system.paths,
        comp_coeffs=system.comp_coeffs / scale[None, None, :],
        latency_limits=system.latency_limits,
    )
    rows = []
    for k, m in enumerate(mappings):
        lin = robustness(system, m, LAM0, apply_floor=False).raw_value
        nl = power_law_robustness(
            rescaled, m, LAM0, exps, config=SolverConfig(n_starts=2)
        ).raw_value
        rows.append([k, lin, nl])
        # Superlinear growth with matched values at lam0 reaches the limits
        # sooner in the increase direction.
        if lin > 0 and np.isfinite(nl):
            assert nl < lin + 1e-6
    save_report(
        "nonlinear_ablation",
        format_table(
            ["mapping", "rho (linear)", "rho (power 1.5, matched at lam0)"],
            rows,
            title="=== ablation — linear vs convex power-law complexity ===",
        ),
    )


def test_bench_linear_path(setting, benchmark):
    system, mappings = setting
    out = benchmark(robustness, system, mappings[0], LAM0)
    assert np.isfinite(out.raw_value)


def test_bench_power_law_path(setting, benchmark):
    system, mappings = setting
    exps = np.ones((6, 3))

    def run():
        return power_law_robustness(
            system, mappings[0], LAM0, exps, config=SolverConfig(n_starts=1)
        )

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    lin = robustness(system, mappings[0], LAM0)
    assert out.value == pytest.approx(lin.value, rel=1e-5)
