"""E1/E1b — regenerate Figure 3 (robustness vs makespan) and its cluster
structure (paper Section 4.2).

Workload: 20 applications x 5 machines, CVB-Gamma ETCs (mean 10,
heterogeneities 0.7), 1000 uniform random mappings, tau = 1.2.

Shape claims checked (absolute values depend on the RNG draw, not the
authors' machines):
- robustness and makespan are positively correlated, yet mappings with
  nearly equal makespan differ sharply in robustness;
- mappings cluster on straight lines ``rho = (tau - 1) M / sqrt(x)`` for
  ``x = n(m(C_orig))`` when that machine has the most applications, with
  all remaining mappings below their line;
- the same spread exists against the load-balance index (the plot the paper
  describes but does not show).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.robustness import batch_robustness
from repro.experiments.experiment1 import cluster_analysis, run_experiment_one
from repro.experiments.reporting import report_figure3

SEED = 2003
N_MAPPINGS = 1000


@pytest.fixture(scope="module")
def result(save_report):
    res = run_experiment_one(n_mappings=N_MAPPINGS, seed=SEED)
    # Regenerate and persist the figure on every run (including
    # --benchmark-only, where the assertion-only tests are skipped).
    save_report("figure3", report_figure3(res))
    return res


def test_figure3_report(result):
    """The report regenerates (persisted by the fixture)."""
    assert "Figure 3" in report_figure3(result)


def test_figure3_shape_correlation_with_spread(result):
    corr = np.corrcoef(result.makespans, result.robustness)[0, 1]
    assert corr > 0.5, "robustness should generally grow with makespan"
    order = np.argsort(result.makespans)
    rho = result.robustness[order]
    window = 20
    ratios = [
        rho[k : k + window].max() / rho[k : k + window].min()
        for k in range(len(rho) - window)
    ]
    assert max(ratios) > 1.5, "similar-makespan mappings should differ sharply"


def test_figure3_cluster_structure(result):
    ca = cluster_analysis(result)
    assert np.all(ca.s1_max_residual < 1e-9), "S1(x) mappings lie on their lines"
    assert ca.outliers_below_line
    assert (ca.s1_sizes > 0).sum() >= 3, "several distinct lines visible"


def test_figure3_load_balance_view(result):
    """Section 4.2: 'a similar conclusion could be drawn from the robustness
    against load balance index plot (not shown)'."""
    lbi = result.load_balance
    rho = result.robustness
    order = np.argsort(lbi)
    window = 20
    ratios = [
        rho[order][k : k + window].max() / rho[order][k : k + window].min()
        for k in range(len(order) - window)
    ]
    assert max(ratios) > 1.5


def test_bench_figure3_batch_robustness(result, benchmark):
    """Time the hot path: Eq. 7 for all 1000 mappings (vectorized)."""
    out = benchmark(batch_robustness, result.assignments, result.etc, result.tau)
    np.testing.assert_allclose(out, result.robustness)
