"""E4 (extension) — empirical validation of the robustness radius.

Not a paper figure; validates Eq. 1's operational semantics end-to-end:
perturbations strictly inside the robustness ball never violate the
requirement (checked by discrete-event simulation for the allocation system
and by constraint evaluation for HiPer-D), the boundary point sits exactly
on the requirement, and a step beyond violates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.generators import random_mapping
from repro.etcgen import cvb_etc_matrix
from repro.hiperd.constraints import build_constraints
from repro.hiperd.generators import generate_system, random_hiperd_mappings
from repro.hiperd.robustness import robustness as hiperd_robustness
from repro.sim.validate import validate_allocation_robustness
from repro.utils.tables import format_table

SEED = 99
TAU = 1.2


@pytest.fixture(scope="module")
def allocation_reports():
    out = []
    for k in range(5):
        etc = cvb_etc_matrix(20, 5, seed=SEED + k)
        mapping = random_mapping(20, 5, seed=SEED + 50 + k)
        out.append(
            validate_allocation_robustness(
                mapping, etc, TAU, n_samples=200, seed=SEED + 100 + k
            )
        )
    return out


def test_validation_report(allocation_reports, save_report):
    rows = [
        [
            k,
            r.robustness,
            r.makespan_orig,
            r.interior_violations,
            r.boundary_makespan,
            r.tau * r.makespan_orig,
            r.beyond_makespan,
        ]
        for k, r in enumerate(allocation_reports)
    ]
    save_report(
        "validation",
        format_table(
            [
                "instance",
                "rho",
                "M_orig",
                "interior violations",
                "makespan at C*",
                "tau*M_orig",
                "makespan beyond",
            ],
            rows,
            title="=== E4 — simulated validation of the allocation robustness radius ===",
        ),
    )


def test_allocation_radius_sound_and_tight(allocation_reports):
    for r in allocation_reports:
        assert r.sound
        assert r.tight


def test_hiperd_radius_sound(save_report):
    """Loads within the (unfloored) radius never violate any QoS constraint;
    the floored metric is a conservative integer statement of the same."""
    system = generate_system(seed=SEED)
    lam0 = np.array([962.0, 380.0, 240.0])
    rng = np.random.default_rng(SEED)
    checked = 0
    for m in random_hiperd_mappings(system, 20, seed=SEED + 1):
        r = hiperd_robustness(system, m, lam0, apply_floor=False)
        if r.raw_value <= 0:
            continue
        cs = build_constraints(system, m)
        for _ in range(100):
            d = rng.standard_normal(3)
            d /= np.linalg.norm(d)
            assert cs.satisfied_at(lam0 + 0.999 * r.raw_value * d, tol=1e-9)
        # Beyond the boundary along the binding direction: violation.
        direction = r.boundary - lam0
        n = np.linalg.norm(direction)
        if n > 0:
            assert not cs.satisfied_at(lam0 + direction * (1 + 1e-9) )
        checked += 1
    assert checked >= 10


def test_bench_validation_simulation(benchmark):
    """Time one 200-sample simulated validation (the E4 workload unit)."""
    etc = cvb_etc_matrix(20, 5, seed=SEED)
    mapping = random_mapping(20, 5, seed=SEED + 50)

    report = benchmark(
        validate_allocation_robustness, mapping, etc, TAU, n_samples=200, seed=7
    )
    assert report.sound
