"""Command-line interface: regenerate the paper's experiments from a shell.

Usage::

    python -m repro fig3      [--seed N] [--n-mappings N] [--tau X] [--out FILE]
    python -m repro fig4      [--seed N] [--n-mappings N] [--out FILE]
    python -m repro table2    [--out FILE]
    python -m repro validate  [--seed N] [--samples N] [--tau X]
    python -m repro heuristics [--seed N] [--tau X]
    python -m repro monitor   [--seed N] [--steps N] [--threshold X]
    python -m repro faults    [--seed N] [--tau X] [--eps X] [--confidence X]
    python -m repro resilience [--seed N] [--tau X] [--n-steps N] [--experiment]
    python -m repro lint      [--format text|json] [--select CODES] [--changed[=REF]] PATHS...
    python -m repro trace run [--profile] [--trace-out FILE] SUBCOMMAND ...
    python -m repro trace check TRACE_FILE [--schema FILE]

Each subcommand prints the regenerated table/figure report (and optionally
writes it to ``--out``).  Exit status is 0 on success, 2 on bad arguments;
``lint`` (and the pass/fail validation commands) exit 1 when findings /
violations are present.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def _add_backend_argument(p: argparse.ArgumentParser) -> None:
    from repro.engine.backends import BACKEND_NAMES

    p.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="execution backend for the robustness engine "
        "(default: REPRO_BACKEND env var, then automatic)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robustness metric for resource allocation (IPPS 2003) — "
        "experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p3 = sub.add_parser("fig3", help="Figure 3: robustness vs makespan")
    p3.add_argument("--seed", type=int, default=2003)
    p3.add_argument("--n-mappings", type=int, default=1000)
    p3.add_argument("--tau", type=float, default=1.2)
    p3.add_argument("--out", type=Path, default=None)
    _add_backend_argument(p3)

    p4 = sub.add_parser("fig4", help="Figure 4: robustness vs slack (HiPer-D)")
    p4.add_argument("--seed", type=int, default=7)
    p4.add_argument("--n-mappings", type=int, default=1000)
    p4.add_argument("--out", type=Path, default=None)
    _add_backend_argument(p4)

    pt = sub.add_parser("table2", help="Table 2: mappings A and B")
    pt.add_argument("--out", type=Path, default=None)

    pv = sub.add_parser("validate", help="simulated validation of the radius (E4)")
    pv.add_argument("--seed", type=int, default=99)
    pv.add_argument("--samples", type=int, default=200)
    pv.add_argument("--tau", type=float, default=1.2)

    ph = sub.add_parser("heuristics", help="heuristic sweep under the metric (E5)")
    ph.add_argument("--seed", type=int, default=42)
    ph.add_argument("--tau", type=float, default=1.2)

    pm = sub.add_parser(
        "monitor", help="online robustness monitoring under load drift"
    )
    pm.add_argument("--seed", type=int, default=8)
    pm.add_argument("--steps", type=int, default=150)
    pm.add_argument("--threshold", type=float, default=200.0)

    pf = sub.add_parser(
        "faults",
        help="radius certification + machine-failure scenario (fault suite)",
    )
    pf.add_argument("--seed", type=int, default=2003)
    pf.add_argument("--tau", type=float, default=1.2)
    pf.add_argument("--eps", type=float, default=0.01)
    pf.add_argument("--confidence", type=float, default=0.99)
    pf.add_argument("--fail-fraction", type=float, default=0.5)

    pr = sub.add_parser(
        "resilience",
        help="temporal resilience: run a mapping through a perturbation "
        "schedule, or sweep the radius-vs-recovery correlation",
    )
    pr.add_argument("--seed", type=int, default=2003)
    pr.add_argument("--tau", type=float, default=1.2)
    pr.add_argument("--n-steps", type=int, default=200)
    pr.add_argument("--n-events", type=int, default=8)
    pr.add_argument("--horizon", type=float, default=100.0)
    pr.add_argument(
        "--experiment",
        action="store_true",
        help="run the radius-vs-resilience population sweep instead of a "
        "single schedule run",
    )
    pr.add_argument("--n-mappings", type=int, default=200)
    pr.add_argument("--out", type=Path, default=None)
    pr.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the serialized result (repro.io JSON codec)",
    )
    _add_backend_argument(pr)

    pl = sub.add_parser(
        "lint",
        help="static analysis: determinism / pickle-safety / numeric contracts",
    )
    pl.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directory trees to lint (required unless --list-rules)",
    )
    pl.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    pl.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    pl.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    pl.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="GLOB",
        help="directory-name glob to skip during discovery (repeatable; "
        "default: fixtures)",
    )
    pl.add_argument(
        "--changed",
        nargs="?",
        const=True,
        default=None,
        metavar="REF",
        help="lint only files reported changed by git (staged, unstaged "
        "and untracked); with REF (e.g. --changed=origin/main) files "
        "committed in REF...HEAD are included too; positional paths "
        "become optional",
    )
    pl.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental module-summary cache",
    )
    pl.add_argument(
        "--cache-file",
        type=Path,
        default=None,
        metavar="PATH",
        help="incremental cache location (default: .repro-lint-cache.json)",
    )
    pl.add_argument(
        "--sanitize-check",
        action="store_true",
        help="run the runtime numeric sanitizer's self-check and exit",
    )
    pl.add_argument(
        "--fix",
        action="store_true",
        help="apply safe fixes in place, re-linting until no fix applies",
    )
    pl.add_argument(
        "--diff",
        action="store_true",
        help="with --fix: preview one fix pass as a unified diff without "
        "writing any file",
    )
    pl.add_argument(
        "--fix-dry-run",
        action="store_true",
        help="summarize the fixes one pass would apply without writing",
    )
    pl.add_argument(
        "--fix-suggested",
        action="store_true",
        help="also apply fixes classed 'suggested' (semantics-adjacent "
        "scaffolds such as re-raise insertion)",
    )

    ps = sub.add_parser(
        "serve",
        help="serve robustness evaluations over HTTP (asyncio, micro-batched)",
    )
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, default=8471)
    ps.add_argument(
        "--batch-size",
        type=int,
        default=16,
        metavar="N",
        help="flush a coalescing group at N requests (default 16)",
    )
    ps.add_argument(
        "--flush-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="deadline flush: max milliseconds a request waits to co-batch",
    )
    ps.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        metavar="N",
        help="waiting-request bound before 429 backpressure (default 1024)",
    )
    ps.add_argument(
        "--rate",
        type=float,
        default=0.0,
        metavar="R",
        help="per-client requests/second quota (0 disables, the default)",
    )
    ps.add_argument(
        "--burst",
        type=float,
        default=8.0,
        metavar="B",
        help="per-client token-bucket burst capacity (default 8)",
    )
    _add_backend_argument(ps)

    ptr = sub.add_parser(
        "trace",
        help="observability: run a subcommand traced, or validate a trace file",
    )
    tsub = ptr.add_subparsers(dest="trace_command", required=True)
    tr_run = tsub.add_parser(
        "run", help="run another repro subcommand with tracing/metrics enabled"
    )
    tr_run.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage cost breakdown after the run",
    )
    tr_run.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the spans as Chrome trace_event JSON (chrome://tracing)",
    )
    tr_run.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the metrics registry after the run",
    )
    tr_run.add_argument(
        "--metrics-format",
        choices=("json", "prometheus"),
        default="json",
        help="format of --metrics-out (default: json)",
    )
    tr_run.add_argument(
        "argv",
        nargs=argparse.REMAINDER,
        help="the repro subcommand to run, e.g. 'heuristics --seed 1'",
    )
    tr_check = tsub.add_parser(
        "check", help="validate a Chrome trace JSON file against a golden schema"
    )
    tr_check.add_argument("trace_file", type=Path)
    tr_check.add_argument(
        "--schema",
        type=Path,
        default=None,
        metavar="FILE",
        help="schema description (default: the built-in trace schema)",
    )

    return parser


def _emit(text: str, out: Path | None) -> None:
    print(text)
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n", encoding="utf-8")
        print(f"[written to {out}]")


def _cmd_fig3(args) -> int:
    from repro.experiments import report_figure3, run_experiment_one

    result = run_experiment_one(
        n_mappings=args.n_mappings, tau=args.tau, seed=args.seed, backend=args.backend
    )
    _emit(report_figure3(result), args.out)
    return 0


def _cmd_fig4(args) -> int:
    from repro.experiments import report_figure4, run_experiment_two

    result = run_experiment_two(
        n_mappings=args.n_mappings, seed=args.seed, backend=args.backend
    )
    _emit(report_figure4(result), args.out)
    return 0


def _cmd_table2(args) -> int:
    from repro.experiments import report_table2
    from repro.hiperd import PAPER_TABLE2, build_table2_system, robustness, slack

    inst = build_table2_system()
    measured = {}
    for which, mapping in (("A", inst.mapping_a), ("B", inst.mapping_b)):
        r = robustness(inst.system, mapping, inst.initial_load)
        measured[which] = {
            "robustness": r.value,
            "slack": slack(inst.system, mapping, inst.initial_load),
            "lambda_star": tuple(r.boundary),
        }
    _emit(report_table2(measured, PAPER_TABLE2), args.out)
    return 0


def _cmd_validate(args) -> int:
    from repro.alloc.generators import random_mapping
    from repro.etcgen import cvb_etc_matrix
    from repro.sim import validate_allocation_robustness

    etc = cvb_etc_matrix(20, 5, seed=args.seed)
    mapping = random_mapping(20, 5, seed=args.seed + 1)
    report = validate_allocation_robustness(
        mapping, etc, args.tau, n_samples=args.samples, seed=args.seed + 2
    )
    limit = report.tau * report.makespan_orig
    print(f"robustness rho        : {report.robustness:.4f}")
    print(f"predicted makespan    : {report.makespan_orig:.4f} (limit {limit:.4f})")
    print(f"interior samples      : {report.n_samples}, violations {report.interior_violations}")
    print(f"makespan at C*        : {report.boundary_makespan:.4f}")
    print(f"makespan beyond C*    : {report.beyond_makespan:.4f}")
    print(f"sound: {report.sound}, tight: {report.tight}")
    return 0 if (report.sound and report.tight) else 1


def _cmd_heuristics(args) -> int:
    from repro.alloc import load_balance_index
    from repro.alloc.heuristics import HEURISTICS
    from repro.engine import RobustnessEngine
    from repro.etcgen import cvb_etc_matrix
    from repro.utils.tables import format_table

    etc = cvb_etc_matrix(20, 5, seed=args.seed)
    names = sorted(HEURISTICS)
    mappings = [HEURISTICS[name](etc, seed=0) for name in names]
    batch = RobustnessEngine().evaluate_allocation(mappings, etc, args.tau)
    rows = [
        [
            name,
            float(batch.makespans[k]),
            float(batch.values[k]),
            load_balance_index(mapping, etc),
        ]
        for k, (name, mapping) in enumerate(zip(names, mappings))
    ]
    print(
        format_table(
            ["heuristic", "makespan", f"robustness (tau={args.tau})", "load balance"],
            rows,
        )
    )
    return 0


def _cmd_monitor(args) -> int:
    from repro.dynamics import adaptive_remap, monitor, random_walk_loads
    from repro.hiperd import generate_system, random_hiperd_mappings, robustness

    load0 = np.array([962.0, 380.0, 240.0])
    system = generate_system(seed=args.seed)
    mapping = max(
        random_hiperd_mappings(system, 20, seed=args.seed + 1),
        key=lambda m: robustness(system, m, load0, apply_floor=False).raw_value,
    )
    traj = random_walk_loads(
        load0, args.steps, step_scale=5.0, drift=[18.0, 8.0, 5.0], seed=args.seed + 2
    )
    static = monitor(system, mapping, traj)
    adaptive = adaptive_remap(
        system, mapping, traj, threshold=args.threshold, seed=args.seed + 3
    )
    print(f"anchor robustness       : {static.anchor_robustness:.1f}")
    print(f"static first violation  : step {static.first_violation}")
    print(f"static violating steps  : {int(static.violated.sum())} / {len(traj)}")
    print(f"adaptive violating steps: {adaptive.violation_steps} / {len(traj)}")
    print(f"remap events            : {len(adaptive.events)}")
    for ev in adaptive.events:
        print(
            f"  step {ev.step:3d}: {ev.old_robustness:8.1f} -> {ev.new_robustness:8.1f}"
        )
    return 0


def _cmd_faults(args) -> int:
    from repro.alloc.generators import random_mapping
    from repro.etcgen import cvb_etc_matrix
    from repro.faults import certify, machine_failure_scenario, validate_hiperd_radius
    from repro.hiperd import build_table2_system

    etc = cvb_etc_matrix(20, 5, seed=args.seed)
    mapping = random_mapping(20, 5, seed=args.seed + 1)

    cert = certify(
        mapping,
        etc,
        args.tau,
        eps=args.eps,
        confidence=args.confidence,
        seed=args.seed + 2,
    )
    print(f"allocation radius     : {cert.radius:.4f}")
    print(
        f"certificate           : holds={cert.holds} "
        f"({cert.n_samples} samples, {cert.violations} violations, "
        f"eps={cert.eps}, confidence={cert.confidence})"
    )

    inst = build_table2_system()
    hv = validate_hiperd_radius(
        inst.system, inst.mapping_a, inst.initial_load, seed=args.seed + 3
    )
    print(
        f"HiPer-D radius        : {hv.radius:.4f} "
        f"(sound={hv.sound}, tight={hv.tight})"
    )

    mf = machine_failure_scenario(
        mapping, etc, args.tau, fail_fraction=args.fail_fraction
    )
    print(
        f"machine failure       : machine {mf.failed_machine} at "
        f"t={mf.fail_time:.2f}, makespan {mf.baseline_makespan:.2f} -> "
        f"{mf.makespan:.2f} (x{mf.degradation:.3f})"
    )
    print(
        f"reassigned            : {len(mf.reassigned)} applications, "
        f"within tau*M_orig: {mf.within_tolerance}"
    )
    return 0 if cert.holds and hv.sound and hv.tight else 1


def _cmd_resilience(args) -> int:
    from repro.alloc.generators import random_mapping
    from repro.etcgen import cvb_etc_matrix
    from repro.faults import PerturbationSchedule
    from repro.io import save_result
    from repro.resilience import (
        evaluate_resilience,
        report_experiment,
        report_resilience,
        run_resilience_experiment,
    )

    if args.experiment:
        result = run_resilience_experiment(
            n_mappings=args.n_mappings,
            tau=args.tau,
            n_events=args.n_events,
            n_steps=args.n_steps,
            horizon=args.horizon,
            seed=args.seed,
            backend=args.backend,
        )
        _emit(report_experiment(result), args.out)
    else:
        etc = cvb_etc_matrix(20, 5, seed=args.seed)
        mapping = random_mapping(20, 5, seed=args.seed + 1)
        schedule = PerturbationSchedule.generate(
            args.n_events, 20, 5, horizon=args.horizon, seed=args.seed + 2
        )
        result = evaluate_resilience(
            mapping, etc, schedule, args.tau, n_steps=args.n_steps
        )
        _emit(report_resilience(result), args.out)
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        save_result(result, args.json_out)
        print(f"[result written to {args.json_out}]")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        SummaryStore,
        all_rules,
        changed_python_files,
        lint_paths,
        render_json,
        render_text,
        rule_catalog,
    )
    from repro.utils.tables import format_table

    if args.list_rules:
        rows = [list(row) for row in rule_catalog()]
        print(format_table(["code", "name", "severity", "description"], rows))
        return 0
    if args.sanitize_check:
        from repro.analysis.sanitize import sanitizer_selfcheck

        results = sanitizer_selfcheck()
        for name, ok, detail in results:
            print(f"{'ok  ' if ok else 'FAIL'} {name}: {detail}")
        n_bad = sum(1 for _, ok, _ in results if not ok)
        print(f"{len(results) - n_bad}/{len(results)} sanitizer checks passed")
        return 0 if n_bad == 0 else 1

    fix_mode = args.fix or args.fix_dry_run
    if args.diff and not args.fix:
        print("repro lint: --diff requires --fix", file=sys.stderr)
        return 2
    if args.fix and args.fix_dry_run:
        print(
            "repro lint: --fix and --fix-dry-run are mutually exclusive "
            "(--fix --diff previews without writing)",
            file=sys.stderr,
        )
        return 2
    if args.fix_suggested and not fix_mode:
        print(
            "repro lint: --fix-suggested requires --fix or --fix-dry-run",
            file=sys.stderr,
        )
        return 2
    if fix_mode and args.format == "json":
        print(
            "repro lint: --fix/--fix-dry-run emit text output only; "
            "drop --format json",
            file=sys.stderr,
        )
        return 2

    paths = list(args.paths)
    if args.changed is not None:
        # --changed alone diffs the work tree; --changed=REF also includes
        # files committed in REF...HEAD.  A value that exists on disk is
        # almost certainly a positional path that swallowed the flag's
        # optional argument — reject it rather than hand it to git.
        ref = None if args.changed is True else str(args.changed)
        if ref is not None and Path(ref).exists():
            print(
                f"repro lint: --changed={ref} looks like a path, not a git "
                "ref; put paths before --changed or use --changed=REF with "
                "a commit-ish",
                file=sys.stderr,
            )
            return 2
        try:
            changed = changed_python_files(exclude=args.exclude, ref=ref)
        except RuntimeError as err:
            # Not a git work tree (tarball checkout, exported sources):
            # --changed cannot know what changed, so degrade gracefully to a
            # full lint of the requested paths instead of erroring out.
            paths = paths if paths else [Path(".")]
            print(
                f"repro lint: --changed unavailable ({err}); "
                "falling back to a full lint of "
                + " ".join(str(p) for p in paths),
                file=sys.stderr,
            )
        else:
            if not changed:
                print("0 findings in 0 files (no changed python files)")
                return 0
            roots = [p.resolve() for p in paths]
            if roots:
                changed = [
                    f
                    for f in changed
                    if any(r == f or r in f.resolve().parents for r in roots)
                ]
            paths = changed
            if not paths:
                print(
                    "0 findings in 0 files (no changed python files under the given paths)"
                )
                return 0
    elif not paths:
        print(
            "repro lint: at least one path is required "
            "(or --changed / --list-rules / --sanitize-check)",
            file=sys.stderr,
        )
        return 2
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        if not select:
            print(
                f"repro lint: --select={args.select!r} names no rule codes; "
                "expected a comma-separated list like R001,R110",
                file=sys.stderr,
            )
            return 2
        unknown = sorted(set(select) - set(all_rules()))
        if unknown:
            print(
                "repro lint: unknown rule code"
                + ("s" if len(unknown) > 1 else "")
                + " "
                + ", ".join(unknown)
                + "; valid codes: "
                + ", ".join(sorted(all_rules())),
                file=sys.stderr,
            )
            return 2
    cache = None
    if not args.no_cache and select is None:
        store = SummaryStore(args.cache_file) if args.cache_file else SummaryStore()
        cache = store
    try:
        if fix_mode:
            from repro.analysis import fix_paths

            write = args.fix and not args.diff
            report, outcome = fix_paths(
                paths,
                select=select,
                exclude=args.exclude,
                cache=cache,
                include_suggested=args.fix_suggested,
                write=write,
            )
        else:
            report = lint_paths(
                paths, select=select, exclude=args.exclude, cache=cache
            )
    except KeyError as err:
        print(f"repro lint: unknown rule code {err.args[0]!r}", file=sys.stderr)
        return 2
    except FileNotFoundError as err:
        print(f"repro lint: no such path: {err.args[0]}", file=sys.stderr)
        return 2
    if fix_mode:
        if args.diff:
            diff = outcome.diff()
            if diff:
                print(diff, end="" if diff.endswith("\n") else "\n")
        label = "fixed" if write else "would fix"
        parts = [
            f"{label} {outcome.n_applied} finding(s) "
            f"in {outcome.n_files_changed} file(s)"
        ]
        if outcome.n_skipped_suggested:
            parts.append(
                f"{outcome.n_skipped_suggested} suggested fix(es) withheld "
                "(--fix-suggested applies them)"
            )
        if outcome.reparse_failures:
            parts.append(
                f"{len(outcome.reparse_failures)} file(s) reverted "
                "(patched text failed to parse)"
            )
        print("; ".join(parts))
    render = render_json if args.format == "json" else render_text
    print(
        render(
            report.findings,
            files_checked=report.files_checked,
            n_suppressed=report.n_suppressed,
            n_reanalyzed=report.n_reanalyzed if cache is not None else None,
        )
    )
    return 0 if report.clean else 1


def _cmd_trace_check(args) -> int:
    import json

    from repro import obs

    try:
        doc = json.loads(args.trace_file.read_text(encoding="utf-8"))
    except (OSError, ValueError) as err:
        print(f"repro trace check: cannot read {args.trace_file}: {err}", file=sys.stderr)
        return 2
    schema = None
    if args.schema is not None:
        try:
            schema = json.loads(args.schema.read_text(encoding="utf-8"))
        except (OSError, ValueError) as err:
            print(
                f"repro trace check: cannot read schema {args.schema}: {err}",
                file=sys.stderr,
            )
            return 2
    problems = obs.validate_chrome_trace(doc, schema)
    if problems:
        for p in problems:
            print(f"INVALID {p}")
        return 1
    print(f"ok: {args.trace_file} ({len(doc['traceEvents'])} events)")
    return 0


def _cmd_trace(args) -> int:
    from repro import obs

    if args.trace_command == "check":
        return _cmd_trace_check(args)

    inner = list(args.argv)
    if inner and inner[0] == "--":
        inner = inner[1:]
    if not inner:
        print(
            "repro trace run: give the subcommand to run, e.g. "
            "'repro trace run --profile heuristics'",
            file=sys.stderr,
        )
        return 2
    if inner[0] == "trace":
        print("repro trace run: nesting trace is not supported", file=sys.stderr)
        return 2
    if inner[0] not in _COMMANDS:
        print(f"repro trace run: unknown subcommand {inner[0]!r}", file=sys.stderr)
        return 2
    inner_args = build_parser().parse_args(inner)
    obs.reset_metrics()
    with obs.observed() as tracer:
        with tracer.span(f"cli.{inner[0]}"):
            status = _COMMANDS[inner_args.command](inner_args)
    spans = tracer.spans()
    if args.profile:
        print()
        print(obs.render_breakdown(spans))
    if args.trace_out is not None:
        obs.write_chrome_trace(spans, args.trace_out)
        print(f"[trace written to {args.trace_out}]")
    if args.metrics_out is not None:
        registry = obs.get_registry()
        text = (
            registry.render_prometheus()
            if args.metrics_format == "prometheus"
            else registry.render_json() + "\n"
        )
        args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        args.metrics_out.write_text(text, encoding="utf-8")
        print(f"[metrics written to {args.metrics_out}]")
    return status


def _cmd_serve(args) -> int:
    import asyncio
    import os

    from repro.serve import RobustnessServer, ServeConfig

    # --backend beats REPRO_BACKEND beats the service default (asyncio —
    # unlike library use, a server wants the loop-friendly substrate)
    backend = args.backend or os.environ.get("REPRO_BACKEND") or "asyncio"
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.batch_size,
        flush_ms=args.flush_ms,
        max_pending=args.max_pending,
        rate=args.rate,
        burst=args.burst,
        backend=backend,
    )
    server = RobustnessServer(config)

    async def run() -> None:
        await server.start()
        print(
            f"repro serve: listening on http://{config.host}:{server.port} "
            f"(batch={config.max_batch}, flush={config.flush_ms}ms, "
            f"backend={config.backend})"
        )
        try:
            while True:
                await asyncio.sleep(3600)
        except asyncio.CancelledError:
            pass
        finally:
            print("repro serve: draining...")
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


_COMMANDS = {
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "table2": _cmd_table2,
    "validate": _cmd_validate,
    "heuristics": _cmd_heuristics,
    "monitor": _cmd_monitor,
    "serve": _cmd_serve,
    "faults": _cmd_faults,
    "resilience": _cmd_resilience,
    "lint": _cmd_lint,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(legacy=False)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
