"""Exception hierarchy for :mod:`repro`.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.

Every class here must survive pickling across process boundaries with its
arguments and attributes intact: the fault-tolerant solve layer
(:mod:`repro.engine.fault`) ships exceptions raised inside pool workers back
to the parent process via :mod:`concurrent.futures`, which pickles them.
Classes whose ``__init__`` takes keyword-only attributes therefore define
``__reduce__`` explicitly; ``tests/test_exceptions.py`` enforces the
round-trip for every subclass.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "InfeasibleAtOriginError",
    "SolverError",
    "SolverTimeoutError",
    "WorkerCrashError",
    "SanitizerError",
    "ModelError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An input failed validation (bad shape, negative size, NaN, ...)."""


class InfeasibleAtOriginError(ReproError):
    """The system violates a robustness requirement at the assumed operating
    point ``pi_orig`` and the caller asked for strict feasibility.

    The paper (Section 2, step 4) assumes the system starts inside the robust
    region.  Most APIs in this library instead return *signed* radii (negative
    when the origin already violates a bound) and only raise this error when
    ``require_feasible=True`` is passed.
    """


class SolverError(ReproError):
    """A numeric boundary-minimization solve failed to converge."""


class SolverTimeoutError(SolverError):
    """A solve exceeded :attr:`~repro.core.config.SolverConfig.task_timeout`.

    Raised (or recorded, depending on ``on_error``) by the fault-tolerant
    solve layer when a pooled radius task does not complete within its
    per-attempt deadline.  The hung worker is abandoned and the pool rebuilt.
    """

    def __init__(
        self,
        message: str = "solver task timed out",
        *,
        timeout: float | None = None,
        task_index: int | None = None,
    ) -> None:
        super().__init__(message)
        #: the per-attempt deadline that was exceeded, in seconds
        self.timeout = timeout
        #: index of the task in its batch (None outside batch context)
        self.task_index = task_index

    def __reduce__(self):
        return (
            _rebuild,
            (type(self), self.args, {"timeout": self.timeout, "task_index": self.task_index}),
        )


class WorkerCrashError(ReproError):
    """A process-pool worker died while executing a solve task.

    The executor reports this as ``BrokenProcessPool`` for *every* in-flight
    future; the fault-tolerant layer re-probes the in-flight tasks one at a
    time to attribute the crash, then raises or records this error for the
    guilty task.
    """

    def __init__(
        self,
        message: str = "process-pool worker crashed",
        *,
        task_index: int | None = None,
        attempts: int | None = None,
    ) -> None:
        super().__init__(message)
        #: index of the task in its batch (None when unattributed)
        self.task_index = task_index
        #: number of attempts made before giving up
        self.attempts = attempts

    def __reduce__(self):
        return (
            _rebuild,
            (type(self), self.args, {"task_index": self.task_index, "attempts": self.attempts}),
        )


class SanitizerError(ReproError):
    """A runtime numeric post-condition failed inside a sanitized computation.

    Raised by :mod:`repro.analysis.sanitize` when a radius computation
    produces a silently-invalid result: a NaN radius on a converged solve, a
    negative radius at a feasible origin, or a metric that disagrees with the
    minimum of its own per-feature radii.  Under ``on_error="record"`` /
    ``"degrade"`` the violation is recorded as a
    :class:`~repro.engine.fault.FailureRecord` with ``stage="sanitize"``
    instead of raising.
    """

    def __init__(
        self,
        message: str = "numeric sanitizer post-condition failed",
        *,
        check: str | None = None,
        context: str | None = None,
    ) -> None:
        super().__init__(message)
        #: short machine-readable name of the violated post-condition
        self.check = check
        #: where the violation was observed (function or batch slot)
        self.context = context

    def __reduce__(self):
        return (
            _rebuild,
            (type(self), self.args, {"check": self.check, "context": self.context}),
        )


class ModelError(ReproError):
    """A system model is structurally invalid (cyclic DAG, dangling edge,
    application mapped to an unknown machine, ...)."""


def _rebuild(cls: type, args: tuple, attrs: dict):
    """Reconstruct an exception with keyword-only attributes (pickle helper)."""
    exc = cls(*args)
    for name, value in attrs.items():
        setattr(exc, name, value)
    return exc
