"""Exception hierarchy for :mod:`repro`.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "InfeasibleAtOriginError",
    "SolverError",
    "ModelError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An input failed validation (bad shape, negative size, NaN, ...)."""


class InfeasibleAtOriginError(ReproError):
    """The system violates a robustness requirement at the assumed operating
    point ``pi_orig`` and the caller asked for strict feasibility.

    The paper (Section 2, step 4) assumes the system starts inside the robust
    region.  Most APIs in this library instead return *signed* radii (negative
    when the origin already violates a bound) and only raise this error when
    ``require_feasible=True`` is passed.
    """


class SolverError(ReproError):
    """A numeric boundary-minimization solve failed to converge."""


class ModelError(ReproError):
    """A system model is structurally invalid (cyclic DAG, dangling edge,
    application mapped to an unknown machine, ...)."""
