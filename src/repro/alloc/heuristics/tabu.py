"""Tabu-search mapper.

Steepest-descent over the single-task-reassignment neighborhood with a tabu
list on (task, old_machine) moves to escape local minima; keeps the best
solution ever visited.  Fitness is pluggable (makespan or robustness).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.alloc.heuristics.listsched import min_min
from repro.alloc.heuristics.objective import make_objective
from repro.alloc.mapping import Mapping
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_2d_float_array, check_positive_int

__all__ = ["tabu_search"]


def tabu_search(
    etc,
    *,
    seed=None,
    objective="makespan",
    tau: float = 1.2,
    iterations: int = 150,
    tabu_tenure: int = 12,
    start_from_min_min: bool = True,
) -> Mapping:
    """Tabu search over single-reassignment moves.

    Every iteration evaluates the full neighborhood (``n_tasks x n_machines``
    candidates, batch-scored) and takes the best non-tabu move; a tabu move
    is still taken when it improves on the incumbent best (aspiration).
    """
    etc = as_2d_float_array(etc, "etc")
    n_tasks, n_machines = etc.shape
    iterations = check_positive_int(iterations, "iterations")
    rng = ensure_rng(seed)
    score = make_objective(objective, etc, tau=tau)

    current = (
        min_min(etc).assignment.copy()
        if start_from_min_min
        else rng.integers(0, n_machines, size=n_tasks, dtype=np.int64)
    )
    cur_fit = float(score(current[None, :])[0])
    best, best_fit = current.copy(), cur_fit
    tabu: deque[tuple[int, int]] = deque(maxlen=max(1, tabu_tenure))

    # Precompute the neighborhood index grid once.
    tasks = np.repeat(np.arange(n_tasks), n_machines)
    machines = np.tile(np.arange(n_machines), n_tasks)

    for _ in range(iterations):
        neigh = np.repeat(current[None, :], n_tasks * n_machines, axis=0)
        neigh[np.arange(neigh.shape[0]), tasks] = machines
        fits = score(neigh)
        # Exclude null moves (same machine).
        null = machines == current[tasks]
        fits = np.where(null, np.inf, fits)
        order = np.argsort(fits, kind="stable")
        moved = False
        for k in order:
            if not np.isfinite(fits[k]):
                break
            move = (int(tasks[k]), int(machines[k]))
            is_tabu = (move[0], int(current[move[0]])) in tabu or move in tabu
            if is_tabu and fits[k] >= best_fit:
                continue
            tabu.append((move[0], int(current[move[0]])))
            current = neigh[k].copy()
            cur_fit = float(fits[k])
            moved = True
            break
        if not moved:
            break
        if cur_fit < best_fit:
            best, best_fit = current.copy(), cur_fit
    return Mapping(best, n_machines)
