"""Robustness-maximizing mapping heuristics (library extension).

The paper motivates choosing mappings by their robustness rather than by
makespan alone ("an important research problem is how to determine a mapping
... so as to maximize robustness").  These heuristics do exactly that with
the Eq. 7 metric as the greedy criterion:

- :func:`robust_mct` — immediate mode: each task goes to the machine that
  maximizes the *partial* robustness metric of the mapping built so far;
- :func:`greedy_robust` — batch mode: starts from a makespan-oriented seed
  (Min-min) and hill-climbs single-task reassignments on the robustness
  metric until no move improves it.
"""

from __future__ import annotations

import numpy as np

from repro.alloc.heuristics.listsched import min_min
from repro.alloc.mapping import Mapping
from repro.alloc.robustness import batch_robustness
from repro.utils.validation import as_2d_float_array, check_positive

__all__ = ["robust_mct", "greedy_robust"]


def robust_mct(etc, *, seed=None, tau: float = 1.2) -> Mapping:
    """Immediate-mode robustness greedy (MCT with Eq. 6 as the criterion).

    While assigning task ``i``, the candidate partial mappings (one per
    machine) are scored by the minimum per-machine radius over the machines
    used so far — the partial-mapping analogue of Eq. 7 — and the best
    machine wins.  Ties (common early on) fall back to minimum completion
    time.
    """
    etc = as_2d_float_array(etc, "etc")
    check_positive(tau, "tau")
    n_tasks, n_machines = etc.shape
    ready = np.zeros(n_machines)
    counts = np.zeros(n_machines)
    out = np.empty(n_tasks, dtype=np.int64)
    for i in range(n_tasks):
        best_j = -1
        best_key = None
        for j in range(n_machines):
            f = ready.copy()
            f[j] += etc[i, j]
            c = counts.copy()
            c[j] += 1
            m_orig = f.max()
            used = c > 0
            radii = (tau * m_orig - f[used]) / np.sqrt(c[used])
            rho = radii.min()
            completion = f[j]
            key = (-rho, completion)  # maximize rho, then earliest finish
            if best_key is None or key < best_key:
                best_key = key
                best_j = j
        out[i] = best_j
        ready[best_j] += etc[i, best_j]
        counts[best_j] += 1
    return Mapping(out, n_machines)


def greedy_robust(etc, *, seed=None, tau: float = 1.2, max_rounds: int = 200) -> Mapping:
    """Hill-climb the robustness metric from a Min-min seed.

    Each round batch-evaluates every single-task reassignment and takes the
    best strictly-improving one; stops at a local maximum of Eq. 7.
    """
    etc = as_2d_float_array(etc, "etc")
    check_positive(tau, "tau")
    n_tasks, n_machines = etc.shape
    current = min_min(etc).assignment.copy()
    cur_rho = float(batch_robustness(current[None, :], etc, tau)[0])

    tasks = np.repeat(np.arange(n_tasks), n_machines)
    machines = np.tile(np.arange(n_machines), n_tasks)
    for _ in range(max_rounds):
        neigh = np.repeat(current[None, :], n_tasks * n_machines, axis=0)
        neigh[np.arange(neigh.shape[0]), tasks] = machines
        rho = batch_robustness(neigh, etc, tau)
        k = int(np.argmax(rho))
        if rho[k] <= cur_rho + 1e-12:
            break
        current = neigh[k].copy()
        cur_rho = float(rho[k])
    return Mapping(current, n_machines)
