"""Immediate-mode mapping baselines (Braun et al. / Maheswaran et al.).

Each heuristic considers the applications one at a time in index order and
assigns greedily; they differ in what they look at:

- **round_robin** — machine ``i mod |M|`` (ignores ETCs entirely);
- **OLB** (Opportunistic Load Balancing) — the machine that becomes ready
  earliest, ignoring the task's ETC on it;
- **MET** (Minimum Execution Time) — the machine with the smallest ETC for
  the task, ignoring machine load;
- **MCT** (Minimum Completion Time) — the machine minimizing ready time +
  ETC; the standard greedy baseline.
"""

from __future__ import annotations

import numpy as np

from repro.alloc.mapping import Mapping
from repro.utils.validation import as_2d_float_array

__all__ = ["round_robin", "olb", "met", "mct"]


def round_robin(etc, *, seed=None) -> Mapping:
    """Assign application ``i`` to machine ``i mod |M|``."""
    etc = as_2d_float_array(etc, "etc")
    n_tasks, n_machines = etc.shape
    return Mapping(np.arange(n_tasks) % n_machines, n_machines)


def olb(etc, *, seed=None) -> Mapping:
    """Opportunistic Load Balancing: next task goes to the earliest-ready
    machine (ties broken by lowest index)."""
    etc = as_2d_float_array(etc, "etc")
    n_tasks, n_machines = etc.shape
    ready = np.zeros(n_machines)
    out = np.empty(n_tasks, dtype=np.int64)
    for i in range(n_tasks):
        j = int(np.argmin(ready))
        out[i] = j
        ready[j] += etc[i, j]
    return Mapping(out, n_machines)


def met(etc, *, seed=None) -> Mapping:
    """Minimum Execution Time: each task to its fastest machine (can pile
    all work on one machine in consistent ETCs — a known pathology)."""
    etc = as_2d_float_array(etc, "etc")
    return Mapping(np.argmin(etc, axis=1), etc.shape[1])


def mct(etc, *, seed=None) -> Mapping:
    """Minimum Completion Time: each task to the machine where it finishes
    earliest given current loads."""
    etc = as_2d_float_array(etc, "etc")
    n_tasks, n_machines = etc.shape
    ready = np.zeros(n_machines)
    out = np.empty(n_tasks, dtype=np.int64)
    for i in range(n_tasks):
        j = int(np.argmin(ready + etc[i]))
        out[i] = j
        ready[j] += etc[i, j]
    return Mapping(out, n_machines)
