"""Mapping heuristics for independent application allocation.

The paper frames the metric as a tool for evaluating mappings produced by
heuristics (its references [7, 21] catalogue them).  This subpackage
implements the standard ones as baselines plus robustness-aware variants:

- immediate-mode baselines (:mod:`~repro.alloc.heuristics.baselines`):
  OLB, MET, MCT, round-robin;
- batch-mode list heuristics (:mod:`~repro.alloc.heuristics.listsched`):
  Min-min, Max-min, Sufferage, Duplex;
- iterative metaheuristics: genetic algorithm
  (:mod:`~repro.alloc.heuristics.genetic`), simulated annealing
  (:mod:`~repro.alloc.heuristics.annealing`), tabu search
  (:mod:`~repro.alloc.heuristics.tabu`);
- robustness-maximizing variants (:mod:`~repro.alloc.heuristics.robust`)
  that greedily maximize the Eq. 7 metric instead of minimizing makespan.

All heuristics share the signature ``heuristic(etc, *, seed=None, **params)
-> Mapping`` and are listed in :data:`HEURISTICS` for sweeps.
"""

from repro.alloc.heuristics.baselines import mct, met, olb, round_robin
from repro.alloc.heuristics.listsched import duplex, max_min, min_min, sufferage
from repro.alloc.heuristics.genetic import genetic_algorithm
from repro.alloc.heuristics.annealing import simulated_annealing
from repro.alloc.heuristics.tabu import tabu_search
from repro.alloc.heuristics.robust import greedy_robust, robust_mct

HEURISTICS = {
    "round_robin": round_robin,
    "olb": olb,
    "met": met,
    "mct": mct,
    "min_min": min_min,
    "max_min": max_min,
    "sufferage": sufferage,
    "duplex": duplex,
    "ga": genetic_algorithm,
    "sa": simulated_annealing,
    "tabu": tabu_search,
    "robust_mct": robust_mct,
    "greedy_robust": greedy_robust,
}

__all__ = [
    "HEURISTICS",
    "olb",
    "met",
    "mct",
    "round_robin",
    "min_min",
    "max_min",
    "sufferage",
    "duplex",
    "genetic_algorithm",
    "simulated_annealing",
    "tabu_search",
    "robust_mct",
    "greedy_robust",
]
