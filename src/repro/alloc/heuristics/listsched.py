"""Batch-mode list heuristics: Min-min, Max-min, Sufferage, Duplex.

These consider the whole unmapped set every round (Braun et al. [7] found
Min-min and GA the strongest of eleven heuristics):

- **Min-min**: each round compute every unmapped task's minimum completion
  time (MCT over machines); map the task with the *smallest* such MCT.
- **Max-min**: same, but map the task with the *largest* minimum MCT (gets
  long tasks out of the way first).
- **Sufferage**: map the task that would "suffer" most if denied its best
  machine (largest difference between second-best and best completion time).
- **Duplex**: run Min-min and Max-min, keep the better makespan.
"""

from __future__ import annotations

import numpy as np

from repro.alloc.makespan import makespan
from repro.alloc.mapping import Mapping
from repro.utils.validation import as_2d_float_array

__all__ = ["min_min", "max_min", "sufferage", "duplex"]


def _list_schedule(etc: np.ndarray, pick: str) -> Mapping:
    n_tasks, n_machines = etc.shape
    unmapped = np.ones(n_tasks, dtype=bool)
    ready = np.zeros(n_machines)
    out = np.empty(n_tasks, dtype=np.int64)
    for _ in range(n_tasks):
        idx = np.flatnonzero(unmapped)
        completion = ready[None, :] + etc[idx]  # (k, n_machines)
        best_machine = np.argmin(completion, axis=1)
        best_time = completion[np.arange(idx.size), best_machine]
        if pick == "min":
            k = int(np.argmin(best_time))
        elif pick == "max":
            k = int(np.argmax(best_time))
        else:  # sufferage
            if n_machines == 1:
                k = int(np.argmin(best_time))
            else:
                part = np.partition(completion, 1, axis=1)
                suffer = part[:, 1] - part[:, 0]
                k = int(np.argmax(suffer))
        task = int(idx[k])
        machine = int(best_machine[k])
        out[task] = machine
        ready[machine] += etc[task, machine]
        unmapped[task] = False
    return Mapping(out, n_machines)


def min_min(etc, *, seed=None) -> Mapping:
    """Min-min list scheduling."""
    return _list_schedule(as_2d_float_array(etc, "etc"), "min")


def max_min(etc, *, seed=None) -> Mapping:
    """Max-min list scheduling."""
    return _list_schedule(as_2d_float_array(etc, "etc"), "max")


def sufferage(etc, *, seed=None) -> Mapping:
    """Sufferage list scheduling."""
    return _list_schedule(as_2d_float_array(etc, "etc"), "sufferage")


def duplex(etc, *, seed=None) -> Mapping:
    """Duplex: the better of Min-min and Max-min by makespan."""
    etc = as_2d_float_array(etc, "etc")
    a = min_min(etc)
    b = max_min(etc)
    return a if makespan(a, etc) <= makespan(b, etc) else b
