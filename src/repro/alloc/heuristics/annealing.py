"""Simulated-annealing mapper.

Single-solution metaheuristic over assignment vectors: a move reassigns one
random task to a random machine; worse moves are accepted with probability
``exp(-delta / T)`` under a geometric cooling schedule.  Fitness is pluggable
(makespan or robustness), as in the GA.
"""

from __future__ import annotations

import math

import numpy as np

from repro.alloc.heuristics.listsched import min_min
from repro.alloc.heuristics.objective import make_objective
from repro.alloc.mapping import Mapping
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_2d_float_array, check_positive, check_positive_int

__all__ = ["simulated_annealing"]


def simulated_annealing(
    etc,
    *,
    seed=None,
    objective="makespan",
    tau: float = 1.2,
    iterations: int = 4000,
    t_start: float | None = None,
    cooling: float = 0.995,
    start_from_min_min: bool = True,
) -> Mapping:
    """Anneal a mapping; returns the best solution ever visited.

    ``t_start`` defaults to the initial objective value (a scale-free
    choice); ``cooling`` is the geometric decay applied every iteration.
    """
    etc = as_2d_float_array(etc, "etc")
    n_tasks, n_machines = etc.shape
    iterations = check_positive_int(iterations, "iterations")
    cooling = check_positive(cooling, "cooling")
    if cooling >= 1.0:
        raise ValueError("cooling must be < 1")
    rng = ensure_rng(seed)
    score = make_objective(objective, etc, tau=tau)

    current = (
        min_min(etc).assignment.copy()
        if start_from_min_min
        else rng.integers(0, n_machines, size=n_tasks, dtype=np.int64)
    )
    cur_fit = float(score(current[None, :])[0])
    best, best_fit = current.copy(), cur_fit
    temp = float(t_start) if t_start is not None else max(abs(cur_fit), 1.0)

    for _ in range(iterations):
        task = int(rng.integers(n_tasks))
        machine = int(rng.integers(n_machines))
        if machine == current[task]:
            temp *= cooling
            continue
        cand = current.copy()
        cand[task] = machine
        cand_fit = float(score(cand[None, :])[0])
        delta = cand_fit - cur_fit
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-300)):
            current, cur_fit = cand, cand_fit
            if cur_fit < best_fit:
                best, best_fit = current.copy(), cur_fit
        temp *= cooling
    return Mapping(best, n_machines)
