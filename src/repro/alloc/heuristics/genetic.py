"""Genetic-algorithm mapper (Braun et al. [7] / Wang et al. [25] style).

Chromosomes are assignment vectors.  The population is seeded with the
Min-min solution plus random mappings; each generation applies elitist
selection, uniform crossover and point mutation.  The fitness is pluggable
(makespan by default, or the robustness metric — see
:mod:`~repro.alloc.heuristics.objective`).
"""

from __future__ import annotations

import numpy as np

from repro.alloc.heuristics.listsched import min_min
from repro.alloc.heuristics.objective import make_objective
from repro.alloc.mapping import Mapping
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_2d_float_array, check_positive_int, check_probability

__all__ = ["genetic_algorithm"]


def genetic_algorithm(
    etc,
    *,
    seed=None,
    objective="makespan",
    tau: float = 1.2,
    population: int = 60,
    generations: int = 120,
    crossover_rate: float = 0.9,
    mutation_rate: float = 0.05,
    elite: int = 2,
    seed_with_min_min: bool = True,
    patience: int = 40,
) -> Mapping:
    """Evolve a mapping; returns the best individual ever seen.

    Parameters
    ----------
    objective, tau:
        See :func:`repro.alloc.heuristics.objective.make_objective`.
    population, generations:
        GA size knobs; defaults are sized for 20x5 problems.
    crossover_rate, mutation_rate:
        Per-pair crossover probability and per-gene mutation probability.
    elite:
        Number of best individuals copied unchanged each generation.
    seed_with_min_min:
        Include the Min-min solution in the initial population (standard
        practice in [7]; disable for a pure random start).
    patience:
        Stop early after this many generations without improvement.
    """
    etc = as_2d_float_array(etc, "etc")
    n_tasks, n_machines = etc.shape
    population = max(check_positive_int(population, "population"), 2 + elite)
    generations = check_positive_int(generations, "generations")
    check_probability(crossover_rate, "crossover_rate")
    check_probability(mutation_rate, "mutation_rate")
    rng = ensure_rng(seed)
    score = make_objective(objective, etc, tau=tau)

    pop = rng.integers(0, n_machines, size=(population, n_tasks), dtype=np.int64)
    if seed_with_min_min:
        pop[0] = min_min(etc).assignment
    fitness = score(pop)

    best_idx = int(np.argmin(fitness))
    best = pop[best_idx].copy()
    best_fit = float(fitness[best_idx])
    stale = 0

    for _ in range(generations):
        order = np.argsort(fitness)
        pop = pop[order]
        fitness = fitness[order]
        new_pop = [pop[k].copy() for k in range(elite)]
        # Binary-tournament selection over the sorted population.
        while len(new_pop) < population:
            i1, i2 = rng.integers(0, population, size=2)
            p1 = pop[min(i1, i2)]
            i3, i4 = rng.integers(0, population, size=2)
            p2 = pop[min(i3, i4)]
            c1, c2 = p1.copy(), p2.copy()
            if rng.random() < crossover_rate:
                mask = rng.random(n_tasks) < 0.5
                c1[mask], c2[mask] = p2[mask], p1[mask]
            for child in (c1, c2):
                mut = rng.random(n_tasks) < mutation_rate
                if mut.any():
                    child[mut] = rng.integers(0, n_machines, size=int(mut.sum()))
                new_pop.append(child)
        pop = np.array(new_pop[:population], dtype=np.int64)
        fitness = score(pop)
        gen_best = int(np.argmin(fitness))
        if fitness[gen_best] < best_fit - 1e-15:
            best_fit = float(fitness[gen_best])
            best = pop[gen_best].copy()
            stale = 0
        else:
            stale += 1
            if stale >= patience:
                break
    return Mapping(best, n_machines)
