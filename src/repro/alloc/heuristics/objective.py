"""Objectives shared by the iterative metaheuristics (GA / SA / tabu).

An objective scores an assignment vector; the metaheuristics *minimize* it.
Two built-ins cover the paper's two viewpoints:

- ``"makespan"`` — classic performance (minimize ``M_orig``);
- ``"robustness"`` — maximize the Eq. 7 metric ``rho_mu(Phi, C)`` for a
  given tolerance ``tau`` (implemented as minimizing ``-rho``), turning any
  metaheuristic into a robustness-maximizing mapper.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.alloc.makespan import batch_makespan
from repro.exceptions import ValidationError

__all__ = ["make_objective"]


def make_objective(
    objective: str | Callable[[np.ndarray, np.ndarray], np.ndarray],
    etc: np.ndarray,
    *,
    tau: float = 1.2,
) -> Callable[[np.ndarray], np.ndarray]:
    """Build a batch scoring function ``scores = f(assignments)`` to minimize.

    ``objective`` may be ``"makespan"``, ``"robustness"`` or a callable
    ``f(assignments, etc) -> scores`` (lower is better).  The robustness
    objective scores the whole population through one
    :class:`~repro.engine.RobustnessEngine` call per generation.
    """
    etc = np.asarray(etc, dtype=float)
    if callable(objective):
        return lambda assignments: np.asarray(objective(assignments, etc), dtype=float)
    if objective == "makespan":
        return lambda assignments: batch_makespan(assignments, etc)
    if objective == "robustness":
        from repro.engine import RobustnessEngine  # local: engine imports alloc

        engine = RobustnessEngine()
        return lambda assignments: -engine.evaluate_allocation(
            assignments, etc, tau
        ).values
    raise ValidationError(
        f"unknown objective {objective!r}; expected 'makespan', 'robustness' or a callable"
    )
