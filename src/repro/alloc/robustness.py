"""Robustness of an independent-application mapping (paper Eqs. 5-7).

The perturbation parameter is the vector ``C`` of actual application
computation times, anchored at the ETC-derived ``C_orig``; the performance
features are the machine finishing times ``F_j``, each bounded above by
``tau * M_orig``.  Because ``F_j`` is a sum of the ``C_i`` on machine ``j``
(Eq. 4), every robustness radius is a point-to-hyperplane distance and Eq. 5
collapses to the closed form (Eq. 6):

    r_mu(F_j, C) = (tau * M_orig - F_j(C_orig)) / sqrt(n(m_j))

with ``n(m_j)`` the number of applications on machine ``j``.  The mapping's
robustness (Eq. 7) is the minimum over machines that have at least one
application (an empty machine's finishing time is constant and can never
violate the bound — infinite radius).

Everything here is cross-checked in the test suite against the generic FePIA
framework (:func:`fepia_analysis` builds the same system symbolically).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.makespan import batch_finishing_times, finishing_times, makespan
from repro.alloc.mapping import Mapping
from repro.core.config import SolverConfig, resolve_config
from repro.core.fepia import FePIAAnalysis
from repro.core.metric import MetricResult
from repro.core.norms import L2Norm, Norm, get_norm
from repro.exceptions import InfeasibleAtOriginError, ValidationError
from repro.obs import trace as obs_trace
from repro.utils.serialization import decode_array, decode_float, encode_array, encode_float
from repro.utils.validation import check_positive

__all__ = [
    "AllocationRobustness",
    "robustness_radii",
    "robustness",
    "critical_machine",
    "boundary_etc_vector",
    "batch_robustness_radii",
    "batch_robustness",
    "weighted_robustness_radii",
    "fepia_analysis",
]


@dataclass(frozen=True)
class AllocationRobustness:
    """Result of a makespan-robustness analysis for one mapping."""

    #: ``rho_mu(Phi, C)`` (Eq. 7), in time units
    value: float
    #: per-machine radii ``r_mu(F_j, C)`` (Eq. 6); ``inf`` for empty machines
    radii: np.ndarray
    #: machine index attaining the minimum (the critical machine)
    critical_machine: int
    #: predicted makespan ``M_orig``
    makespan: float
    #: the tolerance factor ``tau``
    tau: float

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "AllocationRobustness",
            "version": 1,
            "value": encode_float(self.value),
            "radii": encode_array(self.radii),
            "critical_machine": int(self.critical_machine),
            "makespan": encode_float(self.makespan),
            "tau": encode_float(self.tau),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AllocationRobustness":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "AllocationRobustness":
            raise ValidationError(
                f"expected type 'AllocationRobustness', got {data.get('type')!r}"
            )
        return cls(
            value=decode_float(data["value"]),
            radii=decode_array(data["radii"]),
            critical_machine=int(data["critical_machine"]),
            makespan=decode_float(data["makespan"]),
            tau=decode_float(data["tau"]),
        )


def robustness_radii(
    mapping: Mapping, etc: np.ndarray, tau: float, *, norm: Norm | str | None = None
) -> np.ndarray:
    """Per-machine robustness radii ``r_mu(F_j, C)`` (Eq. 6).

    ``tau`` is the makespan tolerance factor (Section 3.1: "actual makespan
    ... no more than ``tau`` times its predicted value"; the experiments use
    1.2).  Machines with no applications get ``inf``.

    With the default l2 norm this is exactly Eq. 6's
    ``(tau M_orig - F_j) / sqrt(n(m_j))``; any other
    :class:`~repro.core.norms.Norm` generalizes the denominator to the dual
    norm of the machine's 0/1 indicator row (Eq. 5's point-to-hyperplane
    distance under that norm).
    """
    tau = check_positive(tau, "tau")
    norm = get_norm(norm)
    f = finishing_times(mapping, etc)
    m_orig = float(f.max())
    counts = mapping.counts()
    if isinstance(norm, L2Norm):
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                counts > 0,
                (tau * m_orig - f) / np.sqrt(np.maximum(counts, 1)),
                np.inf,
            )
    indicator = mapping.indicator_matrix()
    duals = np.array([norm.dual(row) for row in indicator])
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(
            counts > 0, (tau * m_orig - f) / np.maximum(duals, 1e-300), np.inf
        )


def robustness(
    mapping: Mapping,
    etc: np.ndarray,
    tau: float,
    *,
    norm: Norm | str | None = None,
    config: SolverConfig | dict | None = None,
    require_feasible: bool = False,
    solver_options: dict | None = None,
) -> AllocationRobustness:
    """The robustness metric ``rho_mu(Phi, C)`` of a mapping (Eq. 7).

    This entry point shares the unified keyword signature of
    :func:`repro.hiperd.robustness.robustness` (``norm=``, ``config=``,
    ``require_feasible=``) so callers — in particular the batched
    :class:`~repro.engine.RobustnessEngine` — can dispatch to either example
    system without special-casing.

    Parameters
    ----------
    norm:
        Perturbation norm (default l2, the paper's choice).
    config:
        :class:`~repro.core.config.SolverConfig`; accepted for signature
        uniformity (the closed form needs no solver knobs).  A plain dict is
        accepted with a ``DeprecationWarning``.
    require_feasible:
        Raise :class:`~repro.exceptions.InfeasibleAtOriginError` when some
        machine already violates the makespan bound at ``C_orig`` (possible
        only for ``tau < 1``) instead of returning a negative value.
    solver_options:
        Removed after its deprecation cycle; any value raises
        :class:`~repro.exceptions.ValidationError`.
    """
    with obs_trace.maybe_span("alloc.robustness", n_machines=mapping.n_machines):
        resolve_config(config, solver_options)  # dict shim + validation
        radii = robustness_radii(mapping, etc, tau, norm=norm)
        j = int(np.argmin(radii))
        if require_feasible and radii[j] < 0:
            raise InfeasibleAtOriginError(
                f"machine {j} violates the makespan bound at C_orig "
                f"(radius {radii[j]:g} < 0)"
            )
        return AllocationRobustness(
            value=float(radii[j]),
            radii=radii,
            critical_machine=j,
            makespan=makespan(mapping, etc),
            tau=float(tau),
        )


def critical_machine(mapping: Mapping, etc: np.ndarray, tau: float) -> int:
    """Machine whose finishing-time radius is smallest (the argmin of Eq. 7)."""
    return int(np.argmin(robustness_radii(mapping, etc, tau)))


def boundary_etc_vector(mapping: Mapping, etc: np.ndarray, tau: float) -> np.ndarray:
    """The minimizing actual-time vector ``C*`` of Eq. 5 for the binding machine.

    Per the paper's observations (1) and (2) in Section 3.1, ``C*`` equals
    ``C_orig`` except on the critical machine, where every application's time
    grows by the same amount ``r / sqrt(n(m_j))`` (the orthogonal projection
    onto the boundary hyperplane).
    """
    rad = robustness_radii(mapping, etc, tau)
    j = int(np.argmin(rad))
    r = rad[j]
    if not np.isfinite(r):
        raise ValidationError("binding radius is not finite; no boundary point")
    c_star = mapping.executed_times(etc).astype(float)
    on_j = mapping.tasks_on(j)
    c_star[on_j] += r / np.sqrt(on_j.size)
    return c_star


def batch_robustness_radii(assignments: np.ndarray, etc: np.ndarray, tau: float) -> np.ndarray:
    """Vectorized Eq. 6 over an ``(n_mappings, n_tasks)`` assignment matrix.

    Returns the full ``(n_mappings, n_machines)`` radii matrix — one row per
    mapping, ``inf`` for empty machines.  This is the kernel behind
    :func:`batch_robustness` and the allocation path of
    :class:`~repro.engine.RobustnessEngine`; it replaces ``P * m`` scalar
    solver calls with a handful of array operations.
    """
    tau = check_positive(tau, "tau")
    f = batch_finishing_times(assignments, etc)  # (n_map, n_machines)
    m_orig = f.max(axis=1, keepdims=True)
    n_map, n_tasks = np.asarray(assignments).shape
    counts = np.zeros_like(f)
    np.add.at(
        counts,
        (np.repeat(np.arange(n_map), n_tasks), np.asarray(assignments).ravel()),
        1.0,
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        radii = np.where(counts > 0, (tau * m_orig - f) / np.sqrt(np.maximum(counts, 1)), np.inf)
    return radii


def batch_robustness(assignments: np.ndarray, etc: np.ndarray, tau: float) -> np.ndarray:
    """Vectorized Eq. 7 over an ``(n_mappings, n_tasks)`` assignment matrix.

    Returns the robustness value of each mapping.  This is the hot path of
    the Figure 3 experiment: all 1000 mappings are evaluated with a handful
    of array operations.
    """
    return batch_robustness_radii(assignments, etc, tau).min(axis=1)


def weighted_robustness_radii(
    mapping: Mapping, etc: np.ndarray, tau: float, weights
) -> np.ndarray:
    """Per-machine radii under a *weighted* l2 error norm (extension).

    ``weights`` assigns each application an error scale ``w_i > 0``; the
    perturbation size is ``sqrt(sum_i w_i (C_i - C_i_orig)^2)``, modeling
    estimates of unequal reliability (a large ``w_i`` penalizes errors on
    ``a_i``, e.g. a well-profiled application).  The hyperplane distance uses
    the dual norm, generalizing Eq. 6 to

        r_j = (tau M_orig - F_j) / sqrt(sum_{i on m_j} 1 / w_i)

    which reduces to Eq. 6 when all weights are 1.  Cross-checked against the
    generic framework with :class:`~repro.core.norms.WeightedL2Norm` in the
    tests.
    """
    tau = check_positive(tau, "tau")
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (mapping.n_tasks,) or np.any(weights <= 0):
        raise ValidationError("weights must be positive, one per application")
    f = finishing_times(mapping, etc)
    m_orig = float(f.max())
    inv = np.bincount(
        mapping.assignment, weights=1.0 / weights, minlength=mapping.n_machines
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        radii = np.where(inv > 0, (tau * m_orig - f) / np.sqrt(np.maximum(inv, 1e-300)), np.inf)
    return radii


def fepia_analysis(mapping: Mapping, etc: np.ndarray, tau: float) -> MetricResult:
    """Derive the same metric through the generic FePIA framework.

    Builds the feature set ``Phi = {F_j}`` with affine impacts (the rows of
    the mapping's indicator matrix) bounded by ``tau * M_orig``, and the
    perturbation parameter ``C`` anchored at ``C_orig``.  Used to cross-check
    the closed form (and as the reference implementation for derived/extended
    analyses, e.g. non-l2 norms).
    """
    tau = check_positive(tau, "tau")
    m_orig = makespan(mapping, etc)
    c_orig = mapping.executed_times(etc)
    analysis = FePIAAnalysis("independent-allocation").with_perturbation("C", c_orig)
    indicator = mapping.indicator_matrix()
    for j in range(mapping.n_machines):
        if indicator[j].sum() == 0:
            continue  # empty machine: constant feature, infinite radius
        analysis.add_feature(
            f"F_{j}", impact=indicator[j], upper=tau * m_orig, meta={"machine": j}
        )
    return analysis.analyze()
