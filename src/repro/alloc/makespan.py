"""Finishing times, makespan and load-balance index (paper Sections 3.1, 4.2).

All functions have both a single-mapping form and a vectorized *batch* form
operating on an ``(n_mappings, n_tasks)`` assignment matrix — the batch forms
are what the 1000-mapping experiments run on.
"""

from __future__ import annotations

import numpy as np

from repro.alloc.mapping import Mapping
from repro.exceptions import ValidationError

__all__ = [
    "finishing_times",
    "makespan",
    "load_balance_index",
    "batch_finishing_times",
    "batch_makespan",
    "batch_load_balance_index",
]


def finishing_times(mapping: Mapping, etc: np.ndarray) -> np.ndarray:
    """``F_j`` for every machine: the sum of the ETCs of its applications
    (paper Eq. 4, evaluated at ``C = C_orig``)."""
    times = mapping.executed_times(etc)
    return np.bincount(mapping.assignment, weights=times, minlength=mapping.n_machines)


def makespan(mapping: Mapping, etc: np.ndarray) -> float:
    """Predicted makespan ``M_orig = max_j F_j``."""
    return float(finishing_times(mapping, etc).max())


def load_balance_index(mapping: Mapping, etc: np.ndarray) -> float:
    """Ratio of the earliest machine finishing time to the makespan
    (Section 4.2).  1 means perfectly balanced; a machine with no work gives
    0.  Returns ``nan`` when the makespan is zero."""
    f = finishing_times(mapping, etc)
    ms = f.max()
    if ms == 0.0:
        return float("nan")
    return float(f.min() / ms)


def _check_batch(assignments: np.ndarray, etc: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    assignments = np.asarray(assignments)
    etc = np.asarray(etc, dtype=float)
    if assignments.ndim != 2:
        raise ValidationError("assignments must be 2-D (n_mappings, n_tasks)")
    if etc.ndim != 2 or etc.shape[0] != assignments.shape[1]:
        raise ValidationError(
            f"etc shape {etc.shape} incompatible with {assignments.shape[1]} tasks"
        )
    if assignments.size and (assignments.min() < 0 or assignments.max() >= etc.shape[1]):
        raise ValidationError("assignment entries out of machine range")
    return assignments.astype(np.int64), etc


def batch_finishing_times(assignments: np.ndarray, etc: np.ndarray) -> np.ndarray:
    """Per-machine finishing times for many mappings at once.

    Parameters
    ----------
    assignments:
        ``(n_mappings, n_tasks)`` integer matrix of machine indices.
    etc:
        ``(n_tasks, n_machines)`` ETC matrix.

    Returns
    -------
    ``(n_mappings, n_machines)`` array of ``F_j`` values.
    """
    assignments, etc = _check_batch(assignments, etc)
    n_map, n_tasks = assignments.shape
    n_machines = etc.shape[1]
    times = etc[np.arange(n_tasks)[None, :], assignments]  # (n_map, n_tasks)
    out = np.zeros((n_map, n_machines))
    # Scatter-add along the machine axis; one fused call, no Python loop.
    np.add.at(out, (np.repeat(np.arange(n_map), n_tasks), assignments.ravel()), times.ravel())
    return out


def batch_makespan(assignments: np.ndarray, etc: np.ndarray) -> np.ndarray:
    """Makespan of each mapping in the batch."""
    return batch_finishing_times(assignments, etc).max(axis=1)


def batch_load_balance_index(assignments: np.ndarray, etc: np.ndarray) -> np.ndarray:
    """Load-balance index of each mapping in the batch (nan when makespan 0)."""
    f = batch_finishing_times(assignments, etc)
    ms = f.max(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(ms > 0, f.min(axis=1) / np.where(ms > 0, ms, 1.0), np.nan)
