"""Mappings of independent applications onto machines (paper Section 3.1).

A *mapping* ``mu`` assigns each application in the set ``A`` to exactly one
machine in the set ``M``.  It is represented compactly as an integer vector
``assignment`` of length ``|A|`` whose ``i``-th entry is the machine index of
application ``a_i`` — the layout used by all vectorized code paths (batch
robustness over 1000 mappings is a couple of matrix operations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["Mapping"]


@dataclass(frozen=True)
class Mapping:
    """An assignment of ``n_tasks`` applications to ``n_machines`` machines.

    Immutable; all derived quantities (per-machine task lists, counts) are
    computed on demand.
    """

    assignment: np.ndarray
    n_machines: int

    def __post_init__(self) -> None:
        arr = np.asarray(self.assignment)
        if arr.ndim != 1 or arr.size == 0:
            raise ValidationError("assignment must be a non-empty 1-D array")
        if not np.issubdtype(arr.dtype, np.integer):
            rounded = np.asarray(arr, dtype=float)
            if not np.all(rounded == np.floor(rounded)):
                raise ValidationError("assignment entries must be integers")
            arr = rounded.astype(np.int64)
        else:
            arr = arr.astype(np.int64)
        n_machines = int(self.n_machines)
        if n_machines <= 0:
            raise ValidationError(f"n_machines must be >= 1, got {n_machines}")
        if arr.min() < 0 or arr.max() >= n_machines:
            raise ValidationError(
                f"assignment entries must lie in [0, {n_machines - 1}]"
            )
        arr.setflags(write=False)
        object.__setattr__(self, "assignment", arr)
        object.__setattr__(self, "n_machines", n_machines)

    @property
    def n_tasks(self) -> int:
        """Number of applications ``|A|``."""
        return self.assignment.size

    def machine_of(self, task: int) -> int:
        """Machine index application ``task`` is mapped to."""
        return int(self.assignment[task])

    def tasks_on(self, machine: int) -> np.ndarray:
        """Indices of the applications mapped to ``machine``."""
        if not (0 <= machine < self.n_machines):
            raise ValidationError(f"machine index {machine} out of range")
        return np.flatnonzero(self.assignment == machine)

    def counts(self) -> np.ndarray:
        """``n(m_j)`` for every machine: number of applications per machine."""
        return np.bincount(self.assignment, minlength=self.n_machines)

    def indicator_matrix(self) -> np.ndarray:
        """0/1 matrix ``I`` of shape ``(n_machines, n_tasks)`` with
        ``I[j, i] = 1`` iff ``a_i`` is mapped to ``m_j`` — the affine impact
        coefficients of the machine finishing times (paper Eq. 4)."""
        ind = np.zeros((self.n_machines, self.n_tasks))
        ind[self.assignment, np.arange(self.n_tasks)] = 1.0
        return ind

    def executed_times(self, etc: np.ndarray) -> np.ndarray:
        """``C_i^orig`` for each application: its ETC on its assigned machine.

        ``etc`` has shape ``(n_tasks, n_machines)``.
        """
        etc = np.asarray(etc, dtype=float)
        if etc.shape != (self.n_tasks, self.n_machines):
            raise ValidationError(
                f"etc has shape {etc.shape}, expected ({self.n_tasks}, {self.n_machines})"
            )
        return etc[np.arange(self.n_tasks), self.assignment]

    def move(self, task: int, machine: int) -> "Mapping":
        """Return a new mapping with ``task`` reassigned to ``machine``."""
        arr = self.assignment.copy()
        arr[task] = machine
        return Mapping(arr, self.n_machines)

    def swap(self, task_a: int, task_b: int) -> "Mapping":
        """Return a new mapping with the machines of two tasks exchanged."""
        arr = self.assignment.copy()
        arr[task_a], arr[task_b] = arr[task_b], arr[task_a]
        return Mapping(arr, self.n_machines)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self.n_machines == other.n_machines and np.array_equal(
            self.assignment, other.assignment
        )

    def __hash__(self) -> int:
        return hash((self.n_machines, self.assignment.tobytes()))
