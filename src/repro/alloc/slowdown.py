"""A third FePIA derivation: makespan robustness against machine slowdowns.

The paper's contribution is the *procedure*; this module applies it to a
perturbation the paper mentions in its opening motivation but does not work
out — machines running slower than assumed (background load, thermal
throttling, degraded hardware):

- **step 1**: features are the machine finishing times ``F_j``, bounded by
  ``tau * M_orig`` as in Section 3.1;
- **step 2**: the perturbation parameter is the *slowdown vector* ``s``
  (one factor per machine, assumed value ``s_orig = 1`` everywhere);
- **step 3**: ``F_j(s) = s_j * W_j`` where ``W_j`` is the machine's assigned
  work under the ETC estimates — affine in ``s`` with coefficient vector
  ``W_j e_j``;
- **step 4**: each boundary ``s_j W_j = tau M_orig`` is a hyperplane whose
  distance from ``s_orig`` is

      r_j = (tau M_orig - W_j) / W_j = tau M_orig / W_j - 1,

  so ``rho = tau M_orig / max_j W_j - 1 = tau - 1`` — *independent of the
  mapping*!  Interpreted: against uniform-capable slowdowns, every mapping
  tolerates exactly a ``(tau - 1) x 100%`` slowdown of its busiest machine,
  because the busiest machine is its own bottleneck.  The metric becomes
  discriminating again when slowdowns are weighted by machine criticality
  (e.g. a weighted norm expressing that some machines fail more) or when
  combined with ETC errors via :class:`repro.core.multi.MultiParameterAnalysis`
  — both demonstrated in the tests.

This is exactly the kind of insight the FePIA procedure is for: deriving the
boundary structure tells you *which* uncertainties a mapping can even trade
off against.
"""

from __future__ import annotations

import numpy as np

from repro.alloc.makespan import finishing_times, makespan
from repro.alloc.mapping import Mapping
from repro.core.fepia import FePIAAnalysis
from repro.core.metric import MetricResult
from repro.core.multi import MultiParameterAnalysis
from repro.core.norms import Norm
from repro.utils.validation import check_positive

__all__ = ["slowdown_radii", "slowdown_analysis", "joint_slowdown_etc_analysis"]


def slowdown_radii(mapping: Mapping, etc: np.ndarray, tau: float) -> np.ndarray:
    """Per-machine slowdown radii ``r_j = tau M_orig / W_j - 1``.

    ``inf`` for machines with no work.  The minimum is always ``tau - 1``
    (attained by the makespan machine) — see the module docstring.
    """
    check_positive(tau, "tau")
    w = finishing_times(mapping, etc)
    m_orig = float(w.max())
    with np.errstate(divide="ignore"):
        return np.where(w > 0, tau * m_orig / np.where(w > 0, w, 1.0) - 1.0, np.inf)


def slowdown_analysis(
    mapping: Mapping,
    etc: np.ndarray,
    tau: float,
    *,
    norm: Norm | str | None = None,
) -> MetricResult:
    """The FePIA analysis against the slowdown vector ``s`` (origin = 1).

    With the default l2 norm the metric equals ``tau - 1`` for every mapping
    (each boundary involves a single component, so the norm choice does not
    change the per-feature radii — only a *weighted* norm does).
    """
    check_positive(tau, "tau")
    m_orig = makespan(mapping, etc)
    w = finishing_times(mapping, etc)
    analysis = FePIAAnalysis("slowdown").with_perturbation(
        "s", np.ones(mapping.n_machines)
    )
    for j in range(mapping.n_machines):
        if w[j] <= 0:
            continue
        coeff = np.zeros(mapping.n_machines)
        coeff[j] = w[j]
        analysis.add_feature(f"F_{j}", impact=coeff, upper=tau * m_orig, meta={"machine": j})
    return analysis.analyze(norm=norm)


def joint_slowdown_etc_analysis(
    mapping: Mapping, etc: np.ndarray, tau: float
) -> MultiParameterAnalysis:
    """Joint analysis against ETC errors *and* machine slowdowns.

    ``F_j(C, s) = s_j * sum_{i on j} C_i`` is bilinear; following [1]'s
    additive treatment we linearize at the origin (small-perturbation
    regime):

        F_j ~ W_j + sum_{i on j} (C_i - C_i_orig) + W_j (s_j - 1)

    i.e. affine blocks: the mapping indicator for ``C`` and ``W_j e_j`` for
    ``s``.  Returns the configured :class:`MultiParameterAnalysis` so callers
    can pick joint or marginal metrics (the joint metric is strictly smaller
    than either marginal — property-tested).
    """
    check_positive(tau, "tau")
    m_orig = makespan(mapping, etc)
    w = finishing_times(mapping, etc)
    c_orig = mapping.executed_times(etc)
    indicator = mapping.indicator_matrix()
    analysis = (
        MultiParameterAnalysis("slowdown+etc")
        .with_parameter("C", origin=c_orig)
        .with_parameter("s", origin=np.ones(mapping.n_machines))
    )
    for j in range(mapping.n_machines):
        if w[j] <= 0:
            continue
        s_coeff = np.zeros(mapping.n_machines)
        s_coeff[j] = w[j]
        # Affine blocks; intercepts chosen so the value at the origin is W_j:
        # indicator . C = W_j already, and s-block contributes W_j (s_j - 1).
        from repro.core.impact import AffineImpact

        analysis.add_feature(
            f"F_{j}",
            impacts={
                "C": AffineImpact(indicator[j]),
                "s": AffineImpact(s_coeff, -w[j]),
            },
            upper=tau * m_orig,
        )
    return analysis
