"""Independent application allocation (paper Section 3.1 / Section 4.2).

The first example system: a set ``A`` of independent applications mapped to
a set ``M`` of machines using estimated computation times (ETC); the
robustness requirement bounds the actual makespan by ``tau`` times its
predicted value against errors in the ETC estimates.

Public surface:

- :class:`~repro.alloc.mapping.Mapping`;
- :func:`~repro.alloc.makespan.finishing_times`,
  :func:`~repro.alloc.makespan.makespan`,
  :func:`~repro.alloc.makespan.load_balance_index` (and batch variants);
- :func:`~repro.alloc.robustness.robustness` (Eqs. 6-7),
  :func:`~repro.alloc.robustness.batch_robustness`,
  :func:`~repro.alloc.robustness.fepia_analysis`;
- :func:`~repro.alloc.generators.random_mappings`;
- :mod:`~repro.alloc.heuristics` — mapping heuristics (Min-min, Max-min,
  GA, ...) as baselines and robustness-aware variants.
"""

from repro.alloc.generators import random_assignments, random_mapping, random_mappings
from repro.alloc.makespan import (
    batch_finishing_times,
    batch_load_balance_index,
    batch_makespan,
    finishing_times,
    load_balance_index,
    makespan,
)
from repro.alloc.mapping import Mapping
from repro.alloc.robustness import (
    AllocationRobustness,
    batch_robustness,
    boundary_etc_vector,
    critical_machine,
    fepia_analysis,
    robustness,
    robustness_radii,
    weighted_robustness_radii,
)
from repro.alloc.sensitivity import app_criticality, etc_gradient, move_improvements
from repro.alloc.slowdown import (
    joint_slowdown_etc_analysis,
    slowdown_analysis,
    slowdown_radii,
)

__all__ = [
    "Mapping",
    "random_assignments",
    "random_mapping",
    "random_mappings",
    "finishing_times",
    "makespan",
    "load_balance_index",
    "batch_finishing_times",
    "batch_makespan",
    "batch_load_balance_index",
    "AllocationRobustness",
    "robustness",
    "robustness_radii",
    "batch_robustness",
    "boundary_etc_vector",
    "critical_machine",
    "fepia_analysis",
    "weighted_robustness_radii",
    "app_criticality",
    "etc_gradient",
    "move_improvements",
    "joint_slowdown_etc_analysis",
    "slowdown_analysis",
    "slowdown_radii",
]
