"""Sensitivity analysis for allocation robustness (library extension).

Answers the questions a mapper designer asks after computing Eq. 7:

- *which placement change helps most?* — :func:`move_improvements` scores
  every single-task reassignment by the robustness it would yield
  (vectorized: one ``batch_robustness`` call over the whole neighborhood);
- *which applications pin the metric down?* — :func:`app_criticality` ranks
  applications by the best improvement available from moving them;
- *how does the metric respond to estimate changes?* — :func:`etc_gradient`
  gives the exact (almost-everywhere) derivative of Eq. 7 with respect to
  each application's estimated time:

  with binding machine ``j_c``, makespan machine ``j_m`` and counts ``n``:

      d rho / d C_i = (tau * [i on j_m] - [i on j_c]) / sqrt(n(j_c))

  (the makespan term raises the bound ``tau * M_orig``; the binding-machine
  term raises ``F_{j_c}``).  Valid wherever the argmin/argmax are unique;
  verified against central finite differences in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.makespan import finishing_times
from repro.alloc.mapping import Mapping
from repro.alloc.robustness import batch_robustness, robustness
from repro.utils.validation import check_positive

__all__ = ["MoveImprovement", "move_improvements", "app_criticality", "etc_gradient"]


@dataclass(frozen=True)
class MoveImprovement:
    """One candidate single-task reassignment and its effect on Eq. 7."""

    task: int
    machine: int
    new_robustness: float
    delta: float


def move_improvements(
    mapping: Mapping, etc: np.ndarray, tau: float, *, top: int | None = None
) -> list[MoveImprovement]:
    """All single-task reassignments ranked by resulting robustness.

    Null moves (a task to its current machine) are excluded.  ``top`` limits
    the returned list to the best ``top`` moves.
    """
    check_positive(tau, "tau")
    etc = np.asarray(etc, dtype=float)
    base = robustness(mapping, etc, tau).value
    n_tasks, n_machines = mapping.n_tasks, mapping.n_machines
    tasks = np.repeat(np.arange(n_tasks), n_machines)
    machines = np.tile(np.arange(n_machines), n_tasks)
    neigh = np.repeat(mapping.assignment[None, :], n_tasks * n_machines, axis=0)
    neigh[np.arange(neigh.shape[0]), tasks] = machines
    rho = batch_robustness(neigh, etc, tau)
    keep = machines != mapping.assignment[tasks]
    moves = [
        MoveImprovement(
            task=int(t), machine=int(m), new_robustness=float(r), delta=float(r - base)
        )
        for t, m, r in zip(tasks[keep], machines[keep], rho[keep])
    ]
    moves.sort(key=lambda mv: -mv.new_robustness)
    return moves[:top] if top is not None else moves


def app_criticality(mapping: Mapping, etc: np.ndarray, tau: float) -> np.ndarray:
    """Per-application criticality: the best robustness gain obtainable by
    moving that application alone (0 when no move improves).

    Applications with high criticality are the levers of the mapping; a
    robustness-aware mapper should revisit their placement first.
    """
    moves = move_improvements(mapping, etc, tau)
    out = np.zeros(mapping.n_tasks)
    for mv in moves:
        if mv.delta > out[mv.task]:
            out[mv.task] = mv.delta
    return out


def etc_gradient(mapping: Mapping, etc: np.ndarray, tau: float) -> np.ndarray:
    """Exact a.e. gradient of Eq. 7 with respect to the executed times ``C_i``.

    Negative entries mark applications whose estimate growth *reduces*
    robustness (those on the binding machine); positive entries mark
    applications whose growth *increases* it (those on the makespan machine
    — they push the ``tau * M_orig`` bound up).  An application on both gets
    the net ``(tau - 1)/sqrt(n)``.
    """
    check_positive(tau, "tau")
    etc = np.asarray(etc, dtype=float)
    res = robustness(mapping, etc, tau)
    f = finishing_times(mapping, etc)
    j_max = int(np.argmax(f))
    j_crit = res.critical_machine
    n_crit = mapping.counts()[j_crit]
    grad = np.zeros(mapping.n_tasks)
    on_max = mapping.assignment == j_max
    on_crit = mapping.assignment == j_crit
    grad[on_max] += tau / np.sqrt(n_crit)
    grad[on_crit] -= 1.0 / np.sqrt(n_crit)
    return grad
