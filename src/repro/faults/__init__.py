"""Fault injection, perturbation schedules and empirical radius validation.

Three complementary attacks on the library's own trustworthiness:

- :mod:`~repro.faults.inject` — deterministic, seedable injectors
  (raise / NaN / hang / crash) that wrap impact functions, used by the chaos
  test suite to prove the fault-isolated solve layer
  (:mod:`repro.engine.fault`) really contains each failure to its task;
- :mod:`~repro.faults.validate` — sampling validation that computed radii
  keep their operational promise: perturbations strictly inside ``r`` never
  violate a bound, the witness overshoot at ``r * (1 + eps)`` does, and an
  acceptance-sampling :func:`~repro.faults.validate.certify` API turns zero
  observed violations into a confidence-bounded certificate.  A machine-
  failure scenario (:func:`~repro.faults.validate.machine_failure_scenario`)
  exercises the larger fail-stop disturbance through the event simulator;
- :mod:`~repro.faults.schedule` — deterministic, seeded
  :class:`PerturbationSchedule` objects (step / ramp / spike / burst-crash
  events addressed by simulated time) that :func:`repro.sim.run_schedule`
  executes to produce the time series the temporal resilience metrics
  (:mod:`repro.resilience`) are computed from.

See ``docs/FAULTS.md`` and ``docs/RESILIENCE.md`` for worked examples.
"""

from repro.faults.inject import (
    FAULT_MODES,
    FaultyImpact,
    choose_fault_indices,
    wrap_feature,
)
from repro.faults.schedule import (
    EVENT_KINDS,
    PerturbationEvent,
    PerturbationSchedule,
)
from repro.faults.validate import (
    Certificate,
    PerturbationValidation,
    certify,
    machine_failure_scenario,
    validate_allocation_radius,
    validate_hiperd_radius,
)

__all__ = [
    "FAULT_MODES",
    "FaultyImpact",
    "wrap_feature",
    "choose_fault_indices",
    "EVENT_KINDS",
    "PerturbationEvent",
    "PerturbationSchedule",
    "PerturbationValidation",
    "Certificate",
    "validate_allocation_radius",
    "validate_hiperd_radius",
    "certify",
    "machine_failure_scenario",
]
