"""Fault injection and empirical radius validation.

Two complementary attacks on the library's own trustworthiness:

- :mod:`~repro.faults.inject` — deterministic, seedable injectors
  (raise / NaN / hang / crash) that wrap impact functions, used by the chaos
  test suite to prove the fault-isolated solve layer
  (:mod:`repro.engine.fault`) really contains each failure to its task;
- :mod:`~repro.faults.validate` — sampling validation that computed radii
  keep their operational promise: perturbations strictly inside ``r`` never
  violate a bound, the witness overshoot at ``r * (1 + eps)`` does, and an
  acceptance-sampling :func:`~repro.faults.validate.certify` API turns zero
  observed violations into a confidence-bounded certificate.  A machine-
  failure scenario (:func:`~repro.faults.validate.machine_failure_scenario`)
  exercises the larger fail-stop disturbance through the event simulator.

See ``docs/FAULTS.md`` for a worked example.
"""

from repro.faults.inject import (
    FAULT_MODES,
    FaultyImpact,
    choose_fault_indices,
    wrap_feature,
)
from repro.faults.validate import (
    Certificate,
    PerturbationValidation,
    certify,
    machine_failure_scenario,
    validate_allocation_radius,
    validate_hiperd_radius,
)

__all__ = [
    "FAULT_MODES",
    "FaultyImpact",
    "wrap_feature",
    "choose_fault_indices",
    "PerturbationValidation",
    "Certificate",
    "validate_allocation_radius",
    "validate_hiperd_radius",
    "certify",
    "machine_failure_scenario",
]
