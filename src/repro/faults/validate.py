"""Empirical validation of computed robustness radii.

A robustness radius makes a falsifiable promise (paper Section 2): every
perturbation of norm less than ``r`` keeps every performance feature inside
its tolerable interval.  This module attacks that promise with sampling:

- **soundness** — perturbations drawn strictly *inside* the radius ball must
  produce zero violations;
- **tightness** — stepping to ``r * (1 + eps)`` along the witness direction
  (the solver's minimizing boundary point) must produce a violation, proving
  the radius is not a gross under-estimate.

Both checks are provided for the paper's two example systems:
:func:`validate_allocation_radius` (Eq. 6, independent allocation — the
Figure 3 setting) and :func:`validate_hiperd_radius` (Eqs. 8-11, the HiPer-D
system).  :func:`certify` wraps the allocation check in an acceptance-
sampling certificate: zero violations in ``n`` seeded samples bounds the
violation probability below ``eps`` at the requested confidence
(``(1 - eps)^n <= 1 - confidence``).  :func:`machine_failure_scenario`
drives the larger machine-death disturbance through
:mod:`repro.sim.failures` and reports it against the same tolerance bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.alloc.robustness import boundary_etc_vector, robustness as alloc_robustness
from repro.exceptions import ValidationError
from repro.hiperd.model import HiperDSystem
from repro.hiperd.robustness import robustness as hiperd_robustness
from repro.sim.failures import MachineFailureResult, simulate_machine_failure
from repro.utils.rng import ensure_rng

__all__ = [
    "PerturbationValidation",
    "Certificate",
    "validate_allocation_radius",
    "validate_hiperd_radius",
    "certify",
    "machine_failure_scenario",
]

#: relative tolerance when testing a feature bound (guards float round-off
#: on perturbations constructed to sit exactly on the boundary hyperplane)
_BOUND_RTOL = 1e-9


@dataclass(frozen=True)
class PerturbationValidation:
    """Report of one sampled-perturbation radius validation."""

    #: ``"allocation"`` or ``"hiperd"``
    system: str
    #: the claimed (unfloored) robustness radius under test
    radius: float
    #: interior samples drawn
    n_samples: int
    #: interior samples that violated a bound (0 for a sound radius)
    interior_violations: int
    #: whether ``r * (1 + eps)`` along the witness direction violated
    witness_violated: bool
    #: the overshoot factor used for the witness probe
    eps: float
    #: RNG seed of the sample draw
    seed: int

    @property
    def violation_rate(self) -> float:
        """Fraction of interior samples that violated (0.0 when sound)."""
        return self.interior_violations / self.n_samples if self.n_samples else 0.0

    @property
    def sound(self) -> bool:
        """No interior sample violated any bound."""
        return self.interior_violations == 0

    @property
    def tight(self) -> bool:
        """The witness overshoot violated, so ``r`` is not an under-estimate."""
        return self.witness_violated


@dataclass(frozen=True)
class Certificate:
    """Acceptance-sampling certificate for a mapping's robustness radius.

    ``holds`` means: zero violations were observed in ``n_samples`` interior
    draws, which bounds the violation probability (under the sampling
    distribution) below ``eps`` with the stated ``confidence`` — because a
    violation probability of at least ``eps`` would have produced at least
    one hit with probability ``>= 1 - (1 - eps)^n >= confidence``.
    """

    holds: bool
    radius: float
    eps: float
    confidence: float
    n_samples: int
    violations: int

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict."""
        return {
            "type": "Certificate",
            "version": 1,
            "holds": bool(self.holds),
            "radius": float(self.radius),
            "eps": float(self.eps),
            "confidence": float(self.confidence),
            "n_samples": int(self.n_samples),
            "violations": int(self.violations),
        }


def _ball_sample(rng: np.random.Generator, dim: int, radius: float) -> np.ndarray:
    """One draw uniform in the l2 ball of the given radius."""
    d = rng.standard_normal(dim)
    n = np.linalg.norm(d)
    while n == 0:  # pragma: no cover - probability zero
        d = rng.standard_normal(dim)
        n = np.linalg.norm(d)
    magnitude = radius * rng.random() ** (1.0 / dim)
    return (magnitude / n) * d


def _check_positive_radius(radius: float, what: str) -> float:
    radius = float(radius)
    if not np.isfinite(radius) or radius <= 0:
        raise ValidationError(
            f"{what} validation needs a finite positive radius (strictly "
            f"robust, feasible origin), got {radius!r}"
        )
    return radius


def validate_allocation_radius(
    mapping: Mapping,
    etc: np.ndarray,
    tau: float,
    *,
    n_samples: int = 256,
    eps: float = 1e-3,
    seed: int = 0,
    slack: float = 1e-9,
) -> PerturbationValidation:
    """Empirically validate an Eq. 6 allocation radius.

    Samples perturbations ``delta`` of the actual-time vector ``C`` uniform
    in the ball of radius ``r * (1 - slack)`` and checks every machine
    finishing time against ``tau * M_orig``; then probes the witness point
    ``C_orig + (1 + eps)(C* - C_orig)`` built from
    :func:`~repro.alloc.robustness.boundary_etc_vector`, which must violate.
    """
    rob = alloc_robustness(mapping, etc, tau)
    radius = _check_positive_radius(rob.value, "allocation")
    c_orig = mapping.executed_times(etc).astype(float)
    bound = rob.tau * rob.makespan
    indicator = mapping.indicator_matrix().astype(float)  # (m, n_tasks)
    rng = ensure_rng(seed)

    violations = 0
    for _ in range(int(n_samples)):
        delta = _ball_sample(rng, c_orig.size, radius * (1.0 - slack))
        finish = indicator @ (c_orig + delta)
        if np.any(finish > bound * (1.0 + _BOUND_RTOL)):
            violations += 1

    c_star = boundary_etc_vector(mapping, etc, tau)
    overshoot = c_orig + (1.0 + float(eps)) * (c_star - c_orig)
    witness_violated = bool(np.any(indicator @ overshoot > bound))

    return PerturbationValidation(
        system="allocation",
        radius=radius,
        n_samples=int(n_samples),
        interior_violations=violations,
        witness_violated=witness_violated,
        eps=float(eps),
        seed=int(seed),
    )


def validate_hiperd_radius(
    system: HiperDSystem,
    mapping: Mapping,
    load_orig,
    *,
    n_samples: int = 256,
    eps: float = 1e-3,
    seed: int = 0,
    slack: float = 1e-9,
) -> PerturbationValidation:
    """Empirically validate a HiPer-D (Eqs. 8-11) sensor-load radius.

    Samples load perturbations uniform in the ball of radius
    ``r * (1 - slack)`` around ``lambda_orig`` and checks every QoS
    constraint row of Eq. 9; then probes ``lambda_orig + (1 + eps)
    (lambda* - lambda_orig)`` with the solver's boundary load, which must
    violate the binding constraint.
    """
    rob = hiperd_robustness(system, mapping, load_orig, apply_floor=False)
    radius = _check_positive_radius(rob.raw_value, "HiPer-D")
    load_orig = np.asarray(load_orig, dtype=float)
    cs = rob.constraints
    rng = ensure_rng(seed)

    violations = 0
    for _ in range(int(n_samples)):
        delta = _ball_sample(rng, load_orig.size, radius * (1.0 - slack))
        values = cs.coefficients @ (load_orig + delta)
        if np.any(values > cs.limits * (1.0 + _BOUND_RTOL)):
            violations += 1

    overshoot = load_orig + (1.0 + float(eps)) * (rob.boundary - load_orig)
    witness_violated = bool(np.any(cs.coefficients @ overshoot > cs.limits))

    return PerturbationValidation(
        system="hiperd",
        radius=radius,
        n_samples=int(n_samples),
        interior_violations=violations,
        witness_violated=witness_violated,
        eps=float(eps),
        seed=int(seed),
    )


def certify(
    mapping: Mapping,
    etc: np.ndarray,
    tau: float,
    *,
    eps: float = 0.01,
    confidence: float = 0.99,
    seed: int = 0,
    n_samples: int | None = None,
) -> Certificate:
    """Certify a mapping's radius by zero-violation acceptance sampling.

    Draws ``n = ceil(log(1 - confidence) / log(1 - eps))`` interior samples
    (unless ``n_samples`` overrides the count) and issues a certificate that
    holds exactly when none violates — bounding the violation probability of
    an interior perturbation below ``eps`` at the given confidence.
    """
    if not 0.0 < float(eps) < 1.0:
        raise ValidationError(f"eps must be in (0, 1), got {eps!r}")
    if not 0.0 < float(confidence) < 1.0:
        raise ValidationError(f"confidence must be in (0, 1), got {confidence!r}")
    if n_samples is None:
        n_samples = int(math.ceil(math.log(1.0 - confidence) / math.log(1.0 - eps)))
    report = validate_allocation_radius(
        mapping, etc, tau, n_samples=int(n_samples), seed=seed
    )
    return Certificate(
        holds=report.sound,
        radius=report.radius,
        eps=float(eps),
        confidence=float(confidence),
        n_samples=int(n_samples),
        violations=report.interior_violations,
    )


def machine_failure_scenario(
    mapping: Mapping,
    etc: np.ndarray,
    tau: float,
    *,
    fail_machine: int | None = None,
    fail_fraction: float = 0.5,
) -> MachineFailureResult:
    """Drive a machine-death disturbance through the event simulator.

    Kills the mapping's *critical* machine (the binding machine of Eq. 7,
    the worst case for the makespan bound) unless ``fail_machine`` says
    otherwise, at ``fail_fraction`` of the predicted makespan, and reports
    the degraded execution against the ``tau * M_orig`` tolerance — the same
    bound the robustness radius certifies against parameter perturbations.
    """
    rob = alloc_robustness(mapping, etc, tau)
    if fail_machine is None:
        fail_machine = rob.critical_machine
    if not 0.0 <= float(fail_fraction) <= 1.0:
        raise ValidationError(f"fail_fraction must be in [0, 1], got {fail_fraction!r}")
    return simulate_machine_failure(
        mapping,
        etc,
        int(fail_machine),
        float(fail_fraction) * rob.makespan,
        tau=float(tau),
    )
