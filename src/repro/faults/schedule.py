"""Deterministic, seeded perturbation schedules addressed by simulated time.

The injectors in :mod:`repro.faults.inject` misbehave *per call*; a
:class:`PerturbationSchedule` instead describes how the world drifts *over
simulated time*, so :func:`repro.sim.run_schedule` can execute a mapping
through a disturbance and emit the performance-feature time series the
resilience metrics (:mod:`repro.resilience`) are computed from.

A schedule is an ordered set of :class:`PerturbationEvent` entries over a
finite ``horizon``.  Four event kinds cover the RESMETRIC disturbance
taxonomy:

- ``"step"`` — from ``time`` onward, the target application's actual
  computation time is inflated by ``magnitude`` (a fraction of its
  unperturbed time) and stays inflated;
- ``"ramp"`` — the inflation rises linearly from 0 at ``time`` to
  ``magnitude`` at ``time + duration``, then holds;
- ``"spike"`` — the inflation holds at ``magnitude`` during
  ``[time, time + duration)`` and returns to 0 afterwards (a transient
  overload that the system can recover from);
- ``"burst_crash"`` — the target *machine* is down during
  ``[time, time + duration)``: its applications must execute on the
  least-loaded surviving machine until the outage ends (fail-stop with
  recovery).

Multiple events on the same application stack additively.  Everything is a
pure function of the event list: ``deltas_at`` / ``down_machines_at`` have
no hidden state, so two runs of the same schedule are bit-for-bit
identical.  :meth:`PerturbationSchedule.generate` draws a random schedule
from a **single seeded generator** (one :func:`~repro.utils.rng.ensure_rng`
stream), making the whole disturbance a deterministic function of the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng

__all__ = ["EVENT_KINDS", "PerturbationEvent", "PerturbationSchedule"]

#: valid event kinds, in the order ``generate`` cycles through them
EVENT_KINDS = ("step", "ramp", "spike", "burst_crash")


@dataclass(frozen=True)
class PerturbationEvent:
    """One scheduled disturbance (see module docstring for semantics)."""

    #: one of :data:`EVENT_KINDS`
    kind: str
    #: simulated time the event begins (>= 0)
    time: float
    #: ramp rise time / spike width / outage length (ignored for ``step``)
    duration: float
    #: fractional inflation of the target's computation time (>= 0;
    #: ignored for ``burst_crash``)
    magnitude: float
    #: application index (``step``/``ramp``/``spike``) or machine index
    #: (``burst_crash``)
    target: int

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValidationError(
                f"event kind must be one of {EVENT_KINDS}, got {self.kind!r}"
            )
        if not np.isfinite(self.time) or self.time < 0:
            raise ValidationError(f"event time must be finite and >= 0, got {self.time!r}")
        if not np.isfinite(self.duration) or self.duration < 0:
            raise ValidationError(
                f"event duration must be finite and >= 0, got {self.duration!r}"
            )
        if self.kind in ("ramp", "spike", "burst_crash") and self.duration == 0:
            raise ValidationError(f"{self.kind!r} events need a positive duration")
        if not np.isfinite(self.magnitude) or self.magnitude < 0:
            raise ValidationError(
                f"event magnitude must be finite and >= 0, got {self.magnitude!r}"
            )
        if int(self.target) < 0:
            raise ValidationError(f"event target must be >= 0, got {self.target!r}")

    def inflation_at(self, t: float) -> float:
        """Fractional inflation this event contributes at simulated time ``t``."""
        if self.kind == "burst_crash" or t < self.time:
            return 0.0
        if self.kind == "step":
            return self.magnitude
        if self.kind == "ramp":
            return self.magnitude * min(1.0, (t - self.time) / self.duration)
        # spike: active on [time, time + duration)
        return self.magnitude if t < self.time + self.duration else 0.0

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict."""
        return {
            "kind": self.kind,
            "time": float(self.time),
            "duration": float(self.duration),
            "magnitude": float(self.magnitude),
            "target": int(self.target),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerturbationEvent":
        """Decode a payload written by :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            time=float(data["time"]),
            duration=float(data["duration"]),
            magnitude=float(data["magnitude"]),
            target=int(data["target"]),
        )


@dataclass(frozen=True)
class PerturbationSchedule:
    """A time-addressed disturbance: events over a finite horizon.

    The schedule is pure data — evaluating it never mutates it — and every
    query is deterministic, so a ``(seed, schedule)`` pair pins an entire
    resilience run bit-for-bit.
    """

    #: the scheduled events (any order; queries scan all of them)
    events: tuple[PerturbationEvent, ...]
    #: end of simulated time; events must start strictly before it
    horizon: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if not np.isfinite(self.horizon) or self.horizon <= 0:
            raise ValidationError(
                f"horizon must be finite and > 0, got {self.horizon!r}"
            )
        for ev in self.events:
            if not isinstance(ev, PerturbationEvent):
                raise ValidationError(f"events must be PerturbationEvent, got {ev!r}")
            if ev.time >= self.horizon:
                raise ValidationError(
                    f"event at t={ev.time} starts at/after the horizon {self.horizon}"
                )

    def __len__(self) -> int:
        return len(self.events)

    def deltas_at(self, t: float, c_orig: np.ndarray) -> np.ndarray:
        """Additive perturbation of the actual-time vector at time ``t``.

        ``c_orig`` is the unperturbed per-application computation-time
        vector; the return value is ``delta`` such that the actual times at
        ``t`` are ``c_orig + delta``.  Inflations of the same application
        stack additively; application indices beyond ``c_orig`` are ignored
        (a schedule can be reused across workload sizes).
        """
        c_orig = np.asarray(c_orig, dtype=float)
        delta = np.zeros_like(c_orig)
        for ev in self.events:
            if ev.kind == "burst_crash" or ev.target >= c_orig.size:
                continue
            delta[ev.target] += c_orig[ev.target] * ev.inflation_at(float(t))
        return delta

    def down_machines_at(self, t: float) -> tuple[int, ...]:
        """Machines inside a ``burst_crash`` outage at time ``t`` (sorted)."""
        t = float(t)
        down = {
            ev.target
            for ev in self.events
            if ev.kind == "burst_crash" and ev.time <= t < ev.time + ev.duration
        }
        return tuple(sorted(down))

    def outages(self) -> tuple[PerturbationEvent, ...]:
        """The ``burst_crash`` events, ordered by start time."""
        return tuple(
            sorted(
                (ev for ev in self.events if ev.kind == "burst_crash"),
                key=lambda ev: (ev.time, ev.target),
            )
        )

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "PerturbationSchedule",
            "version": 1,
            "horizon": float(self.horizon),
            "events": [ev.to_dict() for ev in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerturbationSchedule":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "PerturbationSchedule":
            raise ValidationError(
                f"expected type 'PerturbationSchedule', got {data.get('type')!r}"
            )
        return cls(
            events=tuple(PerturbationEvent.from_dict(ev) for ev in data["events"]),
            horizon=float(data["horizon"]),
        )

    @classmethod
    def generate(
        cls,
        n_events: int,
        n_tasks: int,
        n_machines: int,
        *,
        horizon: float = 100.0,
        kinds: tuple[str, ...] = EVENT_KINDS,
        magnitude_range: tuple[float, float] = (0.2, 1.0),
        duration_fraction: tuple[float, float] = (0.05, 0.25),
        seed: int | np.random.Generator | None = 0,
    ) -> "PerturbationSchedule":
        """Draw a random schedule from a single seeded generator.

        Events cycle through ``kinds`` round-robin (so every requested kind
        appears for ``n_events >= len(kinds)``); start times, targets,
        magnitudes and durations all come from the one
        :func:`~repro.utils.rng.ensure_rng` stream, making the schedule a
        deterministic function of ``seed``.

        ``magnitude_range`` bounds the fractional inflation; durations are
        drawn as a fraction of ``horizon`` within ``duration_fraction``.
        ``burst_crash`` events are only generated when ``n_machines >= 2``
        (a surviving machine is needed to adopt the displaced work).
        """
        if int(n_events) < 0:
            raise ValidationError(f"n_events must be >= 0, got {n_events!r}")
        if int(n_tasks) < 1 or int(n_machines) < 1:
            raise ValidationError("need at least one application and one machine")
        bad = [k for k in kinds if k not in EVENT_KINDS]
        if bad or not kinds:
            raise ValidationError(
                f"kinds must be a non-empty subset of {EVENT_KINDS}, got {kinds!r}"
            )
        lo, hi = float(magnitude_range[0]), float(magnitude_range[1])
        if not 0 <= lo <= hi:
            raise ValidationError(f"bad magnitude_range {magnitude_range!r}")
        dlo, dhi = float(duration_fraction[0]), float(duration_fraction[1])
        if not 0 < dlo <= dhi:
            raise ValidationError(f"bad duration_fraction {duration_fraction!r}")
        rng = ensure_rng(seed)
        horizon = float(horizon)
        usable = [k for k in kinds if k != "burst_crash" or int(n_machines) >= 2]
        if not usable:
            raise ValidationError(
                "burst_crash-only schedules need n_machines >= 2"
            )
        events = []
        for k in range(int(n_events)):
            kind = usable[k % len(usable)]
            # start in the first 60% of the horizon so recovery is observable
            start = float(rng.uniform(0.0, 0.6 * horizon))
            duration = float(rng.uniform(dlo, dhi) * horizon)
            magnitude = float(rng.uniform(lo, hi))
            if kind == "burst_crash":
                target = int(rng.integers(0, int(n_machines)))
            else:
                target = int(rng.integers(0, int(n_tasks)))
            events.append(
                PerturbationEvent(
                    kind=kind,
                    time=start,
                    duration=duration,
                    magnitude=magnitude,
                    target=target,
                )
            )
        return cls(events=tuple(events), horizon=horizon)
