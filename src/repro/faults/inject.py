"""Deterministic, seedable fault injectors for chaos testing.

The chaos test suite proves that the fault-isolated solve layer
(:mod:`repro.engine.fault`) actually isolates: it wraps impact functions in
:class:`FaultyImpact`, which misbehaves in one of four controlled ways —

- ``"raise"`` — raise :class:`~repro.exceptions.SolverError` (a solver-stage
  exception the retry ladder must absorb);
- ``"nan"`` — return NaN (drives the numeric solver into its
  ``"nan-from-impact"`` failure classification);
- ``"hang"`` — sleep ``hang_seconds`` (a hung worker that only a per-task
  deadline can bound);
- ``"crash"`` — ``os._exit`` the worker process (surfaces as
  ``BrokenProcessPool`` in the parent).

Injection is deterministic: the fault fires from the ``on_call``-th
evaluation in the current process onward, and :func:`choose_fault_indices`
selects which tasks of a batch carry an injector from a seeded RNG.  Call
counters are process-local and deliberately reset on unpickling
(``__getstate__``), so a worker always starts counting from zero no matter
how many times the parent probed the impact — which also means a counter
cannot span retry attempts.  Attempt-aware healing is therefore driven by
:data:`CURRENT_ATTEMPT`, a module global the pool worker entry point
(:func:`repro.engine.fault.fault_radius_task`) sets before each solve: an
injector with ``heal_after_attempt=k`` behaves normally from attempt ``k``
on, modeling transient faults that a retry genuinely fixes.

``worker_only=True`` restricts firing to execution contexts other than the
one that built the injector: raise/nan/hang fire once the PID *or* the
thread differs from the constructing one (so they also work under the
thread execution backend), while ``"crash"`` additionally requires a
different PID — ``os._exit`` from a worker thread would take the whole
parent down, which is not the fault being modeled.  Either way the engine's
in-parent value probes never trip a fault meant for a worker.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time

import numpy as np

from repro.core.features import PerformanceFeature
from repro.core.impact import ImpactFunction, as_impact
from repro.exceptions import SolverError, ValidationError
from repro.utils.rng import ensure_rng

__all__ = [
    "CURRENT_ATTEMPT",
    "FAULT_MODES",
    "FaultyImpact",
    "wrap_feature",
    "choose_fault_indices",
]

#: retry attempt (0-based) the enclosing solve is running under; published by
#: :func:`repro.engine.fault.fault_radius_task` in pool workers, 0 otherwise.
CURRENT_ATTEMPT: int = 0

#: valid injector modes
FAULT_MODES = ("raise", "nan", "hang", "crash")

#: exit code of crashed workers (recognizable in process tables)
CRASH_EXIT_CODE = 17


class FaultyImpact(ImpactFunction):
    """An impact function that misbehaves on cue.

    Wraps a base impact and delegates to it until the fault condition holds
    (see module docstring); deterministic given the call sequence.

    Parameters
    ----------
    base:
        The impact to wrap (anything :func:`~repro.core.impact.as_impact`
        accepts).
    mode:
        One of :data:`FAULT_MODES`.
    on_call:
        Fire from the ``on_call``-th evaluation in this process onward
        (1-based; counters reset when the injector crosses a process
        boundary).
    hang_seconds:
        Sleep duration of ``"hang"`` mode (the evaluation still returns the
        true value afterwards — the fault is the delay, not the answer).
    heal_after_attempt:
        Behave normally once :data:`CURRENT_ATTEMPT` reaches this value
        (None = never heal).
    worker_only:
        Fire only in execution contexts other than the constructing one —
        a different process or (except for ``"crash"``) a different thread.
    """

    def __init__(
        self,
        base,
        *,
        mode: str,
        on_call: int = 1,
        hang_seconds: float = 30.0,
        heal_after_attempt: int | None = None,
        worker_only: bool = False,
    ) -> None:
        if mode not in FAULT_MODES:
            raise ValidationError(f"mode must be one of {FAULT_MODES}, got {mode!r}")
        if int(on_call) < 1:
            raise ValidationError("on_call must be >= 1")
        if float(hang_seconds) < 0:
            raise ValidationError("hang_seconds must be >= 0")
        self.base = as_impact(base)
        self.mode = mode
        self.on_call = int(on_call)
        self.hang_seconds = float(hang_seconds)
        self.heal_after_attempt = heal_after_attempt
        self.worker_only = bool(worker_only)
        self._origin_pid = os.getpid()
        self._origin_thread = threading.get_ident()
        self._calls = 0

    def __getstate__(self) -> dict:
        # Fresh per-process counter: a worker starts counting from zero no
        # matter how often the parent evaluated this injector.
        state = dict(self.__dict__)
        state["_calls"] = 0
        return state

    @property
    def armed(self) -> bool:
        """Whether the fault condition currently holds (counter included)."""
        if self.worker_only:
            same_pid = os.getpid() == self._origin_pid
            if self.mode == "crash":
                # crashing an in-process worker thread would kill the parent
                if same_pid:
                    return False
            elif same_pid and threading.get_ident() == self._origin_thread:
                return False
        if (
            self.heal_after_attempt is not None
            and CURRENT_ATTEMPT >= self.heal_after_attempt
        ):
            return False
        return self._calls >= self.on_call

    def __call__(self, pi: np.ndarray) -> float:
        self._calls += 1
        if self.armed:
            if self.mode == "raise":
                raise SolverError(
                    f"injected fault: call {self._calls} of {self.base!r}"
                )
            if self.mode == "nan":
                return float("nan")
            if self.mode == "hang":
                time.sleep(self.hang_seconds)
            elif self.mode == "crash":
                os._exit(CRASH_EXIT_CODE)
        return float(self.base(pi))

    def gradient(self, pi: np.ndarray):
        # Force finite differences through __call__ so gradient evaluations
        # also tick the counter and trip the injector.
        return None

    @property
    def is_affine(self) -> bool:
        # Never affine: the engine must route injected features through the
        # numeric solver (and hence the pool), not the closed form.
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultyImpact(mode={self.mode!r}, on_call={self.on_call}, "
            f"heal_after_attempt={self.heal_after_attempt}, base={self.base!r})"
        )


def wrap_feature(feature: PerformanceFeature, mode: str, **kwargs) -> PerformanceFeature:
    """A copy of ``feature`` whose impact is wrapped in a :class:`FaultyImpact`."""
    return dataclasses.replace(
        feature, impact=FaultyImpact(feature.impact, mode=mode, **kwargs)
    )


def choose_fault_indices(
    n_tasks: int, fraction: float, seed: "int | np.random.Generator" = 0
) -> np.ndarray:
    """Seeded choice of which tasks of a batch carry an injector.

    Returns a sorted array of ``round(n_tasks * fraction)`` distinct indices;
    deterministic in ``(n_tasks, fraction, seed)``.  ``seed`` may also be an
    existing :class:`numpy.random.Generator` to thread a shared stream.
    """
    if not 0.0 <= float(fraction) <= 1.0:
        raise ValidationError(f"fraction must be in [0, 1], got {fraction!r}")
    n_faulty = int(round(n_tasks * float(fraction)))
    rng = ensure_rng(seed)
    return np.sort(rng.choice(n_tasks, size=n_faulty, replace=False))
