"""Process-pool fan-out for numeric radius solves.

Each task is a self-contained ``(feature, parameter, norm, config)`` tuple;
the worker re-enters :func:`repro.core.radius.robustness_radius`, so a
pooled solve follows *exactly* the same code path as a serial one (parity by
construction, not by reimplementation).

Scheduling lives in :mod:`repro.engine.fault`: tasks are submitted one
future at a time (never ``executor.map``), so a crashed worker, a hung
solve or a ``SolverError`` poisons only its own task.  This module keeps
the historical entry point :func:`solve_radius_tasks`, which runs the
fault-isolated scheduler in ``on_error="raise"`` mode — terminal failures
propagate, non-converged results are returned as-is, and healthy batches
are bit-for-bit identical to the serial path.

Pooling is opt-in (``SolverConfig.pool_size > 0``) and degrades gracefully:
tasks that cannot be pickled — e.g. features wrapping lambdas defined in a
REPL — fall back to the serial path instead of raising from inside the
executor.  Picklability is probed on a *single representative task* (the
old implementation serialized the whole list, duplicating every ETC matrix
just to probe); stragglers that still fail to pickle surface per-future and
are solved inline individually.
"""

from __future__ import annotations

import math
import pickle

from repro.core.config import SolverConfig
from repro.core.radius import RadiusResult, robustness_radius

__all__ = ["solve_radius_tasks", "radius_task"]


def radius_task(task: tuple) -> RadiusResult:
    """Worker entry point: solve one radius task (module-level, picklable)."""
    feature, parameter, norm, config = task
    return robustness_radius(
        feature, parameter, norm=norm, apply_floor=False, config=config
    )


def _picklable(obj: object) -> bool:
    """Probe one representative object (not an entire task list)."""
    try:
        pickle.dumps(obj)
        return True
    except Exception:  # repro: noqa[R007] - probe: any failure means "not picklable"
        return False


def default_chunksize(n_tasks: int, pool_size: int) -> int:
    """About four chunks per worker — amortizes IPC without starving workers.

    Kept for configuration compatibility; the fault-isolated scheduler
    submits one future per task, so chunking no longer applies.
    """
    return max(1, math.ceil(n_tasks / (pool_size * 4)))


def solve_radius_tasks(tasks: list[tuple], config: SolverConfig) -> list[RadiusResult]:
    """Solve radius tasks, fanning over a process pool when configured.

    Runs serially when the pool is disabled (``pool_size == 0``), when there
    is at most one task, or when a representative task does not pickle (the
    features close over unpicklable state).  Failures follow the legacy
    contract: terminal solver errors raise, non-converged results come back
    as-is.  For structured failure records instead of exceptions use
    :func:`repro.engine.fault.solve_radius_tasks_isolated` directly.
    """
    from repro.engine.fault import solve_radius_tasks_isolated

    results, _ = solve_radius_tasks_isolated(tasks, config, on_error="raise")
    return results
