"""Process-pool fan-out for numeric radius solves.

Each task is a self-contained ``(feature, parameter, norm, config)`` tuple;
the worker re-enters :func:`repro.core.radius.robustness_radius`, so a
pooled solve follows *exactly* the same code path as a serial one (parity by
construction, not by reimplementation).

Pooling is opt-in (``SolverConfig.pool_size > 0``) and degrades gracefully:
tasks that cannot be pickled — e.g. features wrapping lambdas defined in a
REPL — fall back to the serial map instead of raising from inside the
executor.
"""

from __future__ import annotations

import math
import pickle
from concurrent.futures import ProcessPoolExecutor

from repro.core.config import SolverConfig
from repro.core.radius import RadiusResult, robustness_radius

__all__ = ["solve_radius_tasks", "radius_task"]


def radius_task(task: tuple) -> RadiusResult:
    """Worker entry point: solve one radius task (module-level, picklable)."""
    feature, parameter, norm, config = task
    return robustness_radius(
        feature, parameter, norm=norm, apply_floor=False, config=config
    )


def _picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def default_chunksize(n_tasks: int, pool_size: int) -> int:
    """About four chunks per worker — amortizes IPC without starving workers."""
    return max(1, math.ceil(n_tasks / (pool_size * 4)))


def solve_radius_tasks(tasks: list[tuple], config: SolverConfig) -> list[RadiusResult]:
    """Solve radius tasks, fanning over a process pool when configured.

    Runs serially when the pool is disabled (``pool_size == 0``), when there
    is at most one task, or when the task list does not pickle (the features
    close over unpicklable state).
    """
    tasks = list(tasks)
    if len(tasks) <= 1 or config.pool_size <= 0 or not _picklable(tasks):
        return [radius_task(t) for t in tasks]
    chunksize = config.chunk_size or default_chunksize(len(tasks), config.pool_size)
    with ProcessPoolExecutor(max_workers=config.pool_size) as executor:
        return list(executor.map(radius_task, tasks, chunksize=chunksize))
