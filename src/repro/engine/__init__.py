"""Batched robustness evaluation engine.

:class:`RobustnessEngine` evaluates the paper's robustness metric for whole
populations of mappings in one call — vectorized closed forms for the affine
systems (allocation Eq. 6, HiPer-D Eqs. 10-11), an LRU solve cache (plus an
optional persistent :class:`~repro.engine.store.RadiusStore` tier) and a
pluggable execution backend for non-affine impacts.  Batched results are
bit-for-bit identical to the per-mapping scalar API.

See :mod:`repro.engine.engine` for the evaluator,
:mod:`repro.engine.backends` for the execution-backend protocol
(serial / thread / process / shared-memory / asyncio),
:mod:`repro.engine.cache` for the in-memory solve cache,
:mod:`repro.engine.store` for the persistent solve store and
:mod:`repro.engine.fault` for the fault-isolated scheduler
(retries, per-task timeouts, crash attribution, failure records).
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    AsyncioBackend,
    BackendCapabilities,
    BackendSpec,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    SharedMemoryBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.engine.cache import RadiusCache, norm_cache_key
from repro.engine.engine import (
    AllocationBatchResult,
    BatchRobustnessResult,
    HiperdBatchResult,
    RobustnessEngine,
)
from repro.engine.fault import (
    FailureRecord,
    RetryPolicy,
    solve_radius_tasks_isolated,
)
from repro.engine.pool import radius_task, solve_radius_tasks  # repro: noqa[R009] - legacy re-export kept for compatibility
from repro.engine.store import RadiusStore

__all__ = [
    "AllocationBatchResult",
    "BatchRobustnessResult",
    "HiperdBatchResult",
    "RobustnessEngine",
    "RadiusCache",
    "RadiusStore",
    "norm_cache_key",
    "radius_task",
    "solve_radius_tasks",
    "solve_radius_tasks_isolated",
    "RetryPolicy",
    "FailureRecord",
    "BACKEND_NAMES",
    "BackendCapabilities",
    "BackendSpec",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "SharedMemoryBackend",
    "AsyncioBackend",
    "resolve_backend",
]
