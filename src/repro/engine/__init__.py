"""Batched robustness evaluation engine.

:class:`RobustnessEngine` evaluates the paper's robustness metric for whole
populations of mappings in one call — vectorized closed forms for the affine
systems (allocation Eq. 6, HiPer-D Eqs. 10-11), an LRU solve cache plus an
optional process pool for non-affine impacts.  Batched results are
bit-for-bit identical to the per-mapping scalar API.

See :mod:`repro.engine.engine` for the evaluator,
:mod:`repro.engine.cache` for the solve cache,
:mod:`repro.engine.pool` for the process-pool fan-out and
:mod:`repro.engine.fault` for the fault-isolated scheduler
(retries, per-task timeouts, crash attribution, failure records).
"""

from repro.engine.cache import RadiusCache, norm_cache_key
from repro.engine.engine import (
    AllocationBatchResult,
    BatchRobustnessResult,
    HiperdBatchResult,
    RobustnessEngine,
)
from repro.engine.fault import (
    FailureRecord,
    RetryPolicy,
    solve_radius_tasks_isolated,
)
from repro.engine.pool import radius_task, solve_radius_tasks

__all__ = [
    "AllocationBatchResult",
    "BatchRobustnessResult",
    "HiperdBatchResult",
    "RobustnessEngine",
    "RadiusCache",
    "norm_cache_key",
    "radius_task",
    "solve_radius_tasks",
    "solve_radius_tasks_isolated",
    "RetryPolicy",
    "FailureRecord",
]
