"""LRU cache for numeric robustness-radius solves.

Numeric boundary minimizations (SLSQP multistart) dominate the cost of
non-affine FePIA analyses.  Populations of mappings frequently share
features — identical impact, bounds and origin — so the engine memoizes
solves on a value-based key:

- :class:`~repro.core.impact.AffineImpact` keys by coefficient bytes and
  intercept (value identity);
- arbitrary callables key by object identity; the cache entry keeps a strong
  reference to the impact so its ``id`` stays valid while the entry lives;
- the key also covers the feature bounds, the origin vector, the norm and
  the numeric solver settings, so a config change can never alias a stale
  result.

Cached values are :class:`~repro.core.radius.RadiusResult` objects stripped
of nothing — the engine re-labels ``feature``/``parameter`` names on a hit
(:func:`dataclasses.replace`), so one solve serves identically-shaped
features under different names.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.config import SolverConfig
from repro.core.features import PerformanceFeature
from repro.core.impact import AffineImpact
from repro.core.norms import L1Norm, L2Norm, LInfNorm, Norm, WeightedL2Norm
from repro.core.perturbation import PerturbationParameter
from repro.core.radius import RadiusResult
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["RadiusCache", "norm_cache_key"]


def _count_cache_event(event: str) -> None:
    """Increment the cache hit/miss counter (only when obs is enabled)."""
    if obs_trace.enabled():
        obs_metrics.get_registry().counter(
            "repro_cache_events_total",
            help="radius-cache lookups by outcome",
            event=event,
        ).inc()


def norm_cache_key(norm: Norm) -> tuple:
    """A value-based key for the built-in norms, identity-based otherwise."""
    if isinstance(norm, WeightedL2Norm):
        return ("wl2", norm.weights.tobytes(), norm.weights.shape)
    if isinstance(norm, L2Norm):
        return ("l2",)
    if isinstance(norm, L1Norm):
        return ("l1",)
    if isinstance(norm, LInfNorm):
        return ("linf",)
    return ("norm-id", id(norm))


class RadiusCache:
    """Bounded LRU cache of numeric radius solves.

    ``maxsize == 0`` disables caching entirely (every :meth:`get` misses and
    :meth:`put` is a no-op), which keeps the engine correct for impacts whose
    ``__call__`` is stateful.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = int(maxsize)
        self._data: OrderedDict[tuple, RadiusResult] = OrderedDict()
        #: strong references keeping id-keyed impacts/norms alive
        self._pins: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def key_for(
        self,
        feature: PerformanceFeature,
        parameter: PerturbationParameter,
        norm: Norm,
        config: SolverConfig,
    ) -> tuple:
        """Build the cache key of one (feature, parameter, norm, config) solve."""
        impact = feature.impact
        if isinstance(impact, AffineImpact):
            ikey: tuple = (
                "affine",
                impact.coefficients.tobytes(),
                impact.coefficients.shape,
                float(impact.intercept),
            )
        else:
            ikey = ("impact-id", id(impact))
        origin = np.asarray(parameter.origin, dtype=float)
        return (
            ikey,
            (float(feature.bounds.lower), float(feature.bounds.upper)),
            (origin.tobytes(), origin.shape),
            norm_cache_key(norm),
            tuple(sorted(config.numeric_kwargs().items())),
        )

    def get(self, key: tuple) -> RadiusResult | None:
        """Look up a solve; counts a hit/miss and refreshes LRU order."""
        if self.maxsize == 0:
            self.misses += 1
            _count_cache_event("miss")
            return None
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            _count_cache_event("miss")
            return None
        self._data.move_to_end(key)
        self.hits += 1
        _count_cache_event("hit")
        return value

    def put(self, key: tuple, value: RadiusResult, *, pin: tuple = ()) -> None:
        """Store a solve; ``pin`` holds objects whose ``id`` the key uses."""
        if self.maxsize == 0:
            return
        self._data[key] = value
        if pin:
            self._pins[key] = pin
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            old, _ = self._data.popitem(last=False)
            self._pins.pop(old, None)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._data.clear()
        self._pins.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """Hit/miss/size counters (for logging and tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }
