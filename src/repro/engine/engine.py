"""Batched robustness evaluation — one call for a whole population.

The scalar API (:func:`repro.alloc.robustness.robustness`,
:func:`repro.hiperd.robustness.robustness`,
:func:`repro.core.metric.robustness_metric`) evaluates one mapping at a time;
a GA population or a 1000-mapping experiment pays ``P * m`` Python-level
radius computations.  :class:`RobustnessEngine` evaluates the same
quantities for the whole population at once:

- **allocation** (Eq. 6 closed form) — one ``(P, m)`` radii matrix built
  from two scatter-adds and a handful of elementwise array passes;
- **HiPer-D** (Eqs. 10-11) — all mappings' constraint rows stacked into a
  single matrix-vector product, with per-row radii, binding constraints,
  feasibility *and* the Section-4.3 slack read off the same pass;
- **generic FePIA** — affine features through the scalar closed form,
  non-affine features through an LRU solve cache
  (:class:`~repro.engine.cache.RadiusCache`) and an optional process pool
  (:mod:`repro.engine.pool`).

Batched results are bit-for-bit identical to the per-mapping scalar path
(the parity test suite asserts ``np.array_equal``, not ``allclose``): the
affine kernels perform the same elementwise arithmetic row-by-row, and the
numeric branch re-enters the scalar solver verbatim.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Iterable, Iterator, Sequence
from typing import Any
from dataclasses import dataclass

import numpy as np

from repro.alloc.makespan import batch_finishing_times
from repro.alloc.mapping import Mapping
from repro.alloc.robustness import AllocationRobustness, batch_robustness_radii
from repro.core.config import SolverConfig, resolve_config
from repro.core.features import FeatureSet, PerformanceFeature
from repro.core.impact import AffineImpact
from repro.core.metric import MetricResult, metric_from_radii
from repro.core.norms import L2Norm, Norm, get_norm
from repro.core.perturbation import PerturbationParameter
from repro.core.radius import RadiusResult
from repro.core.solvers.analytic import affine_radius
from repro.core.solvers.discrete import floor_radius
from repro.engine.backends import BackendSpec, ExecutionBackend
from repro.engine.cache import RadiusCache
from repro.engine.fault import (
    ON_ERROR_MODES,
    FailureRecord,
    RetryPolicy,
    solve_radius_tasks_isolated,
)
from repro.engine.store import RadiusStore, key_digest, persistable_key
from repro.exceptions import InfeasibleAtOriginError, ValidationError
from repro.hiperd.constraints import build_constraints
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.hiperd.model import HiperDSystem
from repro.utils.serialization import decode_array, decode_float, encode_array, encode_float
from repro.utils.validation import check_positive

__all__ = [
    "RobustnessEngine",
    "AllocationBatchResult",
    "HiperdBatchResult",
    "BatchRobustnessResult",
]


def _count_eval(kind: str) -> None:
    """Increment the engine-entry counter (callers guard on obs enabled)."""
    obs_metrics.get_registry().counter(
        "repro_engine_evaluations_total",
        help="engine evaluation entry points by kind",
        kind=kind,
    ).inc()


@dataclass(frozen=True)
class BatchRobustnessResult(Sequence):
    """Per-problem metrics plus the structured failure log of one batch.

    A sequence of :class:`~repro.core.metric.MetricResult` (indexing,
    iteration and ``len`` all work as they did when
    :meth:`RobustnessEngine.evaluate_population` returned a plain list),
    augmented with one :class:`~repro.engine.fault.FailureRecord` per task
    that failed terminally or fell back to a Monte-Carlo bound.  When
    ``failures`` is empty every radius in every metric is an exact,
    converged solve.
    """

    #: one metric per submitted ``(features, parameter)`` problem
    results: tuple[MetricResult, ...]
    #: terminal failures / fallbacks, ordered by task index
    failures: tuple[FailureRecord, ...] = ()
    #: the ``on_error`` mode the batch ran under
    on_error: str = "raise"

    def __getitem__(self, index: int) -> MetricResult:
        return self.results[index]

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        """True when no task failed or degraded."""
        return not self.failures

    @classmethod
    def merge(cls, batches: "Iterable[BatchRobustnessResult]") -> "BatchRobustnessResult":
        """Concatenate chunked batches into one population-level result.

        ``problem_index`` on every failure record is shifted by the number
        of results preceding its chunk, so :meth:`failures_for` keeps
        working on the merged batch.  ``task_index`` stays chunk-local (the
        task numbering of one fan-out has no meaning across chunks).  The
        merged ``on_error`` is taken from the chunks (they all ran under
        the same mode when produced by the streaming evaluator).
        """
        results: list[MetricResult] = []
        failures: list[FailureRecord] = []
        on_error = "raise"
        for batch in batches:
            offset = len(results)
            results.extend(batch.results)
            failures.extend(
                dataclasses.replace(
                    rec,
                    problem_index=(
                        rec.problem_index + offset
                        if rec.problem_index is not None
                        else None
                    ),
                )
                for rec in batch.failures
            )
            on_error = batch.on_error
        return cls(results=tuple(results), failures=tuple(failures), on_error=on_error)

    def failures_for(self, problem_index: int) -> tuple[FailureRecord, ...]:
        """The failure records belonging to one problem of the batch."""
        return tuple(f for f in self.failures if f.problem_index == problem_index)

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "BatchRobustnessResult",
            "version": 1,
            "results": [m.to_dict() for m in self.results],
            "failures": [f.to_dict() for f in self.failures],
            "on_error": self.on_error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BatchRobustnessResult":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "BatchRobustnessResult":
            raise ValidationError(
                f"expected type 'BatchRobustnessResult', got {data.get('type')!r}"
            )
        return cls(
            results=tuple(MetricResult.from_dict(m) for m in data["results"]),
            failures=tuple(FailureRecord.from_dict(f) for f in data.get("failures", [])),
            on_error=str(data.get("on_error", "raise")),
        )


@dataclass(frozen=True)
class AllocationBatchResult:
    """Eq. 6/7 evaluated for a population of allocation mappings."""

    #: per-mapping metric ``rho_mu(Phi, C)`` (Eq. 7), shape ``(P,)``
    values: np.ndarray
    #: per-mapping, per-machine radii (Eq. 6), shape ``(P, m)``
    radii: np.ndarray
    #: argmin machine per mapping, shape ``(P,)``
    critical_machines: np.ndarray
    #: predicted makespan ``M_orig`` per mapping, shape ``(P,)``
    makespans: np.ndarray
    #: the tolerance factor ``tau``
    tau: float

    def __len__(self) -> int:
        return self.values.size

    def result_for(self, index: int) -> AllocationRobustness:
        """The scalar-API result object of one population member."""
        return AllocationRobustness(
            value=float(self.values[index]),
            radii=self.radii[index],
            critical_machine=int(self.critical_machines[index]),
            makespan=float(self.makespans[index]),
            tau=self.tau,
        )

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "AllocationBatchResult",
            "version": 1,
            "values": encode_array(self.values),
            "radii": encode_array(self.radii),
            "critical_machines": encode_array(self.critical_machines),
            "makespans": encode_array(self.makespans),
            "tau": encode_float(self.tau),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AllocationBatchResult":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "AllocationBatchResult":
            raise ValidationError(
                f"expected type 'AllocationBatchResult', got {data.get('type')!r}"
            )
        return cls(
            values=decode_array(data["values"]),
            radii=decode_array(data["radii"]),
            critical_machines=decode_array(data["critical_machines"]).astype(np.int64),
            makespans=decode_array(data["makespans"]),
            tau=decode_float(data["tau"]),
        )


@dataclass(frozen=True)
class HiperdBatchResult:
    """Eqs. 10-11 evaluated for a population of HiPer-D mappings.

    All mappings of one system share the constraint-row structure (the rows
    are indexed by applications-on-paths, transfers and paths — not by the
    mapping), so ``names``/``kinds`` are stored once.
    """

    #: floored metric per mapping (Eq. 11), shape ``(P,)``
    values: np.ndarray
    #: unfloored minimum radius per mapping, shape ``(P,)``
    raw_values: np.ndarray
    #: signed radius per mapping and constraint row, shape ``(P, R)``
    radii: np.ndarray
    #: binding constraint row per mapping, shape ``(P,)``
    binding_indices: np.ndarray
    #: system-wide percentage slack per mapping (Section 4.3), shape ``(P,)``
    slacks: np.ndarray
    #: boundary load ``lambda*`` per mapping, shape ``(P, n_sensors)``
    boundaries: np.ndarray
    #: per-mapping feasibility at ``lambda_orig``, shape ``(P,)`` bool
    feasible_at_origin: np.ndarray
    #: constraint-row names/kinds (shared across the population)
    names: tuple[str, ...]
    kinds: tuple[str, ...]

    def __len__(self) -> int:
        return self.values.size

    @property
    def binding_names(self) -> tuple[str, ...]:
        """Name of each mapping's binding constraint."""
        return tuple(self.names[int(k)] for k in self.binding_indices)

    @property
    def binding_kinds(self) -> tuple[str, ...]:
        """Kind (``"comp"``/``"comm"``/``"latency"``) of each binding constraint."""
        return tuple(self.kinds[int(k)] for k in self.binding_indices)

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "HiperdBatchResult",
            "version": 1,
            "values": encode_array(self.values),
            "raw_values": encode_array(self.raw_values),
            "radii": encode_array(self.radii),
            "binding_indices": encode_array(self.binding_indices),
            "slacks": encode_array(self.slacks),
            "boundaries": encode_array(self.boundaries),
            "feasible_at_origin": encode_array(self.feasible_at_origin.astype(float)),
            "names": list(self.names),
            "kinds": list(self.kinds),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HiperdBatchResult":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "HiperdBatchResult":
            raise ValidationError(
                f"expected type 'HiperdBatchResult', got {data.get('type')!r}"
            )
        return cls(
            values=decode_array(data["values"]),
            raw_values=decode_array(data["raw_values"]),
            radii=decode_array(data["radii"]),
            binding_indices=decode_array(data["binding_indices"]).astype(np.int64),
            slacks=decode_array(data["slacks"]),
            boundaries=decode_array(data["boundaries"]),
            feasible_at_origin=decode_array(data["feasible_at_origin"]).astype(bool),
            names=tuple(data["names"]),
            kinds=tuple(data["kinds"]),
        )


class RobustnessEngine:
    """Population-scale evaluator for the paper's robustness metric.

    One engine instance carries the norm, the solver configuration and the
    numeric solve cache; it is cheap to construct and safe to reuse across
    calls (the cache only ever helps).

    Example
    -------
    ::

        engine = RobustnessEngine()
        batch = engine.evaluate_allocation(assignments, etc, tau=1.2)
        batch.values            # (P,) — rho_mu of every mapping
        batch.result_for(0)     # scalar-API AllocationRobustness
    """

    def __init__(
        self,
        *,
        norm: Norm | str | None = None,
        config: SolverConfig | dict | None = None,
        solver_options: dict | None = None,
        sanitize: bool = False,
        backend: "str | ExecutionBackend | type[ExecutionBackend] | BackendSpec | None" = None,
        store: "RadiusStore | str | None" = None,
    ) -> None:
        self.config = resolve_config(config, solver_options)
        self.norm = get_norm(norm)
        self.cache = RadiusCache(self.config.cache_size)
        #: execution substrate for numeric solves — a registered backend
        #: name, class, instance or spec; None defers to ``REPRO_BACKEND``
        #: and then the legacy ``pool_size`` heuristic (see
        #: :func:`repro.engine.backends.resolve_backend`)
        self.backend = backend
        #: optional persistent solve store (path or
        #: :class:`~repro.engine.store.RadiusStore`); probed after the LRU
        #: tier, written with converged value-keyed solves, saved after each
        #: population evaluation
        self.store: RadiusStore | None = (
            store if isinstance(store, RadiusStore) or store is None else RadiusStore(store)
        )
        #: when True, every evaluation is audited by
        #: :mod:`repro.analysis.sanitize`: NaN/inconsistent radii raise
        #: :class:`~repro.exceptions.SanitizerError` (or become
        #: ``stage="sanitize"`` failure records under ``on_error="record"`` /
        #: ``"degrade"``).  Healthy results are bit-for-bit unaffected.
        self.sanitize = bool(sanitize)

    # -- allocation (Eq. 6/7) ------------------------------------------------
    def evaluate_allocation(
        self,
        mappings: np.ndarray | Sequence[Mapping] | Sequence[Sequence[int]],
        etc: np.ndarray,
        tau: float,
        *,
        require_feasible: bool = False,
    ) -> AllocationBatchResult:
        """Evaluate Eq. 7 for every mapping in one vectorized pass.

        ``mappings`` is an ``(P, n_tasks)`` assignment matrix or a sequence
        of :class:`~repro.alloc.mapping.Mapping` objects.  Only the paper's
        l2 norm has the fully-vectorized closed form; other norms raise
        (use the scalar API, which handles them via dual norms).
        """
        with obs_trace.maybe_span("engine.evaluate_allocation") as sp:
            if obs_trace.enabled():
                _count_eval("allocation")
            out = self._evaluate_allocation(
                mappings, etc, tau, require_feasible=require_feasible
            )
            sp.set_attr("n_mappings", len(out))
            return out

    def _evaluate_allocation(
        self,
        mappings: np.ndarray | Sequence[Mapping] | Sequence[Sequence[int]],
        etc: np.ndarray,
        tau: float,
        *,
        require_feasible: bool,
    ) -> AllocationBatchResult:
        if not isinstance(self.norm, L2Norm):
            raise ValidationError(
                "batched allocation evaluation supports the l2 norm only; "
                "use repro.alloc.robustness.robustness(norm=...) per mapping"
            )
        assignments = self._as_assignments(mappings)
        tau = check_positive(tau, "tau")
        radii = batch_robustness_radii(assignments, etc, tau)
        values = radii.min(axis=1)
        if require_feasible and np.any(values < 0):
            bad = int(np.argmin(values))
            raise InfeasibleAtOriginError(
                f"mapping {bad} violates the makespan bound at C_orig "
                f"(radius {values[bad]:g} < 0)"
            )
        if self.sanitize:
            from repro.analysis.sanitize import check_allocation_batch

            check_allocation_batch(radii, values)
        return AllocationBatchResult(
            values=values,
            radii=radii,
            critical_machines=radii.argmin(axis=1),
            makespans=batch_finishing_times(assignments, etc).max(axis=1),
            tau=float(tau),
        )

    # -- HiPer-D (Eqs. 10-11) ------------------------------------------------
    def evaluate_hiperd(
        self,
        system: HiperDSystem,
        mappings: np.ndarray | Sequence[Mapping] | Sequence[Sequence[int]],
        load_orig: np.ndarray | Sequence[float],
        *,
        apply_floor: bool = True,
        require_feasible: bool = False,
    ) -> HiperdBatchResult:
        """Evaluate Eq. 11 for every mapping with one stacked matrix pass.

        All mappings' constraint matrices are stacked into a single
        ``(P * R, n_sensors)`` block; radii, binding constraints, origin
        feasibility and the Section-4.3 percentage slack all come from the
        same matrix-vector product.
        """
        with obs_trace.maybe_span("engine.evaluate_hiperd") as sp:
            if obs_trace.enabled():
                _count_eval("hiperd")
            out = self._evaluate_hiperd(
                system,
                mappings,
                load_orig,
                apply_floor=apply_floor,
                require_feasible=require_feasible,
            )
            sp.set_attr("n_mappings", len(out))
            return out

    def _evaluate_hiperd(
        self,
        system: HiperDSystem,
        mappings: np.ndarray | Sequence[Mapping] | Sequence[Sequence[int]],
        load_orig: np.ndarray | Sequence[float],
        *,
        apply_floor: bool,
        require_feasible: bool,
    ) -> HiperdBatchResult:
        mappings = list(mappings)
        if not mappings:
            raise ValidationError("mappings must be non-empty")
        load_orig = np.asarray(load_orig, dtype=float)
        if load_orig.shape != (system.n_sensors,):
            raise ValidationError(
                f"load_orig must have shape ({system.n_sensors},), got {load_orig.shape}"
            )
        sets = [build_constraints(system, m) for m in mappings]
        n_rows = len(sets[0])
        names, kinds = sets[0].names, sets[0].kinds
        coeffs = np.vstack([cs.coefficients for cs in sets])  # (P*R, n)
        limits = np.concatenate([cs.limits for cs in sets])
        p = len(sets)

        values = (coeffs @ load_orig).reshape(p, n_rows)
        limits = limits.reshape(p, n_rows)
        gaps = limits - values
        feasible = np.all(values <= limits, axis=1)
        if require_feasible and not np.all(feasible):
            i = int(np.argmin(feasible))
            frac = sets[i].fractional_values_at(load_orig)
            worst = int(np.argmax(frac))
            raise InfeasibleAtOriginError(
                f"mapping {i}: constraint {names[worst]} violated at lambda_orig "
                f"(fractional value {frac[worst]:.3f})"
            )

        if isinstance(self.norm, L2Norm):
            row_norms = np.linalg.norm(coeffs, axis=1).reshape(p, n_rows)
        else:
            row_norms = np.array([self.norm.dual(row) for row in coeffs]).reshape(
                p, n_rows
            )
        degenerate = np.where(gaps > 0, np.inf, np.where(gaps < 0, -np.inf, 0.0))
        radii = np.where(
            row_norms > 0, gaps / np.where(row_norms > 0, row_norms, 1.0), degenerate
        )

        binding = radii.argmin(axis=1)
        raw = radii[np.arange(p), binding]
        floored = (
            np.array([floor_radius(float(r)) for r in raw]) if apply_floor else raw
        )

        boundaries = np.empty((p, load_orig.size))
        for i in range(p):
            k = int(binding[i])
            c = sets[i].coefficients[k]
            cc = float(c @ c)
            if not isinstance(self.norm, L2Norm) and np.any(c != 0):
                boundaries[i] = self.norm.closest_point_on_hyperplane(
                    c, float(sets[i].limits[k]), load_orig
                )
            elif cc > 0:
                boundaries[i] = load_orig + ((sets[i].limits[k] - c @ load_orig) / cc) * c
            else:
                boundaries[i] = load_orig

        with np.errstate(divide="ignore", invalid="ignore"):
            slacks = (1.0 - values / limits).min(axis=1)

        if self.sanitize:
            from repro.analysis.sanitize import check_hiperd_batch

            # slacks are excluded: inf/NaN slack is legitimate on zero limits
            check_hiperd_batch(raw, radii)
        return HiperdBatchResult(
            values=np.asarray(floored, dtype=float),
            raw_values=np.asarray(raw, dtype=float),
            radii=radii,
            binding_indices=binding.astype(np.int64),
            slacks=slacks,
            boundaries=boundaries,
            feasible_at_origin=feasible,
            names=names,
            kinds=kinds,
        )

    # -- generic FePIA (Eqs. 1-2) --------------------------------------------
    def evaluate_metric(
        self,
        features: FeatureSet | list[PerformanceFeature],
        parameter: PerturbationParameter,
        *,
        apply_floor: bool | None = None,
        require_feasible: bool = False,
        on_error: str = "raise",
        retry_policy: RetryPolicy | None = None,
    ) -> MetricResult:
        """Eq. 2 for one feature set, using the engine's cache and pool."""
        with obs_trace.maybe_span("engine.evaluate_metric"):
            return self.evaluate_population(
                [(features, parameter)],
                apply_floor=apply_floor,
                require_feasible=require_feasible,
                on_error=on_error,
                retry_policy=retry_policy,
            )[0]

    def evaluate_population(
        self,
        problems: Iterable[tuple[Iterable[PerformanceFeature], PerturbationParameter]],
        *,
        apply_floor: bool | None = None,
        require_feasible: bool = False,
        on_error: str = "raise",
        retry_policy: RetryPolicy | None = None,
    ) -> BatchRobustnessResult:
        """Eq. 2 for many ``(features, parameter)`` problems in one call.

        Affine features go through the scalar closed form; non-affine
        features are deduplicated against the LRU cache, and the remaining
        numeric solves are fanned over the configured process pool (serial
        when ``pool_size == 0`` or the tasks do not pickle) with per-task
        fault isolation (:mod:`repro.engine.fault`).

        ``on_error`` controls terminal solve failures: ``"raise"`` (default,
        legacy semantics — exceptions propagate), ``"record"`` (failed tasks
        yield NaN radii plus :class:`~repro.engine.fault.FailureRecord`
        entries on the returned batch) or ``"degrade"`` (like ``"record"``
        but solver-stage failures fall back to a Monte-Carlo bound, flagged
        via ``solver="montecarlo"`` / ``converged=False``).  ``retry_policy``
        overrides the :class:`~repro.engine.fault.RetryPolicy` derived from
        the engine's config.
        """
        with obs_trace.maybe_span("engine.evaluate_population", on_error=on_error) as sp:
            if obs_trace.enabled():
                _count_eval("population")
            batch = self._evaluate_population(
                problems,
                apply_floor=apply_floor,
                require_feasible=require_feasible,
                on_error=on_error,
                retry_policy=retry_policy,
            )
            sp.set_attr("n_problems", len(batch.results))
            sp.set_attr("n_failures", len(batch.failures))
            return batch

    def iter_population(
        self,
        problems: Iterable[tuple[Iterable[PerformanceFeature], PerturbationParameter]],
        *,
        chunk_size: int = 256,
        apply_floor: bool | None = None,
        require_feasible: bool = False,
        on_error: str = "raise",
        retry_policy: RetryPolicy | None = None,
    ) -> "Iterator[BatchRobustnessResult]":
        """Evaluate a population in chunks, yielding one batch per chunk.

        ``problems`` may be any iterable — a generator is consumed lazily,
        ``chunk_size`` problems at a time, so populations far larger than
        memory stream through without ever being materialized.  Each yielded
        :class:`BatchRobustnessResult` is a normal eager batch of its chunk
        (failure ``problem_index`` values are chunk-local); merge them with
        :meth:`BatchRobustnessResult.merge` or use
        :meth:`evaluate_population_stream` for the one-shot merged form.
        Chunking changes result identity not at all: the solve cache carries
        over between chunks exactly as it does within one eager batch.
        """
        if int(chunk_size) < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size!r}")
        iterator = iter(problems)
        while True:
            chunk = list(itertools.islice(iterator, int(chunk_size)))
            if not chunk:
                return
            yield self.evaluate_population(
                chunk,
                apply_floor=apply_floor,
                require_feasible=require_feasible,
                on_error=on_error,
                retry_policy=retry_policy,
            )

    def evaluate_population_stream(
        self,
        problems: Iterable[tuple[Iterable[PerformanceFeature], PerturbationParameter]],
        *,
        chunk_size: int = 256,
        apply_floor: bool | None = None,
        require_feasible: bool = False,
        on_error: str = "raise",
        retry_policy: RetryPolicy | None = None,
    ) -> BatchRobustnessResult:
        """Chunked :meth:`evaluate_population` with incremental merging.

        Equivalent to the eager call on ``list(problems)`` (results are
        bit-for-bit identical), but only ``chunk_size`` problems are
        resident at a time — the input can be a generator of arbitrary
        length.  Failure records carry population-level ``problem_index``
        values after the merge.
        """
        with obs_trace.maybe_span(
            "engine.evaluate_population_stream", chunk_size=int(chunk_size)
        ) as sp:
            if obs_trace.enabled():
                _count_eval("stream")
            batch = BatchRobustnessResult.merge(
                self.iter_population(
                    problems,
                    chunk_size=chunk_size,
                    apply_floor=apply_floor,
                    require_feasible=require_feasible,
                    on_error=on_error,
                    retry_policy=retry_policy,
                )
            )
            sp.set_attr("n_problems", len(batch.results))
            sp.set_attr("n_failures", len(batch.failures))
            return batch

    def _evaluate_population(
        self,
        problems: Iterable[tuple[Iterable[PerformanceFeature], PerturbationParameter]],
        *,
        apply_floor: bool | None,
        require_feasible: bool,
        on_error: str,
        retry_policy: RetryPolicy | None,
    ) -> BatchRobustnessResult:
        if on_error not in ON_ERROR_MODES:
            raise ValidationError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        problems = [(self._as_features(fs), param) for fs, param in problems]

        # Pass 1: feasibility gate + affine closed forms + cache probes.
        slots: list[list[RadiusResult | None]] = []
        tasks: list[tuple] = []
        task_where: list[tuple[int, int, tuple]] = []  # (problem, slot, key)
        for ip, (feats, param) in enumerate(problems):
            row: list[RadiusResult | None] = []
            origin = param.origin
            for f in feats:
                value0 = f.value_at(origin)
                feasible = f.bounds.contains(value0)
                if require_feasible and not feasible:
                    raise InfeasibleAtOriginError(
                        f"feature {f.name!r} = {value0:g} violates bounds "
                        f"[{f.bounds.lower:g}, {f.bounds.upper:g}] at the origin"
                    )
                if isinstance(f.impact, AffineImpact) and self.config.solver != "numeric":
                    r, point, bound = affine_radius(f, origin, self.norm)
                    row.append(
                        RadiusResult(
                            feature=f.name,
                            parameter=param.name,
                            radius=float(r),
                            boundary_point=point,
                            binding_bound=bound,
                            value_at_origin=value0,
                            feasible_at_origin=feasible,
                            solver="analytic",
                        )
                    )
                    continue
                if self.config.solver == "analytic":
                    raise ValidationError(
                        f"solver='analytic' requires an affine impact, but feature "
                        f"{f.name!r} has {type(f.impact).__name__}"
                    )
                key = self.cache.key_for(f, param, self.norm, self.config)
                cached = self.cache.get(key)
                if cached is None and self.store is not None and persistable_key(key):
                    stored = self.store.get(key_digest(key))
                    if stored is not None:
                        # promote the persistent hit into the LRU tier
                        self.cache.put(key, stored, pin=(f.impact,))
                        cached = stored
                if cached is not None:
                    row.append(
                        dataclasses.replace(
                            cached, feature=f.name, parameter=param.name
                        )
                    )
                    continue
                row.append(None)
                tasks.append((f, param, self.norm, self.config))
                task_where.append((ip, len(row) - 1, key))
            slots.append(row)

        # Pass 2: solve the cache misses (fanned over the configured
        # execution backend), with per-task fault isolation.
        solved, failures = solve_radius_tasks_isolated(
            tasks,
            self.config,
            policy=retry_policy,
            on_error=on_error,
            backend=self.backend,
        )

        # Pass 3: fill slots, populate the cache tiers, assemble the metrics.
        # Only converged solves are cached: placeholders, Monte-Carlo bounds
        # and uncertified results must not shadow a future exact solve.
        for (ip, islot, key), res, task in zip(task_where, solved, tasks):
            slots[ip][islot] = res
            if res.converged:
                self.cache.put(key, res, pin=(task[0].impact,))
                if self.store is not None and persistable_key(key):
                    self.store.put(key_digest(key), res)
        if self.store is not None:
            self.store.save()
        metrics = tuple(
            metric_from_radii(tuple(row), param, apply_floor=apply_floor)
            for row, (_, param) in zip(slots, problems)
        )
        annotated = tuple(
            dataclasses.replace(rec, problem_index=task_where[rec.task_index][0])
            for rec in failures
        )
        batch = BatchRobustnessResult(
            results=metrics, failures=annotated, on_error=on_error
        )
        if self.sanitize:
            from repro.analysis.sanitize import sanitize_batch

            batch = sanitize_batch(batch)
        return batch

    # -- unified dispatch -----------------------------------------------------
    def robustness_of(self, *args: Any, on_error: str = "raise", **kwargs: Any) -> Any:
        """Dispatch to the right evaluator from the argument types.

        - ``robustness_of(mapping, etc, tau)`` — allocation (scalar);
        - ``robustness_of(system, mapping, load_orig)`` — HiPer-D (scalar);
        - ``robustness_of(features, parameter)`` — generic FePIA metric.

        Scalar calls forward the engine's ``norm`` and ``config``; extra
        keywords (``require_feasible=``, ``apply_floor=``) pass through.
        ``on_error`` selects the failure mode of numeric solves
        (``"raise"``/``"record"``/``"degrade"``, see
        :meth:`evaluate_population`); the allocation and HiPer-D paths are
        closed-form — no numeric solve can fail — so the mode is validated
        but has no effect there.
        """
        if on_error not in ON_ERROR_MODES:
            raise ValidationError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        if args and isinstance(args[0], Mapping):
            from repro.alloc.robustness import robustness as alloc_robustness

            return alloc_robustness(
                *args, norm=self.norm, config=self.config, **kwargs
            )
        if args and isinstance(args[0], HiperDSystem):
            from repro.hiperd.robustness import robustness as hiperd_robustness

            return hiperd_robustness(
                *args, norm=self.norm, config=self.config, **kwargs
            )
        if args and isinstance(args[1] if len(args) > 1 else None, PerturbationParameter):
            return self.evaluate_metric(*args, on_error=on_error, **kwargs)
        raise ValidationError(
            "robustness_of expects (mapping, etc, tau), (system, mapping, load) "
            "or (features, parameter)"
        )

    # -- helpers --------------------------------------------------------------
    @staticmethod
    def _as_assignments(
        mappings: np.ndarray | Sequence[Mapping] | Sequence[Sequence[int]],
    ) -> np.ndarray:
        if isinstance(mappings, np.ndarray):
            return mappings
        mappings = list(mappings)
        if mappings and isinstance(mappings[0], Mapping):
            return np.array([m.assignment for m in mappings])
        return np.asarray(mappings)

    @staticmethod
    def _as_features(
        features: Iterable[PerformanceFeature],
    ) -> list[PerformanceFeature]:
        feats = list(features)
        if not feats:
            raise ValidationError("the feature set Phi must be non-empty")
        if not all(isinstance(f, PerformanceFeature) for f in feats):
            raise ValidationError("features must be PerformanceFeature instances")
        return feats
