"""Pluggable execution backends for radius solves.

The fault-isolated scheduler (:mod:`repro.engine.fault`) used to be welded
to :class:`concurrent.futures.ProcessPoolExecutor`.  This module makes the
execution substrate a first-class API: an :class:`ExecutionBackend` exposes
``submit`` / ``map`` / ``shutdown`` plus a :class:`BackendCapabilities`
record, and the supervision ladder (retries, deadlines, crash attribution,
degradation) is written once against that protocol.

Five backends ship:

- :class:`SerialBackend` — runs tasks inline in the calling thread.  No
  parallelism, no pickling; the reference substrate every other backend
  must match bit-for-bit.
- :class:`ThreadBackend` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Parallel but not isolated: a crashing task takes the process with it, and
  a hung task cannot be preempted (an abandoned thread runs to completion).
- :class:`ProcessPoolBackend` — the historical
  :class:`~concurrent.futures.ProcessPoolExecutor` behavior: isolated
  workers, enforceable deadlines, payloads must pickle.
- :class:`SharedMemoryBackend` — a process pool whose payload arrays travel
  through :mod:`multiprocessing.shared_memory` instead of the pickle pipe
  (zero-copy for large ``float64`` arrays), with an additional *batched*
  capability the scheduler uses to amortize per-future overhead.
- :class:`AsyncioBackend` — an :mod:`asyncio` event loop on a daemon
  thread; each task is a coroutine that bounds concurrency with a
  semaphore and hands the CPU-bound solve to an inner thread pool.  The
  substrate a host application embedding the engine in an async service
  would use; like :class:`ThreadBackend` it is parallel but not isolated.

Backend selection (:func:`resolve_backend`) has a strict precedence: an
explicit ``backend=`` argument (name, class or instance) wins over the
``REPRO_BACKEND`` environment variable, which wins over the legacy
heuristic (``SolverConfig.pool_size > 0`` means ``"process"``, otherwise
``"serial"``).  That keeps every pre-existing call site working unchanged
while letting a CI matrix re-route the whole suite through one env var.
"""

from __future__ import annotations

import asyncio
import copy
import functools
import os
import pickle
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from io import BytesIO
from multiprocessing import shared_memory
from typing import Any, ClassVar

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "BackendCapabilities",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "SharedMemoryBackend",
    "AsyncioBackend",
    "BackendSpec",
    "BACKEND_NAMES",
    "get_backend_class",
    "register_backend",
    "resolve_backend",
]

#: environment variable consulted when no explicit backend is given
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: arrays smaller than this pickle inline — a shared-memory segment per
#: tiny vector would cost more than it saves
SHM_MIN_ARRAY_BYTES = 128


@dataclass(frozen=True)
class BackendCapabilities:
    """What one execution backend can and cannot do.

    The scheduler consults these flags instead of ``isinstance`` checks:
    ``requires_pickling`` gates the representative pickle probe,
    ``isolated`` decides whether a crashing task can be contained,
    ``enforces_deadlines`` whether a hung task can be abandoned without
    leaking work into the parent, and ``batched`` whether the backend
    profits from chunked submission (see
    :func:`repro.engine.fault.chunk_radius_tasks`).
    """

    #: registry name of the backend ("serial", "thread", "process", "shm",
    #: "asyncio")
    name: str
    #: True when tasks can run concurrently
    parallel: bool
    #: True when tasks run in a separate process (crash containment)
    isolated: bool
    #: True when an overrun task can be abandoned without poisoning the caller
    enforces_deadlines: bool
    #: True when large arrays cross the boundary without a pickle copy
    zero_copy: bool
    #: True when payloads and results must survive ``pickle.dumps``
    requires_pickling: bool
    #: True when the scheduler should prefer chunked submission
    batched: bool


class ExecutionBackend:
    """Protocol base class: where radius tasks actually run.

    Subclasses define :attr:`capabilities` (a class attribute) and implement
    :meth:`submit` and :meth:`shutdown`; :meth:`map` has a generic blocking
    implementation on top of :meth:`submit`.  All backends are constructed
    as ``Backend(max_workers=n)`` so the supervisor can rebuild a broken one
    from its class alone.
    """

    #: capability record of this backend class
    capabilities: ClassVar[BackendCapabilities]

    def __init__(self, max_workers: int = 1) -> None:
        if int(max_workers) < 1:
            raise ValidationError("max_workers must be >= 1")
        self.max_workers = int(max_workers)

    def submit(self, fn: Callable[[Any], Any], payload: Any) -> "Future[Any]":
        """Schedule ``fn(payload)``; returns a standard future."""
        raise NotImplementedError

    def map(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> list[Any]:
        """Blocking convenience: ``[fn(p) for p in payloads]`` via :meth:`submit`."""
        futures = [self.submit(fn, p) for p in payloads]
        return [f.result() for f in futures]

    def shutdown(self, *, kill: bool = False) -> None:
        """Release the backend's resources.

        ``kill=True`` is the supervisor's crash/timeout teardown: do not
        wait for in-flight work, cancel what can be cancelled, and terminate
        worker processes where the substrate has any.
        """
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Run every task inline in the calling thread.

    The degenerate backend: ``submit`` executes immediately and returns an
    already-completed future.  Exceptions are captured on the future (never
    raised out of ``submit``) so the supervisor's result handling is
    identical across backends.
    """

    capabilities = BackendCapabilities(
        name="serial",
        parallel=False,
        isolated=False,
        enforces_deadlines=False,
        zero_copy=False,
        requires_pickling=False,
        batched=False,
    )

    def submit(self, fn: Callable[[Any], Any], payload: Any) -> "Future[Any]":
        future: Future[Any] = Future()
        try:
            future.set_result(fn(payload))
        except BaseException as exc:  # noqa: BLE001 - captured on the future
            future.set_exception(exc)
        return future

    def shutdown(self, *, kill: bool = False) -> None:
        """Nothing to release."""


class ThreadBackend(ExecutionBackend):
    """A :class:`~concurrent.futures.ThreadPoolExecutor` substrate.

    Parallel for workloads that release the GIL (the SLSQP inner loops
    spend most of their time in numpy/scipy), with no pickling cost.  Not
    isolated: an ``os._exit`` in a task kills the whole process, and an
    abandoned deadline-overrun thread keeps running until its task returns
    (the executor is discarded, not the thread).  Attempt-aware fault
    injectors are racy here — :data:`repro.faults.inject.CURRENT_ATTEMPT`
    is process-global, so concurrent tasks at different attempts can
    observe each other's value.
    """

    capabilities = BackendCapabilities(
        name="thread",
        parallel=True,
        isolated=False,
        enforces_deadlines=False,
        zero_copy=True,
        requires_pickling=False,
        batched=False,
    )

    def __init__(self, max_workers: int = 1) -> None:
        super().__init__(max_workers)
        self._executor = ThreadPoolExecutor(max_workers=self.max_workers)

    def submit(self, fn: Callable[[Any], Any], payload: Any) -> "Future[Any]":
        return self._executor.submit(fn, payload)

    def shutdown(self, *, kill: bool = False) -> None:
        self._executor.shutdown(wait=not kill, cancel_futures=kill)


class ProcessPoolBackend(ExecutionBackend):
    """The historical process-pool substrate, extracted from the scheduler.

    Workers are separate processes: a crash surfaces as a broken executor
    (which the supervisor attributes and contains), and a hung worker can
    be terminated.  Payloads and results must pickle.
    """

    capabilities = BackendCapabilities(
        name="process",
        parallel=True,
        isolated=True,
        enforces_deadlines=True,
        zero_copy=False,
        requires_pickling=True,
        batched=False,
    )

    def __init__(self, max_workers: int = 1) -> None:
        super().__init__(max_workers)
        self._executor = ProcessPoolExecutor(max_workers=self.max_workers)

    def submit(self, fn: Callable[[Any], Any], payload: Any) -> "Future[Any]":
        return self._executor.submit(fn, payload)

    def shutdown(self, *, kill: bool = False) -> None:
        if not kill:
            self._executor.shutdown(wait=True)
            return
        # Kill path: a worker may be hung or dead — never wait on it.
        processes = dict(getattr(self._executor, "_processes", None) or {})
        self._executor.shutdown(wait=False, cancel_futures=True)
        for proc in processes.values():
            try:
                proc.terminate()
            except Exception:  # pragma: no cover  # repro: noqa[R007] - best-effort teardown of a dead process
                pass


# -- shared-memory payload codec ---------------------------------------------


def _noop_register(name: str, rtype: str) -> None:
    """Stand-in for ``resource_tracker.register`` during attach.

    Python 3.11's :class:`~multiprocessing.shared_memory.SharedMemory`
    registers every *attach* with the resource tracker, so a worker merely
    reading a segment would schedule a spurious unlink of the parent's
    memory at interpreter exit.  Workers therefore attach with registration
    suppressed; the creating process owns the unlink.
    """


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration."""
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = _noop_register  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


class _ShmPickler(pickle.Pickler):
    """Pickler that externalizes large float64 arrays into a side channel.

    Qualifying arrays (C-contiguous ``float64`` of at least
    :data:`SHM_MIN_ARRAY_BYTES`) are replaced by a persistent id and
    collected on :attr:`arrays`; everything else pickles normally.
    """

    def __init__(self, file: BytesIO) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: list[np.ndarray] = []

    def persistent_id(self, obj: Any) -> Any:
        if (
            isinstance(obj, np.ndarray)
            and obj.dtype == np.float64
            and obj.flags["C_CONTIGUOUS"]
            and obj.nbytes >= SHM_MIN_ARRAY_BYTES
        ):
            self.arrays.append(obj)
            return ("repro-shm", len(self.arrays) - 1)
        return None


class _ShmUnpickler(pickle.Unpickler):
    """Counterpart of :class:`_ShmPickler`: resolves ids to segment views."""

    def __init__(self, file: BytesIO, views: Sequence[np.ndarray]) -> None:
        super().__init__(file)
        self._views = views

    def persistent_load(self, pid: Any) -> Any:
        tag, index = pid
        if tag != "repro-shm":  # pragma: no cover - corrupt payload guard
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        return self._views[int(index)]


def pack_payload(
    payload: Any,
) -> tuple[bytes, shared_memory.SharedMemory | None, tuple[tuple[int, tuple[int, ...]], ...]]:
    """Encode ``payload`` with large arrays hoisted into one shared segment.

    Returns ``(pickled, segment, descriptors)`` where ``descriptors`` holds
    each hoisted array's ``(offset, shape)`` within the segment.  When no
    array qualifies, ``segment`` is None and ``pickled`` is a plain pickle
    of the payload.
    """
    buf = BytesIO()
    pickler = _ShmPickler(buf)
    pickler.dump(payload)
    if not pickler.arrays:
        return buf.getvalue(), None, ()
    total = sum(a.nbytes for a in pickler.arrays)
    segment = shared_memory.SharedMemory(create=True, size=max(1, total))
    descriptors: list[tuple[int, tuple[int, ...]]] = []
    offset = 0
    for arr in pickler.arrays:
        view: np.ndarray = np.ndarray(
            arr.shape, dtype=np.float64, buffer=segment.buf, offset=offset
        )
        view[...] = arr
        descriptors.append((offset, arr.shape))
        offset += arr.nbytes
    return buf.getvalue(), segment, tuple(descriptors)


def unpack_payload(
    data: bytes,
    segment: shared_memory.SharedMemory | None,
    descriptors: tuple[tuple[int, tuple[int, ...]], ...],
) -> Any:
    """Decode a payload produced by :func:`pack_payload`.

    Hoisted arrays come back as *read-only views* into the segment — the
    caller must keep the segment open while the payload is in use, and must
    deep-copy anything derived from those views before closing it.
    """
    if segment is None:
        return pickle.loads(data)
    views = []
    for offset, shape in descriptors:
        view: np.ndarray = np.ndarray(
            shape, dtype=np.float64, buffer=segment.buf, offset=offset
        )
        view.flags.writeable = False
        views.append(view)
    return _ShmUnpickler(BytesIO(data), views).load()


def shm_invoke(
    fn: Callable[[Any], Any],
    data: bytes,
    segment_name: str | None,
    descriptors: tuple[tuple[int, tuple[int, ...]], ...],
) -> Any:
    """Worker-side trampoline: rebuild the payload, run ``fn``, detach.

    The result is deep-copied before the segment closes so no view into
    shared memory survives into the (post-return) result pickling; the
    parent unlinks the segment once the future completes.
    """
    if segment_name is None:
        return fn(pickle.loads(data))
    segment = attach_segment(segment_name)
    try:
        payload = unpack_payload(data, segment, descriptors)
        result = copy.deepcopy(fn(payload))
        del payload
        return result
    finally:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a stray view pins the buffer
            pass


class SharedMemoryBackend(ProcessPoolBackend):
    """A process pool whose array traffic rides shared memory.

    ``submit`` packs each payload with :func:`pack_payload`: large float64
    arrays (perturbation origins, impact coefficient matrices) are written
    once into a :class:`~multiprocessing.shared_memory.SharedMemory`
    segment and the worker maps them zero-copy, while the remaining object
    graph travels as a small pickle.  Payloads with no qualifying array
    fall through to plain pickling — the backend is then exactly a
    :class:`ProcessPoolBackend`.

    Segment lifecycle: the parent creates and unlinks (a done-callback per
    future); workers attach with resource-tracker registration suppressed
    (see :func:`attach_segment`) and never unlink.
    """

    capabilities = BackendCapabilities(
        name="shm",
        parallel=True,
        isolated=True,
        enforces_deadlines=True,
        zero_copy=True,
        requires_pickling=True,
        batched=True,
    )

    def __init__(self, max_workers: int = 1) -> None:
        super().__init__(max_workers)
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def submit(self, fn: Callable[[Any], Any], payload: Any) -> "Future[Any]":
        data, segment, descriptors = pack_payload(payload)
        if segment is None:
            return self._executor.submit(fn, payload)
        self._segments[segment.name] = segment
        try:
            future = self._executor.submit(
                shm_invoke, fn, data, segment.name, descriptors
            )
        except BaseException:
            self._release(segment.name)
            raise
        future.add_done_callback(functools.partial(self._done, segment.name))
        return future

    def _done(self, name: str, _future: "Future[Any]") -> None:
        self._release(name)

    def _release(self, name: str) -> None:
        segment = self._segments.pop(name, None)
        if segment is None:
            return
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already unlinked at teardown
            pass

    def shutdown(self, *, kill: bool = False) -> None:
        super().shutdown(kill=kill)
        for name in list(self._segments):
            self._release(name)


class AsyncioBackend(ExecutionBackend):
    """An :mod:`asyncio` event loop running on a dedicated daemon thread.

    ``submit`` schedules one coroutine per task with
    :func:`asyncio.run_coroutine_threadsafe`, which already returns the
    :class:`concurrent.futures.Future` the supervisor expects.  The
    coroutine bounds in-flight work with a semaphore sized to
    ``max_workers`` and delegates the CPU-bound solve itself to an inner
    :class:`~concurrent.futures.ThreadPoolExecutor` via
    ``loop.run_in_executor`` — the event loop only coordinates, so a
    long-running solve never starves other tasks' scheduling.

    Capability-wise this is a sibling of :class:`ThreadBackend`: parallel
    (for GIL-releasing workloads), zero-copy, nothing to pickle, but not
    isolated — a hard crash in a task takes the whole process down, and a
    deadline overrun can only be abandoned, not preempted.  The inner pool
    threads inherit the submitter's :mod:`contextvars` context exactly like
    a plain thread pool, so observability spans propagate unchanged.
    """

    capabilities = BackendCapabilities(
        name="asyncio",
        parallel=True,
        isolated=False,
        enforces_deadlines=False,
        zero_copy=True,
        requires_pickling=False,
        batched=False,
    )

    def __init__(self, max_workers: int = 1) -> None:
        super().__init__(max_workers)
        self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        self._sem: asyncio.Semaphore | None = None
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-asyncio-backend", daemon=True
        )
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            # After stop(): cancel whatever is still in flight and let the
            # cancellations settle before closing, so no task is destroyed
            # pending.  Loop until quiescent — a late submit's ensure_future
            # callback can materialize a task during the first drain pass.
            while True:
                pending = asyncio.all_tasks(self._loop)
                if not pending:
                    break
                for task in pending:
                    task.cancel()
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    async def _invoke(self, fn: Callable[[Any], Any], payload: Any) -> Any:
        # Lazily built on the loop thread so it binds to the right loop;
        # coroutines only interleave at awaits, so the check is race-free.
        if self._sem is None:
            self._sem = asyncio.Semaphore(self.max_workers)
        async with self._sem:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._pool, fn, payload)

    def submit(self, fn: Callable[[Any], Any], payload: Any) -> "Future[Any]":
        return asyncio.run_coroutine_threadsafe(self._invoke(fn, payload), self._loop)

    async def _drain(self) -> None:
        current = asyncio.current_task()
        pending = [t for t in asyncio.all_tasks() if t is not current]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def shutdown(self, *, kill: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        if kill:
            self._pool.shutdown(wait=False, cancel_futures=True)
        else:
            if self._loop.is_running():
                asyncio.run_coroutine_threadsafe(self._drain(), self._loop).result()
            self._pool.shutdown(wait=True)
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)


# -- registry and resolution --------------------------------------------------

_REGISTRY: dict[str, type[ExecutionBackend]] = {}


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Register a backend class under its capabilities name (decorator)."""
    _REGISTRY[cls.capabilities.name] = cls
    return cls


for _cls in (
    SerialBackend,
    ThreadBackend,
    ProcessPoolBackend,
    SharedMemoryBackend,
    AsyncioBackend,
):
    register_backend(_cls)

#: the built-in backend names, in registration order
BACKEND_NAMES = tuple(_REGISTRY)


def get_backend_class(name: str) -> type[ExecutionBackend]:
    """Look up a registered backend class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown backend {name!r}; registered backends: {sorted(_REGISTRY)}"
        ) from None


class BackendSpec:
    """A recipe the scheduler uses to (re)build its execution backend.

    Crash recovery rebuilds the executor, so the supervisor needs a factory,
    not just an instance.  A spec made from a user-supplied *instance* hands
    that instance out on the first :meth:`create` and constructs fresh ones
    (same class, same worker count) afterwards.
    """

    def __init__(
        self,
        name: str,
        workers: int,
        factory: type[ExecutionBackend],
        instance: ExecutionBackend | None = None,
    ) -> None:
        self.name = name
        self.workers = max(1, int(workers))
        self.factory = factory
        self._instance = instance

    @property
    def capabilities(self) -> BackendCapabilities:
        """Capability record of the backend this spec builds."""
        return self.factory.capabilities

    def create(self, max_workers: int | None = None) -> ExecutionBackend:
        """Build (or hand out) a backend with ``max_workers`` workers."""
        if self._instance is not None and max_workers in (None, self._instance.max_workers):
            instance, self._instance = self._instance, None
            return instance
        self._instance = None
        return self.factory(max_workers=max_workers or self.workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BackendSpec(name={self.name!r}, workers={self.workers})"


def _default_name(pool_size: int) -> str:
    """Backend name when neither an argument nor the env var chooses one."""
    env = os.environ.get(BACKEND_ENV_VAR)
    if env:
        if env not in _REGISTRY:
            raise ValidationError(
                f"{BACKEND_ENV_VAR}={env!r} is not a registered backend; "
                f"choose one of {sorted(_REGISTRY)}"
            )
        return env
    return "process" if pool_size > 0 else "serial"


def resolve_backend(
    backend: "str | ExecutionBackend | type[ExecutionBackend] | BackendSpec | None",
    pool_size: int = 0,
) -> BackendSpec:
    """Normalize a backend selection to a :class:`BackendSpec`.

    Precedence: explicit ``backend`` (name, class, instance or spec) over
    the ``REPRO_BACKEND`` environment variable over the legacy heuristic
    (``pool_size > 0`` selects ``"process"``, otherwise ``"serial"``).
    ``pool_size`` also sizes the worker count of parallel backends
    (minimum 1 worker; ``pool_size <= 0`` with an explicitly parallel
    backend gets 2 workers).
    """
    if isinstance(backend, BackendSpec):
        return backend
    workers = int(pool_size) if pool_size > 0 else 2
    if backend is None:
        name = _default_name(pool_size)
        return BackendSpec(name, workers, _REGISTRY[name])
    if isinstance(backend, str):
        return BackendSpec(backend, workers, get_backend_class(backend))
    if isinstance(backend, ExecutionBackend):
        return BackendSpec(
            type(backend).capabilities.name,
            backend.max_workers,
            type(backend),
            instance=backend,
        )
    if isinstance(backend, type) and issubclass(backend, ExecutionBackend):
        return BackendSpec(backend.capabilities.name, workers, backend)
    raise ValidationError(
        "backend must be a name, an ExecutionBackend class/instance, a "
        f"BackendSpec or None, got {type(backend).__name__}"
    )
