"""Persistent content-addressed store of numeric radius solves.

The in-memory :class:`~repro.engine.cache.RadiusCache` dies with its engine;
population studies re-pay every SLSQP multistart on each process start.
:class:`RadiusStore` promotes the cache to an optional on-disk tier with the
same design as the lint layer's :class:`~repro.analysis.dataflow.cache.
SummaryStore`: one JSON document, atomically replaced (tmp + rename), with a
version fingerprint that discards the whole store on schema change; a
corrupt or unreadable file degrades to an empty store, never to an error.

Entries are addressed by a sha256 digest of the engine's *value-based*
cache key — affine impact coefficients, feature bounds, origin vector, norm
and numeric solver settings.  Keys with identity-based components
(arbitrary callables, custom norm objects) are **not persistable**: their
``id()`` means nothing in another process, so :func:`persistable_key`
rejects them and the engine keeps those solves in the LRU tier only.
Values are converged :class:`~repro.core.radius.RadiusResult` payloads
(:meth:`~repro.core.radius.RadiusResult.to_dict` round-trips them exactly).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path
from typing import Any

from repro.core.radius import RadiusResult
from repro.exceptions import ValidationError

__all__ = ["RadiusStore", "STORE_VERSION", "persistable_key", "key_digest"]

#: bump when the key encoding or entry schema changes incompatibly
STORE_VERSION = 1

#: key-tuple heads that embed a process-local ``id()`` (not persistable)
_IDENTITY_TAGS = frozenset({"impact-id", "norm-id"})


def persistable_key(key: tuple) -> bool:
    """Whether a :meth:`RadiusCache.key_for` key is value-based throughout.

    Identity-keyed components (``("impact-id", id)`` / ``("norm-id", id)``)
    are process-local and must never reach disk.
    """
    if isinstance(key, tuple):
        if len(key) == 2 and key[0] in _IDENTITY_TAGS:
            return False
        return all(persistable_key(item) for item in key)
    return True


def _encode(key: Any, out: bytearray) -> None:
    """Canonical, collision-resistant byte encoding of one key component."""
    if isinstance(key, tuple):
        out += b"t%d:" % len(key)
        for item in key:
            _encode(item, out)
    elif isinstance(key, bytes):
        out += b"b%d:" % len(key)
        out += key
    elif isinstance(key, str):
        raw = key.encode("utf-8")
        out += b"s%d:" % len(raw)
        out += raw
    elif isinstance(key, bool):
        out += b"B1" if key else b"B0"
    elif isinstance(key, int):
        raw = str(key).encode("ascii")
        out += b"i%d:" % len(raw)
        out += raw
    elif isinstance(key, float):
        out += b"f"
        out += struct.pack("<d", key)
    elif key is None:
        out += b"n"
    else:
        raise ValidationError(
            f"cache key component of type {type(key).__name__} is not encodable"
        )


def key_digest(key: tuple) -> str:
    """sha256 hex digest of a value-based cache key."""
    out = bytearray()
    _encode(key, out)
    return hashlib.sha256(bytes(out)).hexdigest()


class RadiusStore:
    """JSON-backed persistent tier of the engine's radius cache.

    Usage: construct with a path, :meth:`load` once, :meth:`get`/:meth:`put`
    during evaluation, :meth:`save` when done (the engine does all of this
    when handed a store).  Only *converged* solves belong in the store —
    the engine enforces that, mirroring the LRU tier's policy.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self._loaded = False
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def fingerprint(self) -> str:
        """Schema stamp; a mismatch on load discards the whole store."""
        return f"repro-radius-store-v{STORE_VERSION}"

    # -- lifecycle -----------------------------------------------------------

    def load(self) -> None:
        """Read the store from disk, degrading to empty on any mismatch."""
        self._loaded = True
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._entries = {}
            return
        if (
            not isinstance(doc, dict)
            or doc.get("fingerprint") != self.fingerprint
            or not isinstance(doc.get("entries"), dict)
        ):
            self._entries = {}
            self._dirty = True
            return
        self._entries = doc["entries"]

    def save(self) -> None:
        """Atomically persist the store (no-op when nothing changed)."""
        if not self._dirty:
            return
        doc = {"fingerprint": self.fingerprint, "entries": self._entries}
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(doc), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            return
        self._dirty = False

    # -- entries ---------------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    def get(self, digest: str) -> RadiusResult | None:
        """The stored solve under ``digest``, or None."""
        self._ensure_loaded()
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        try:
            result = RadiusResult.from_dict(entry)
        except (ValidationError, KeyError, TypeError):
            # one corrupt entry must not poison the store
            self._entries.pop(digest, None)
            self._dirty = True
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, digest: str, result: RadiusResult) -> None:
        """Record one converged solve under its key digest."""
        self._ensure_loaded()
        self._entries[digest] = result.to_dict()
        self._dirty = True

    def stats(self) -> dict:
        """Hit/miss/size counters (for logging and tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "path": str(self.path),
        }
