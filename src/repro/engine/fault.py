"""Fault-tolerant scheduling of radius solves over pluggable backends.

The legacy pool fan-out (``executor.map``) was all-or-nothing: one
``SolverError``, one hung solve or one crashed worker aborted the whole
batch.  This module replaces it with future-per-task submission plus a
supervision loop that keeps every failure contained to its task.  The
execution substrate is a pluggable :class:`~repro.engine.backends.
ExecutionBackend` (serial / thread / process / shared-memory, selected via
``backend=`` or the ``REPRO_BACKEND`` env var) and the whole ladder below
is expressed once against that protocol:

- **solver failures** (``SolverError``, retryable non-convergence) are
  retried under an escalation ladder (:class:`RetryPolicy`): more
  multi-starts, tighter tolerances, and — in ``on_error="degrade"`` mode —
  a Monte-Carlo ray-search fallback that brackets the radius when the exact
  solve never certifies;
- **hung solves** are bounded by :attr:`~repro.core.config.SolverConfig.
  task_timeout`; an overrun abandons the worker, rebuilds the pool, and
  retries the task with a doubled deadline;
- **crashed workers** surface as a broken executor (``BrokenExecutor``),
  which poisons every in-flight future.  The supervisor requeues the
  innocent tasks, rebuilds the backend, and — after repeated breakage —
  drops to single-in-flight *probe mode* where the guilty task is
  identified exactly;
- tasks whose terminal state is still a failure are reported as structured
  :class:`FailureRecord` entries instead of exceptions (``on_error="record"``
  / ``"degrade"``), so a 1000-task batch always completes.

Degradation ladder on infrastructure failure: shared pool → fresh pool →
single-worker probe pools → inline serial execution (only when executors
cannot be created at all, and never for tasks with crash/hang history —
running those in the parent process would take the whole run down with
them).  Transitions are logged at WARNING level.
"""

from __future__ import annotations

import dataclasses
import logging
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.config import SolverConfig
from repro.core.radius import RadiusResult, robustness_radius
from repro.core.solvers.numeric import RETRYABLE_REASONS
from repro.engine.backends import BackendSpec, ExecutionBackend, resolve_backend
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.exceptions import (
    ReproError,
    SolverError,
    SolverTimeoutError,
    ValidationError,
    WorkerCrashError,
)
from repro.utils.clock import get_clock

__all__ = [
    "RetryPolicy",
    "FailureRecord",
    "solve_radius_tasks_isolated",
    "fault_radius_task",
    "chunk_radius_tasks",
    "ON_ERROR_MODES",
]

logger = logging.getLogger(__name__)

#: valid values of the ``on_error`` argument
ON_ERROR_MODES = ("raise", "record", "degrade")


@dataclass(frozen=True)
class RetryPolicy:
    """How failed radius solves are retried and escalated.

    Attempts are numbered from 0; ``max_attempts`` counts the first try, so
    ``max_attempts=1`` disables retries.  Between attempts the scheduler
    sleeps an exponential backoff with *deterministic* seeded jitter — the
    jitter for (task, attempt) is a pure function of ``(seed, task_index,
    attempt)``, so reruns are reproducible.

    The escalation ladder (applied when ``escalate`` is True): attempt ``k``
    multiplies the numeric solver's ``n_starts`` by ``starts_factor**k``,
    its ``ftol`` by ``ftol_factor**k`` (tighter), and the per-task deadline
    by ``timeout_factor**k`` (more patient).  In ``on_error="degrade"``
    mode, a task whose solve attempts are all exhausted falls back to the
    Monte-Carlo ray search (:func:`repro.core.solvers.montecarlo.
    estimate_radius_mc`, ``mc_directions`` rays), whose result is flagged as
    a *bound* on the radius, never as an exact value.
    """

    #: total attempts per task (first try included); >= 1
    max_attempts: int = 3
    #: base backoff delay in seconds (0 disables sleeping)
    backoff_base: float = 0.05
    #: multiplier applied to the delay per attempt
    backoff_factor: float = 2.0
    #: jitter fraction — the delay is scaled by ``1 + jitter * u``, u ~ U[0,1)
    jitter: float = 0.25
    #: seed of the deterministic jitter stream
    seed: int = 0
    #: whether retries escalate the solver configuration
    escalate: bool = True
    #: per-attempt multiplier on ``n_starts``
    starts_factor: int = 2
    #: per-attempt multiplier on ``ftol`` (< 1 tightens)
    ftol_factor: float = 0.1
    #: per-attempt multiplier on ``task_timeout``
    timeout_factor: float = 2.0
    #: ray count of the Monte-Carlo fallback (``on_error="degrade"``)
    mc_directions: int = 128
    #: parallel-window pool rebuilds tolerated before dropping to probe mode
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if int(self.max_attempts) < 1:
            raise ValidationError("max_attempts must be >= 1")
        if float(self.backoff_base) < 0 or not np.isfinite(self.backoff_base):
            raise ValidationError("backoff_base must be finite and >= 0")
        if int(self.max_pool_rebuilds) < 0:
            raise ValidationError("max_pool_rebuilds must be >= 0")

    @classmethod
    def from_config(cls, config: SolverConfig) -> "RetryPolicy":
        """Derive the policy from a :class:`~repro.core.config.SolverConfig`."""
        return cls(
            max_attempts=int(config.max_retries) + 1,
            backoff_base=float(config.backoff_base),
            seed=abs(int(config.seed)) if config.seed is not None else 0,
        )

    def delay(self, task_index: int, attempt: int) -> float:
        """Backoff before retry ``attempt + 1`` of one task (deterministic)."""
        if self.backoff_base <= 0:
            return 0.0
        base = self.backoff_base * self.backoff_factor ** attempt
        rng = np.random.default_rng((self.seed, abs(int(task_index)), abs(int(attempt))))
        return float(base * (1.0 + self.jitter * rng.random()))

    def escalated(self, config: SolverConfig, attempt: int) -> SolverConfig:
        """The solver configuration of attempt ``attempt`` (0 = unchanged)."""
        if attempt <= 0 or not self.escalate:
            return config
        changes: dict = {
            "n_starts": max(1, int(config.n_starts)) * int(self.starts_factor) ** attempt,
            "ftol": float(config.ftol) * float(self.ftol_factor) ** attempt,
        }
        if config.task_timeout is not None:
            changes["task_timeout"] = float(config.task_timeout) * (
                float(self.timeout_factor) ** attempt
            )
        return config.replace(**changes)


@dataclass(frozen=True)
class FailureRecord:
    """Structured account of one task's terminal failure (or fallback).

    ``stage`` names where the final failure happened: ``"solve"`` (solver
    exception or retryable non-convergence), ``"timeout"`` (per-task
    deadline overrun), ``"crash"`` (worker process died), ``"pickle"``
    (task arguments would not cross the process boundary), or
    ``"sanitize"`` (a :mod:`repro.analysis.sanitize` post-condition failed
    on an engine constructed with ``sanitize=True``).  ``fallback_used``
    marks records whose task ultimately produced a Monte-Carlo *bound*
    instead of an exact radius (``on_error="degrade"``).
    """

    #: index of the task in the submitted batch
    task_index: int
    #: attempts consumed (>= 1)
    attempts: int
    #: ``"solve"`` | ``"timeout"`` | ``"crash"`` | ``"pickle"`` | ``"sanitize"``
    stage: str
    #: ``repr`` of the final exception; None for plain non-convergence
    exception: str | None
    #: True when a Monte-Carlo bound replaced the exact solve
    fallback_used: bool = False
    #: wall-clock seconds from first submission to terminal state, measured
    #: on the active :func:`repro.utils.clock.get_clock` (deterministic when
    #: a :class:`~repro.utils.clock.FakeClock` is installed)
    wall_time: float = 0.0
    #: non-convergence reason from the numeric solver's taxonomy, if any
    reason: str | None = None
    #: feature name of the failed task (filled by the engine)
    feature: str | None = None
    #: perturbation-parameter name of the failed task
    parameter: str | None = None
    #: index of the owning problem in a population batch (engine context)
    problem_index: int | None = None

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "FailureRecord",
            "version": 1,
            "task_index": int(self.task_index),
            "attempts": int(self.attempts),
            "stage": self.stage,
            "exception": self.exception,
            "fallback_used": bool(self.fallback_used),
            "wall_time": float(self.wall_time),
            "reason": self.reason,
            "feature": self.feature,
            "parameter": self.parameter,
            "problem_index": self.problem_index,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "FailureRecord":
            raise ValidationError(f"expected type 'FailureRecord', got {data.get('type')!r}")
        return cls(
            task_index=int(data["task_index"]),
            attempts=int(data["attempts"]),
            stage=str(data["stage"]),
            exception=data["exception"],
            fallback_used=bool(data.get("fallback_used", False)),
            wall_time=float(data.get("wall_time", 0.0)),
            reason=data.get("reason"),
            feature=data.get("feature"),
            parameter=data.get("parameter"),
            problem_index=data.get("problem_index"),
        )


def fault_radius_task(payload: tuple) -> "RadiusResult | obs_trace.TracedResult":
    """Worker entry point of the fault-isolated path.

    ``payload`` is ``(task, attempt)``, ``(task, attempt, span_context)`` or
    ``(task, attempt, span_context, same_process)``; the attempt number is
    published to :data:`repro.faults.inject.CURRENT_ATTEMPT` before the
    solve so injectors with ``heal_after_attempt`` semantics can observe
    which retry they are running under (injector state is re-pickled fresh
    on every submission, so per-process call counters alone cannot span
    attempts).

    When the payload carries a picklable
    :class:`~repro.obs.trace.SpanContext` (observability was enabled in the
    submitting process), the worker records its own solve span parented to
    it.  Isolated backends ship the spans back inside a
    :class:`~repro.obs.trace.TracedResult`, which the supervisor unwraps
    and ingests; same-process backends (``same_process=True``, e.g. the
    thread backend) record straight into the installed tracer — tracing
    never changes what the solver computes.
    """
    same_process = False
    if len(payload) == 4:
        task, attempt, span_ctx, same_process = payload
    elif len(payload) == 3:
        task, attempt, span_ctx = payload
    else:
        task, attempt = payload
        span_ctx = None
    inject = None
    try:  # pragma: no cover - exercised via pool workers
        from repro.faults import inject as inject_mod

        inject = inject_mod
        inject.CURRENT_ATTEMPT = int(attempt)
    except ImportError:
        pass
    try:
        feature, parameter, norm, config = task
        if span_ctx is None:
            # serial in-process call (the caller's tracer sees everything
            # directly) or an untraced submission
            return robustness_radius(
                feature, parameter, norm=norm, apply_floor=False, config=config
            )
        if same_process:
            # worker thread of a same-process backend: the installed tracer
            # is the parent's (it is thread-safe); only the span context
            # needs activating in this thread
            installed = obs_trace.get_tracer()
            if installed is None:  # pragma: no cover - tracing raced off
                return robustness_radius(
                    feature, parameter, norm=norm, apply_floor=False, config=config
                )
            token = obs_trace.activate(span_ctx)
            try:
                with installed.span(
                    "pool.worker.solve", task_attempt=int(attempt), feature=feature.name
                ):
                    return robustness_radius(
                        feature, parameter, norm=norm, apply_floor=False, config=config
                    )
            finally:
                obs_trace.deactivate(token)
        # traced pool submission: record into a fresh worker-local tracer and
        # ship the spans back (forked workers inherit the parent's enabled
        # state, so the installed tracer cannot be trusted here)
        tracer = obs_trace.Tracer()
        obs_trace.enable(tracer)
        token = obs_trace.activate(span_ctx)
        try:
            with tracer.span(
                "pool.worker.solve", task_attempt=int(attempt), feature=feature.name
            ):
                res = robustness_radius(
                    feature, parameter, norm=norm, apply_floor=False, config=config
                )
        finally:
            obs_trace.deactivate(token)
            obs_trace.disable()
        return obs_trace.TracedResult(result=res, spans=tuple(tracer.export()))
    finally:
        if inject is not None:
            inject.CURRENT_ATTEMPT = 0


def _terminal_state(record: FailureRecord | None) -> str:
    """The terminal state label of one task: success, degrade or failure."""
    if record is None:
        return "success"
    return "degrade" if record.fallback_used else "failure"


def _record_terminal(
    index: int,
    task: tuple,
    record: FailureRecord | None,
    wall: float,
    *,
    path: str,
    backend: str = "serial",
) -> None:
    """Emit one task's terminal ``fault.task`` span plus latency/failure
    metrics.  Callers guard on :func:`repro.obs.trace.enabled`."""
    tracer = obs_trace.get_tracer()
    if tracer is not None:
        end = int(get_clock().perf_counter() * 1e9)
        span = tracer.start_span(
            "fault.task",
            task_index=int(index),
            feature=task[0].name,
            parameter=task[1].name,
            terminal=_terminal_state(record),
            stage=record.stage if record is not None else None,
            attempts=record.attempts if record is not None else None,
            path=path,
            backend=backend,
        )
        span.start_ns = end - int(wall * 1e9)
        span.end_ns = end
        tracer.finish(span, status="ok" if record is None else "error")
    registry = obs_metrics.get_registry()
    registry.histogram(
        "repro_radius_solve_seconds",
        help="terminal per-task radius solve latency (seconds)",
        path=path,
        backend=backend,
    ).observe(wall)
    if record is not None:
        registry.counter(
            "repro_failure_records_total",
            help="terminal failure records by stage",
            stage=record.stage,
        ).inc()


def _record_fault_event(
    name: str, counter: str, help_text: str, **attrs: Any
) -> None:
    """Emit an instant span plus a counter increment (obs must be on)."""
    tracer = obs_trace.get_tracer()
    if tracer is not None:
        tracer.event(name, **attrs)
    obs_metrics.get_registry().counter(counter, help=help_text).inc()


def _record_retry(index: int, attempt: int) -> None:
    _record_fault_event(
        "fault.retry",
        "repro_retries_total",
        "radius solve retry attempts",
        task_index=int(index),
        attempt=int(attempt),
    )


def _picklable_one(obj: object) -> bool:
    """Probe a single representative object, not a whole task list."""
    try:
        pickle.dumps(obj)
        return True
    except Exception:  # repro: noqa[R007] - probe: any failure means "not picklable"
        return False


def _is_pickle_error(exc: BaseException) -> bool:
    if isinstance(exc, pickle.PickleError):
        return True
    return isinstance(exc, (AttributeError, TypeError)) and "pickle" in str(exc).lower()


def _failed_result(task: tuple, reason: str | None) -> RadiusResult:
    """NaN placeholder for a task with no usable answer (never evaluates the
    impact — it may be the very thing that crashes)."""
    feature, parameter = task[0], task[1]
    return RadiusResult(
        feature=feature.name,
        parameter=parameter.name,
        radius=float("nan"),
        boundary_point=None,
        binding_bound=None,
        value_at_origin=float("nan"),
        feasible_at_origin=False,
        solver="failed",
        converged=False,
        failure=reason,
    )


def _mc_fallback(task: tuple, policy: RetryPolicy) -> RadiusResult | None:
    """Monte-Carlo ray-search bound on the radius (``on_error="degrade"``).

    Ray search converges to the true radius *from above* for star-shaped
    robust regions, so the value is an optimistic bound — it is flagged with
    ``solver="montecarlo"``, ``converged=False`` and ``failure="mc-bound"``
    and must never be read as an exact radius.  Only called for
    ``stage="solve"`` failures: the impact is known to evaluate cleanly in
    this process (crash/hang failures never reach here — evaluating their
    impact inline would take the parent down).
    """
    from repro.core.features import FeatureSet
    from repro.core.solvers.montecarlo import estimate_radius_mc

    feature, parameter, norm, config = task
    try:
        est = estimate_radius_mc(
            FeatureSet([feature]),
            parameter.origin,
            n_directions=policy.mc_directions,
            norm=norm,
            seed=config.seed,
        )
        value0 = feature.value_at(parameter.origin)
    except ReproError:
        return None
    return RadiusResult(
        feature=feature.name,
        parameter=parameter.name,
        radius=float(est),
        boundary_point=None,
        binding_bound=None,
        value_at_origin=float(value0),
        feasible_at_origin=feature.bounds.contains(value0),
        solver="montecarlo",
        converged=False,
        failure="mc-bound",
    )


def solve_radius_tasks_isolated(
    tasks: list[tuple],
    config: SolverConfig,
    *,
    policy: RetryPolicy | None = None,
    on_error: str = "record",
    backend: "str | ExecutionBackend | type[ExecutionBackend] | BackendSpec | None" = None,
) -> tuple[list[RadiusResult], list[FailureRecord]]:
    """Solve radius tasks with per-task fault isolation.

    Parameters
    ----------
    tasks:
        ``(feature, parameter, norm, config)`` tuples, as consumed by
        :func:`repro.engine.pool.radius_task`.
    config:
        Pool sizing, per-task deadline and retry knobs.
    policy:
        Retry/escalation policy; derived from ``config`` when None.
    on_error:
        ``"raise"`` — terminal failures raise (legacy semantics; retryable
        *exceptions* are still retried first, but non-converged results are
        returned as-is without retry, exactly like the historical path);
        ``"record"`` — terminal failures become :class:`FailureRecord`
        entries plus NaN-radius placeholder results; ``"degrade"`` — like
        ``"record"``, but solver-stage failures additionally fall back to a
        Monte-Carlo bound on the radius.
    backend:
        Execution substrate: a registered name (``"serial"`` / ``"thread"``
        / ``"process"`` / ``"shm"``), an :class:`~repro.engine.backends.
        ExecutionBackend` class or instance, a prebuilt
        :class:`~repro.engine.backends.BackendSpec`, or None for the
        default resolution (``REPRO_BACKEND`` env var, then the legacy
        ``pool_size`` heuristic; see :func:`~repro.engine.backends.
        resolve_backend`).

    Returns
    -------
    (results, failures):
        ``results[i]`` is the :class:`~repro.core.radius.RadiusResult` of
        ``tasks[i]`` (possibly a placeholder or a Monte-Carlo bound; check
        ``converged`` / ``solver``); ``failures`` holds one record per task
        that failed terminally or used a fallback.
    """
    if on_error not in ON_ERROR_MODES:
        raise ValidationError(f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}")
    tasks = list(tasks)
    if not tasks:
        return [], []
    if policy is None:
        policy = RetryPolicy.from_config(config)
    spec = resolve_backend(backend, config.pool_size)
    caps = spec.capabilities
    serial = (
        len(tasks) <= 1
        or not caps.parallel
        or (caps.requires_pickling and not _picklable_one(tasks[0]))
    )
    batched = (
        not serial
        and caps.batched
        and on_error != "raise"
        and config.task_timeout is None
    )
    with obs_trace.maybe_span(
        "fault.solve_batch",
        n_tasks=len(tasks),
        on_error=on_error,
        mode="serial" if serial else "pool",
        backend=caps.name,
    ):
        if serial:
            return _solve_serial(tasks, config, policy, on_error, backend_name=caps.name)
        if batched:
            return _solve_batched(tasks, config, policy, on_error, spec)
        return _Supervisor(tasks, config, policy, on_error, spec).run()


def _solve_serial(
    tasks: list[tuple],
    config: SolverConfig,
    policy: RetryPolicy,
    on_error: str,
    *,
    backend_name: str = "serial",
) -> tuple[list[RadiusResult], list[FailureRecord]]:
    results: list[RadiusResult] = []
    failures: list[FailureRecord] = []
    tracing = obs_trace.enabled()
    clock = get_clock()
    for i, task in enumerate(tasks):
        t0 = clock.perf_counter() if tracing else 0.0
        res, rec = _solve_one_inline(i, task, config, policy, on_error)
        results.append(res)
        if rec is not None:
            failures.append(rec)
        if tracing:
            _record_terminal(
                i, task, rec, clock.perf_counter() - t0, path="serial", backend=backend_name
            )
    return results, failures


def _solve_one_inline(
    index: int,
    task: tuple,
    config: SolverConfig,
    policy: RetryPolicy,
    on_error: str,
) -> tuple[RadiusResult, FailureRecord | None]:
    """Retry ladder for one task executed in the current process."""
    feature, parameter, norm, _ = task
    start = get_clock().perf_counter()
    last_exc: ReproError | None = None
    last_res: RadiusResult | None = None
    attempts = 0
    for attempt in range(policy.max_attempts):
        attempts = attempt + 1
        if attempt > 0:
            if obs_trace.enabled():
                _record_retry(index, attempt)
            time.sleep(policy.delay(index, attempt - 1))
        cfg = policy.escalated(config, attempt)
        try:
            # Route through the worker entry point so CURRENT_ATTEMPT is
            # published for attempt-aware injectors in serial mode too.
            res = fault_radius_task(((feature, parameter, norm, cfg), attempt))
        except ValidationError:
            # a malformed problem will not get better on retry
            raise
        except ReproError as exc:
            last_exc = exc
            continue
        last_exc = None
        if res.converged or on_error == "raise" or res.failure not in RETRYABLE_REASONS:
            # converged, legacy raise-mode (non-convergence was never an
            # error historically), or a non-retryable reason such as a
            # genuinely unreachable boundary.
            return res, None
        last_res = res
    wall = get_clock().perf_counter() - start
    if last_exc is not None:
        if on_error == "raise":
            raise last_exc
        return _terminal_solve_failure(
            index, task, attempts, wall, policy, on_error, exc=last_exc
        )
    return _terminal_solve_failure(
        index, task, attempts, wall, policy, on_error, res=last_res
    )


def _terminal_solve_failure(
    index: int,
    task: tuple,
    attempts: int,
    wall: float,
    policy: RetryPolicy,
    on_error: str,
    *,
    exc: ReproError | None = None,
    res: RadiusResult | None = None,
) -> tuple[RadiusResult, FailureRecord]:
    """Build the (result, record) pair of an exhausted solver-stage task."""
    reason = res.failure if res is not None else None
    fallback = None
    if on_error == "degrade":
        fallback = _mc_fallback(task, policy)
    record = FailureRecord(
        task_index=index,
        attempts=attempts,
        stage="solve",
        exception=repr(exc) if exc is not None else None,
        fallback_used=fallback is not None,
        wall_time=wall,
        reason=reason,
        feature=task[0].name,
        parameter=task[1].name,
    )
    if fallback is not None:
        return fallback, record
    if res is not None:
        # keep the uncertified result (it may still carry a usable value)
        return res, record
    return _failed_result(task, reason or "solver-exception"), record


def chunk_radius_tasks(payload: tuple) -> "tuple | obs_trace.TracedResult":
    """Worker entry point of the batched (chunked) path.

    ``payload`` is ``(tasks, start_index, config, policy, on_error,
    span_context)``.  Each task runs the *same* inline retry ladder as the
    per-task path (:func:`_solve_one_inline`, global task indices, so
    backoff jitter and failure records are bit-for-bit identical except for
    wall times); the chunk returns ``(results, records, walls)`` aligned
    with ``tasks``.  Batched submission is only used in ``on_error`` modes
    that cannot raise, so a chunk either returns completely or dies with
    its worker (the scheduler then falls back to per-task submission for
    exact attribution).
    """
    tasks, start_index, config, policy, on_error, span_ctx = payload
    tracer: obs_trace.Tracer | None = None
    token = None
    if span_ctx is not None:
        # same fresh-tracer discipline as fault_radius_task: never trust the
        # (possibly fork-inherited) installed tracer in a pool worker
        tracer = obs_trace.Tracer()
        obs_trace.enable(tracer)
        token = obs_trace.activate(span_ctx)
    try:
        results: list[RadiusResult] = []
        records: list[FailureRecord | None] = []
        walls: list[float] = []
        clock = get_clock()
        for offset, task in enumerate(tasks):
            index = int(start_index) + offset
            t0 = clock.perf_counter()
            if tracer is not None:
                with tracer.span(
                    "pool.worker.solve", task_index=index, feature=task[0].name
                ):
                    res, rec = _solve_one_inline(index, task, config, policy, on_error)
            else:
                res, rec = _solve_one_inline(index, task, config, policy, on_error)
            results.append(res)
            records.append(rec)
            walls.append(clock.perf_counter() - t0)
        out = (results, records, walls)
        if tracer is None:
            return out
        return obs_trace.TracedResult(result=out, spans=tuple(tracer.export()))
    finally:
        if token is not None:
            obs_trace.deactivate(token)
        if tracer is not None:
            obs_trace.disable()


def _batch_chunks(n_tasks: int, workers: int, chunk_size: int | None) -> list[tuple[int, int]]:
    """``(start, stop)`` chunk bounds: ~4 chunks per worker unless pinned."""
    from repro.engine.pool import default_chunksize

    size = int(chunk_size) if chunk_size else default_chunksize(n_tasks, workers)
    return [(start, min(start + size, n_tasks)) for start in range(0, n_tasks, size)]


def _solve_batched(
    tasks: list[tuple],
    config: SolverConfig,
    policy: RetryPolicy,
    on_error: str,
    spec: BackendSpec,
) -> tuple[list[RadiusResult], list[FailureRecord]]:
    """Chunked fan-out for backends with the ``batched`` capability.

    Amortizes per-future overhead (and, on the shared-memory backend, packs
    each chunk's arrays into one segment).  Chunks that die with their
    worker or fail to round-trip are re-run through the per-task supervisor
    (fresh backend) so crash containment and attribution still hold.
    """
    n = len(tasks)
    results: list[RadiusResult | None] = [None] * n
    records: dict[int, FailureRecord] = {}
    tracing = obs_trace.enabled()
    span_ctx = obs_trace.current_context() if tracing else None
    leftovers: list[tuple[int, int]] = []  # chunk bounds needing per-task re-run
    backend = spec.create()
    try:
        futures: dict[Future, tuple[int, int]] = {}
        for start, stop in _batch_chunks(n, spec.workers, config.chunk_size):
            if tracing:
                _record_fault_event(
                    "pool.submit",
                    "repro_pool_submits_total",
                    "futures submitted to the process pool",
                    task_index=start,
                    attempt=0,
                    chunk=(start, stop),
                    backend=spec.name,
                )
            payload = (tasks[start:stop], start, config, policy, on_error, span_ctx)
            try:
                futures[backend.submit(chunk_radius_tasks, payload)] = (start, stop)
            except (BrokenExecutor, RuntimeError):
                leftovers.append((start, stop))
        for fut, (start, stop) in futures.items():
            try:
                out = fut.result()
            except ValidationError:
                raise
            except BaseException as exc:  # noqa: BLE001 - chunk re-runs under the supervisor
                logger.warning(
                    "chunk [%d:%d) failed on backend %r (%s); re-running "
                    "per-task under the supervisor",
                    start,
                    stop,
                    spec.name,
                    exc,
                )
                leftovers.append((start, stop))
                continue
            if isinstance(out, obs_trace.TracedResult):
                tracer = obs_trace.get_tracer()
                if tracer is not None and obs_trace.enabled():
                    tracer.ingest(out.spans)
                out = out.result
            chunk_results, chunk_records, walls = out
            for offset in range(stop - start):
                index = start + offset
                results[index] = chunk_results[offset]
                rec = chunk_records[offset]
                if rec is not None:
                    records[index] = rec
                if tracing:
                    _record_terminal(
                        index,
                        tasks[index],
                        rec,
                        walls[offset],
                        path="pool",
                        backend=spec.name,
                    )
    finally:
        backend.shutdown(kill=True)
    # Re-run broken chunks per-task: exact crash attribution, sub-batch span
    # indices are remapped onto the original batch via the records.
    for start, stop in leftovers:
        sub = tasks[start:stop]
        sub_results, sub_failures = _Supervisor(sub, config, policy, on_error, spec).run()
        for offset, res in enumerate(sub_results):
            results[start + offset] = res
        for rec in sub_failures:
            index = start + rec.task_index
            records[index] = dataclasses.replace(rec, task_index=index)
    failures = [records[i] for i in sorted(records)]
    return [res for res in results if res is not None], failures


class _Supervisor:
    """Pooled scheduler: window submission, deadlines, crash attribution."""

    def __init__(
        self,
        tasks: list[tuple],
        config: SolverConfig,
        policy: RetryPolicy,
        on_error: str,
        spec: BackendSpec,
    ) -> None:
        self.tasks = tasks
        self.config = config
        self.policy = policy
        self.on_error = on_error
        self.spec = spec
        n = len(tasks)
        self.results: list[RadiusResult | None] = [None] * n
        self.records: dict[int, FailureRecord] = {}
        self.started: list[float | None] = [None] * n
        self.suspect: list[str | None] = [None] * n  # "crash"/"timeout" history
        self.pending: deque[tuple[int, int]] = deque((i, 0) for i in range(n))
        self.inflight: dict = {}  # future -> (index, attempt, deadline)
        self.executor: ExecutionBackend | None = None
        self.probe_mode = False
        self.pool_breaks = 0
        self.serial_only = False

    # -- executor lifecycle ---------------------------------------------------
    def _window(self) -> int:
        return 1 if self.probe_mode else max(1, 2 * self.spec.workers)

    def _ensure_executor(self) -> bool:
        if self.executor is not None:
            return True
        try:
            self.executor = self.spec.create(
                max_workers=1 if self.probe_mode else self.spec.workers
            )
            return True
        except OSError as exc:  # pragma: no cover - resource exhaustion
            logger.warning(
                "cannot create a %s backend (%s); degrading to inline serial solves",
                self.spec.name,
                exc,
            )
            self.serial_only = True
            return False

    def _kill_executor(self) -> None:
        if self.executor is None:
            return
        executor, self.executor = self.executor, None
        executor.shutdown(kill=True)

    # -- terminal bookkeeping -------------------------------------------------
    def _wall(self, index: int) -> float:
        t0 = self.started[index]
        return 0.0 if t0 is None else get_clock().perf_counter() - t0

    def _finish(self, index: int, result: RadiusResult, record: FailureRecord | None) -> None:
        self.results[index] = result
        if record is not None:
            self.records[index] = record
        if obs_trace.enabled():
            _record_terminal(
                index,
                self.tasks[index],
                record,
                self._wall(index),
                path="pool",
                backend=self.spec.name,
            )

    def _terminal_exception(
        self, index: int, attempts: int, stage: str, exc: ReproError
    ) -> None:
        """Crash/timeout/pickle terminal state (never runs the impact again)."""
        if self.on_error == "raise":
            self._kill_executor()
            raise exc
        record = FailureRecord(
            task_index=index,
            attempts=attempts,
            stage=stage,
            exception=repr(exc),
            wall_time=self._wall(index),
            feature=self.tasks[index][0].name,
            parameter=self.tasks[index][1].name,
        )
        self._finish(index, _failed_result(self.tasks[index], stage), record)

    # -- fault handlers -------------------------------------------------------
    def _on_pool_break(self, popped: tuple[int, int] | None) -> None:
        """A worker died; every in-flight future is poisoned."""
        items = [popped] if popped is not None else []
        items += [(i, a) for (i, a, _) in self.inflight.values()]
        if obs_trace.enabled():
            _record_fault_event(
                "fault.pool_break",
                "repro_crashes_total",
                "process pool breakages (worker crashes)",
                n_tasks=len(items),
                probe_mode=self.probe_mode,
            )
        self.inflight.clear()
        self._kill_executor()
        self.pool_breaks += 1
        if len(items) == 1:
            # Single in-flight task (probe mode, or the tail of the batch):
            # the crash is attributed exactly.
            index, attempt = items[0]
            self.suspect[index] = "crash"
            if attempt + 1 < self.policy.max_attempts:
                logger.warning(
                    "worker crashed on task %d (attempt %d); retrying", index, attempt + 1
                )
                self.pending.append((index, attempt + 1))
            else:
                self._terminal_exception(
                    index,
                    attempt + 1,
                    "crash",
                    WorkerCrashError(task_index=index, attempts=attempt + 1),
                )
            return
        # Parallel window: attribution is ambiguous — requeue everyone at the
        # same attempt and rebuild; repeated breakage drops to probe mode.
        for index, attempt in items:
            self.pending.appendleft((index, attempt))
        if not self.probe_mode and self.pool_breaks >= self.policy.max_pool_rebuilds:
            self.probe_mode = True
            logger.warning(
                "process pool broke %d times; degrading to single-in-flight "
                "probe mode to attribute the crash",
                self.pool_breaks,
            )
        else:
            logger.warning(
                "process pool broke (%d/%d tolerated); rebuilding",
                self.pool_breaks,
                self.policy.max_pool_rebuilds,
            )

    def _on_timeouts(self, overdue: list) -> None:
        """Deadline overruns: abandon the hung workers, requeue the innocents."""
        for fut in overdue:
            index, attempt, _ = self.inflight.pop(fut)
            self.suspect[index] = "timeout"
            if obs_trace.enabled():
                _record_fault_event(
                    "fault.timeout",
                    "repro_timeouts_total",
                    "per-task deadline overruns",
                    task_index=index,
                    attempt=attempt,
                )
            cfg = self.policy.escalated(self.config, attempt)
            if attempt + 1 < self.policy.max_attempts:
                logger.warning(
                    "task %d exceeded its %.3gs deadline (attempt %d); retrying "
                    "with a longer deadline",
                    index,
                    cfg.task_timeout or 0.0,
                    attempt + 1,
                )
                self.pending.append((index, attempt + 1))
            else:
                self._terminal_exception(
                    index,
                    attempt + 1,
                    "timeout",
                    SolverTimeoutError(timeout=cfg.task_timeout, task_index=index),
                )
        # The pool may be saturated by hung workers — rebuild it; in-flight
        # innocents are requeued at their current attempt.
        for index, attempt in [(i, a) for (i, a, _) in self.inflight.values()]:
            self.pending.appendleft((index, attempt))
        self.inflight.clear()
        self._kill_executor()

    # -- result handling ------------------------------------------------------
    def _on_result(self, index: int, attempt: int, res: RadiusResult) -> None:
        if res.converged or self.on_error == "raise" or res.failure not in RETRYABLE_REASONS:
            self._finish(index, res, None)
            return
        if attempt + 1 < self.policy.max_attempts:
            self.pending.append((index, attempt + 1))
            return
        result, record = _terminal_solve_failure(
            index,
            self.tasks[index],
            attempt + 1,
            self._wall(index),
            self.policy,
            self.on_error,
            res=res,
        )
        self._finish(index, result, record)

    def _on_worker_exception(self, index: int, attempt: int, exc: BaseException) -> None:
        if _is_pickle_error(exc):
            # This particular task cannot cross the process boundary; solve
            # it in-process like the legacy serial fallback did.
            res, rec = _solve_one_inline(
                index, self.tasks[index], self.config, self.policy, self.on_error
            )
            if rec is not None:
                rec = dataclasses.replace(rec, stage="pickle")
            self._finish(index, res, rec)
            return
        if isinstance(exc, ValidationError):
            if self.on_error == "raise":
                self._kill_executor()
                raise exc
            record = FailureRecord(
                task_index=index,
                attempts=attempt + 1,
                stage="solve",
                exception=repr(exc),
                wall_time=self._wall(index),
                feature=self.tasks[index][0].name,
                parameter=self.tasks[index][1].name,
            )
            self._finish(index, _failed_result(self.tasks[index], "validation-error"), record)
            return
        # solver-stage exception: retry, then terminal
        if attempt + 1 < self.policy.max_attempts:
            self.pending.append((index, attempt + 1))
            return
        if self.on_error == "raise":
            self._kill_executor()
            raise exc if isinstance(exc, ReproError) else SolverError(repr(exc))
        result, record = _terminal_solve_failure(
            index,
            self.tasks[index],
            attempt + 1,
            self._wall(index),
            self.policy,
            self.on_error,
            exc=exc,
        )
        self._finish(index, result, record)

    # -- main loop ------------------------------------------------------------
    def _submit_pending(self) -> None:
        while self.pending and len(self.inflight) < self._window():
            if not self._ensure_executor():
                return
            index, attempt = self.pending.popleft()
            if attempt > 0:
                if obs_trace.enabled():
                    _record_retry(index, attempt)
                time.sleep(self.policy.delay(index, attempt - 1))
            cfg = self.policy.escalated(self.config, attempt)
            feature, parameter, norm, _ = self.tasks[index]
            if self.started[index] is None:
                self.started[index] = get_clock().perf_counter()
            span_ctx = obs_trace.current_context()
            if obs_trace.enabled():
                _record_fault_event(
                    "pool.submit",
                    "repro_pool_submits_total",
                    "futures submitted to the process pool",
                    task_index=index,
                    attempt=attempt,
                    backend=self.spec.name,
                )
            assert self.executor is not None
            same_process = not self.spec.capabilities.isolated
            payload = (
                ((feature, parameter, norm, cfg), attempt, span_ctx, True)
                if same_process and span_ctx is not None
                else ((feature, parameter, norm, cfg), attempt, span_ctx)
            )
            try:
                fut = self.executor.submit(fault_radius_task, payload)
            except (BrokenExecutor, RuntimeError):
                self._on_pool_break((index, attempt))
                continue
            deadline = (
                time.monotonic() + cfg.task_timeout if cfg.task_timeout else None
            )
            self.inflight[fut] = (index, attempt, deadline)

    def _drain_serial(self) -> None:
        """Executor creation failed: finish inline, but never run tasks with
        crash/hang history in the parent process."""
        while self.pending:
            index, attempt = self.pending.popleft()
            history = self.suspect[index]
            if history is not None:
                exc: ReproError
                if history == "crash":
                    exc = WorkerCrashError(task_index=index, attempts=attempt + 1)
                else:
                    exc = SolverTimeoutError(task_index=index)
                self._terminal_exception(index, attempt + 1, history, exc)
                continue
            res, rec = _solve_one_inline(
                index, self.tasks[index], self.config, self.policy, self.on_error
            )
            self._finish(index, res, rec)

    def run(self) -> tuple[list[RadiusResult], list[FailureRecord]]:
        try:
            while self.pending or self.inflight:
                if self.serial_only:
                    self._drain_serial()
                    break
                self._submit_pending()
                if not self.inflight:
                    if self.serial_only:
                        self._drain_serial()
                        break
                    continue
                now = time.monotonic()
                deadlines = [d for (_, _, d) in self.inflight.values() if d is not None]
                timeout = max(0.0, min(deadlines) - now) if deadlines else None
                done, _ = wait(set(self.inflight), timeout=timeout, return_when=FIRST_COMPLETED)
                if not done:
                    now = time.monotonic()
                    overdue = [
                        fut
                        for fut, (_, _, d) in self.inflight.items()
                        if d is not None and now >= d and not fut.done()
                    ]
                    if overdue:
                        self._on_timeouts(overdue)
                    continue
                broke = False
                for fut in done:
                    if fut not in self.inflight:
                        continue
                    index, attempt, _ = self.inflight.pop(fut)
                    try:
                        res = fut.result()
                    except BrokenExecutor:
                        self._on_pool_break((index, attempt))
                        broke = True
                        break
                    except BaseException as exc:  # noqa: BLE001 - routed per kind
                        self._on_worker_exception(index, attempt, exc)
                        continue
                    if isinstance(res, obs_trace.TracedResult):
                        tracer = obs_trace.get_tracer()
                        if tracer is not None and obs_trace.enabled():
                            tracer.ingest(res.spans)
                        res = res.result
                    self._on_result(index, attempt, res)
                if broke:
                    continue
        finally:
            self._kill_executor()
        failures = [self.records[i] for i in sorted(self.records)]
        return list(self.results), failures
