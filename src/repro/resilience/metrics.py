"""Temporal resilience metrics over performance-feature time series.

The paper's robustness radius is a *static* distance to the failure
boundary; these metrics (after RESMETRIC, arXiv 2501.18245) summarize how a
system behaves *through* a disturbance, given the series a schedule run
(:func:`repro.sim.run_schedule`) emits: sample times ``t_k``, feature
values ``v_k`` (makespan — higher is worse), the acceptable-region limit
``L = tau * M_orig`` and the nominal baseline ``B = M_orig``.

Definitions (all pure functions; ``docs/RESILIENCE.md`` derives them):

- **dip magnitude** — worst relative degradation vs. nominal,
  ``max_k (v_k - B) / B`` floored at 0 (``inf`` when a total outage drove
  the value to infinity);
- **time to recovery** — duration of the violating episode: with ``i`` the
  first and ``j`` the last violating sample, ``t_{j+1} - t_i`` (0 with no
  violation; ``inf`` when the final sample still violates — the system
  never recovered inside the horizon);
- **degradation integral** — area between the series and the limit while
  violating, ``sum_k w_k * (v_k - L) * [v_k violating]`` with trapezoid
  nodal weights ``w_k`` of the sample grid (a single-sample series uses
  unit weight).  Zero **iff** no step violates;
- **steady-state offset** — relative offset of the settled tail,
  ``(mean of the last ceil(tail_fraction * n) samples - B) / B`` (signed:
  negative means the system ended *better* than nominal);
- **antifragility score** — ``max(0, -steady_state_offset)``: positive
  exactly when the post-disturbance steady state beats the nominal
  baseline (for this closed-form feature it is 0 unless a disturbance
  permanently *reduced* computation times).

Violation flags use the same float guard as the schedule runner
(:data:`repro.sim.schedule_run.VIOLATION_RTOL`), and the degradation
excess is gated on the flag, so "integral is zero" and "no violating step"
are exactly the same statement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.sim.schedule_run import VIOLATION_RTOL, ScheduleRunResult
from repro.utils.serialization import decode_float, encode_float
from repro.utils.validation import as_1d_float_array

__all__ = [
    "ResilienceMetrics",
    "violation_flags",
    "dip_magnitude",
    "time_to_recovery",
    "degradation_integral",
    "steady_state_offset",
    "antifragility_score",
    "resilience_metrics",
    "evaluate_series",
]


def _series(times, values) -> tuple[np.ndarray, np.ndarray]:
    times = as_1d_float_array(times, "times")
    values = np.asarray(values, dtype=float).ravel()
    if times.size == 0:
        raise ValidationError("resilience metrics need a non-empty series")
    if values.size != times.size:
        raise ValidationError(
            f"values has {values.size} entries for {times.size} sample times"
        )
    if np.any(np.diff(times) <= 0):
        raise ValidationError("sample times must be strictly increasing")
    return times, values


def violation_flags(values, limit: float) -> np.ndarray:
    """Per-step violation flags, ``v > L`` with the shared float guard."""
    values = np.asarray(values, dtype=float).ravel()
    return values > float(limit) * (1.0 + VIOLATION_RTOL)


def dip_magnitude(values, baseline: float) -> float:
    """Worst relative degradation vs. nominal: ``max_k (v_k - B)/B``, >= 0."""
    values = np.asarray(values, dtype=float).ravel()
    baseline = float(baseline)
    if baseline <= 0:
        raise ValidationError(f"baseline must be > 0, got {baseline!r}")
    if values.size == 0:
        raise ValidationError("dip_magnitude needs a non-empty series")
    return float(max(0.0, (np.max(values) - baseline) / baseline))


def time_to_recovery(times, violations) -> float:
    """Duration of the violating episode (0 = never violated, inf = never
    recovered inside the horizon)."""
    times = as_1d_float_array(times, "times")
    flags = np.asarray(violations, dtype=bool).ravel()
    if flags.size != times.size:
        raise ValidationError(
            f"violations has {flags.size} entries for {times.size} sample times"
        )
    idx = np.flatnonzero(flags)
    if idx.size == 0:
        return 0.0
    first, last = int(idx[0]), int(idx[-1])
    if last == times.size - 1:
        return float("inf")
    return float(times[last + 1] - times[first])


def degradation_integral(times, values, limit: float) -> float:
    """Area under the excess over the limit, restricted to violating steps.

    Trapezoid nodal weights of the grid (``w_0 = (t_1-t_0)/2``, interior
    ``w_k = (t_{k+1}-t_{k-1})/2``, ``w_{n-1} = (t_{n-1}-t_{n-2})/2``; a
    single-sample series uses ``w_0 = 1``), each multiplied by the excess
    ``v_k - L`` when step ``k`` violates and by 0 otherwise — so the
    integral is zero exactly when no step violates.
    """
    times, values = _series(times, values)
    flags = violation_flags(values, limit)
    excess = np.where(flags, values - float(limit), 0.0)
    if times.size == 1:
        return float(excess[0])
    weights = np.empty_like(times)
    weights[0] = (times[1] - times[0]) / 2.0
    weights[-1] = (times[-1] - times[-2]) / 2.0
    if times.size > 2:
        weights[1:-1] = (times[2:] - times[:-2]) / 2.0
    return float(np.sum(excess * weights))


def steady_state_offset(values, baseline: float, *, tail_fraction: float = 0.1) -> float:
    """Relative offset of the settled tail vs. nominal (signed)."""
    values = np.asarray(values, dtype=float).ravel()
    baseline = float(baseline)
    if baseline <= 0:
        raise ValidationError(f"baseline must be > 0, got {baseline!r}")
    if values.size == 0:
        raise ValidationError("steady_state_offset needs a non-empty series")
    if not 0.0 < float(tail_fraction) <= 1.0:
        raise ValidationError(
            f"tail_fraction must be in (0, 1], got {tail_fraction!r}"
        )
    n_tail = max(1, int(np.ceil(values.size * float(tail_fraction))))
    return float((np.mean(values[-n_tail:]) - baseline) / baseline)


def antifragility_score(values, baseline: float, *, tail_fraction: float = 0.1) -> float:
    """``max(0, -steady_state_offset)`` — positive iff the settled system
    outperforms its own nominal baseline."""
    return max(0.0, -steady_state_offset(values, baseline, tail_fraction=tail_fraction))


@dataclass(frozen=True)
class ResilienceMetrics:
    """The resilience summary of one schedule run."""

    #: worst relative degradation vs. nominal (>= 0, inf on total outage)
    dip: float
    #: duration of the violating episode (0 none, inf never recovered)
    time_to_recovery: float
    #: area under the excess-over-limit curve while violating
    degradation_integral: float
    #: signed relative offset of the settled tail vs. nominal
    steady_state_offset: float
    #: ``max(0, -steady_state_offset)``
    antifragility: float
    #: number of violating samples
    n_violations: int
    #: fraction of samples that violated
    violation_fraction: float
    #: whether the final sample was back inside the acceptable region
    recovered: bool

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "ResilienceMetrics",
            "version": 1,
            "dip": encode_float(self.dip),
            "time_to_recovery": encode_float(self.time_to_recovery),
            "degradation_integral": encode_float(self.degradation_integral),
            "steady_state_offset": encode_float(self.steady_state_offset),
            "antifragility": encode_float(self.antifragility),
            "n_violations": int(self.n_violations),
            "violation_fraction": float(self.violation_fraction),
            "recovered": bool(self.recovered),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceMetrics":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "ResilienceMetrics":
            raise ValidationError(
                f"expected type 'ResilienceMetrics', got {data.get('type')!r}"
            )
        return cls(
            dip=decode_float(data["dip"]),
            time_to_recovery=decode_float(data["time_to_recovery"]),
            degradation_integral=decode_float(data["degradation_integral"]),
            steady_state_offset=decode_float(data["steady_state_offset"]),
            antifragility=decode_float(data["antifragility"]),
            n_violations=int(data["n_violations"]),
            violation_fraction=float(data["violation_fraction"]),
            recovered=bool(data["recovered"]),
        )


def resilience_metrics(
    times,
    values,
    limit: float,
    baseline: float,
    *,
    tail_fraction: float = 0.1,
) -> ResilienceMetrics:
    """All resilience metrics of one series (see module docstring)."""
    times, values = _series(times, values)
    flags = violation_flags(values, limit)
    return ResilienceMetrics(
        dip=dip_magnitude(values, baseline),
        time_to_recovery=time_to_recovery(times, flags),
        degradation_integral=degradation_integral(times, values, limit),
        steady_state_offset=steady_state_offset(
            values, baseline, tail_fraction=tail_fraction
        ),
        antifragility=antifragility_score(
            values, baseline, tail_fraction=tail_fraction
        ),
        n_violations=int(np.count_nonzero(flags)),
        violation_fraction=float(np.count_nonzero(flags) / flags.size),
        recovered=bool(not flags[-1]),
    )


def evaluate_series(run: ScheduleRunResult, *, tail_fraction: float = 0.1) -> ResilienceMetrics:
    """Resilience metrics of a :class:`~repro.sim.schedule_run.ScheduleRunResult`."""
    return resilience_metrics(
        run.times,
        run.values,
        run.limit,
        run.baseline,
        tail_fraction=tail_fraction,
    )
