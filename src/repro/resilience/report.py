"""Plain-text reports for resilience runs and the correlation experiment."""

from __future__ import annotations

import numpy as np

from repro.resilience.evaluate import ResilienceReport
from repro.resilience.experiment import ResilienceExperimentResult
from repro.utils.tables import ascii_scatter, format_table

__all__ = ["report_resilience", "report_experiment"]


def _fmt(x: float) -> str:
    if not np.isfinite(x):
        return "inf" if x > 0 else ("-inf" if x < 0 else "nan")
    return f"{x:.4g}"


def report_resilience(report: ResilienceReport) -> str:
    """One schedule run: the metric summary plus the violating episodes."""
    run, m = report.run, report.metrics
    lines = [
        "=== Temporal resilience "
        f"({run.n_steps} samples over [0, {run.times[-1]:.4g}], "
        f"tau={run.tau}) ===",
        "",
        format_table(
            ["metric", "value"],
            [
                ["baseline makespan M_orig", _fmt(run.baseline)],
                ["limit tau * M_orig", _fmt(run.limit)],
                ["dip magnitude", _fmt(m.dip)],
                ["time to recovery", _fmt(m.time_to_recovery)],
                ["degradation integral", _fmt(m.degradation_integral)],
                ["steady-state offset", _fmt(m.steady_state_offset)],
                ["antifragility score", _fmt(m.antifragility)],
                ["violating samples", f"{m.n_violations}/{run.n_steps}"],
                ["recovered inside horizon", str(m.recovered)],
            ],
            title="resilience metrics",
        ),
    ]
    if run.outages:
        lines.append("")
        lines.append(
            format_table(
                ["machine", "start", "end", "displaced apps"],
                [
                    [o.machine, _fmt(o.start), _fmt(o.end), len(o.displaced)]
                    for o in run.outages
                ],
                title="machine outages",
            )
        )
    finite = np.isfinite(run.values)
    if finite.sum() >= 2 and np.ptp(run.values[finite]) > 0:
        lines.append("")
        lines.append(
            ascii_scatter(
                run.times[finite],
                run.values[finite],
                xlabel="simulated time",
                ylabel="makespan",
            )
        )
    return "\n".join(lines)


def report_experiment(result: ResilienceExperimentResult) -> str:
    """The radius-vs-resilience sweep: correlations plus the scatter."""
    finite = np.isfinite(result.recovery_times)
    violated = result.recovery_times > 0
    lines = [
        "=== Radius vs resilience "
        f"({result.n_mappings} random mappings, tau={result.tau}, "
        f"{len(result.schedule.events)} schedule events) ===",
        "",
        format_table(
            ["pair", "pearson", "spearman"],
            [
                [
                    "radius vs recovery time",
                    _fmt(result.pearson_radius_recovery),
                    _fmt(result.spearman_radius_recovery),
                ],
                [
                    "radius vs degradation integral",
                    _fmt(result.pearson_radius_integral),
                    _fmt(result.spearman_radius_integral),
                ],
            ],
            title="correlations (pearson over finite pairs; spearman over all)",
        ),
        "",
        f"mappings that violated at all: {int(np.count_nonzero(violated))}"
        f"/{result.n_mappings}",
        f"mappings with finite recovery: {result.n_finite_recovery}"
        f"/{result.n_mappings}",
    ]
    if finite.sum() >= 2 and np.ptp(result.radii[finite]) > 0:
        lines.append("")
        lines.append(
            ascii_scatter(
                result.radii[finite],
                result.recovery_times[finite],
                xlabel="robustness radius",
                ylabel="recovery time",
            )
        )
    return "\n".join(lines)
