"""One-call resilience evaluation: run a schedule, summarize the series.

:func:`evaluate_resilience` is the workhorse behind
:func:`repro.api.evaluate_resilience` and the ``repro resilience`` CLI: it
executes a mapping through a perturbation schedule
(:func:`repro.sim.run_schedule`), computes the resilience metrics of the
emitted series, and returns both as one serializable
:class:`ResilienceReport`.

Observability (off by default, same contract as the engine): under an
active tracer the run is wrapped in a ``resilience.run`` span carrying the
step/violation counts, and the metrics registry receives

- ``repro_resilience_runs_total`` — runs by recovery outcome;
- ``repro_resilience_recovery_seconds`` — simulated-time recovery
  histogram (finite recoveries only);
- ``repro_resilience_dip_ratio`` — dip-magnitude histogram.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.exceptions import ValidationError
from repro.faults.schedule import PerturbationSchedule
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.resilience.metrics import ResilienceMetrics, evaluate_series
from repro.sim.schedule_run import ScheduleRunResult, run_schedule
from repro.utils.clock import Clock

__all__ = ["ResilienceReport", "evaluate_resilience"]

#: dip-ratio histogram buckets (relative degradation vs. nominal)
DIP_BUCKETS = (0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)

#: recovery-time histogram buckets (simulated seconds)
RECOVERY_BUCKETS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0)


@dataclass(frozen=True)
class ResilienceReport:
    """A schedule run plus its resilience summary (one serializable unit)."""

    #: the emitted time series (values, violation flags, outages)
    run: ScheduleRunResult
    #: the resilience metrics computed from ``run``
    metrics: ResilienceMetrics

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "ResilienceReport",
            "version": 1,
            "run": self.run.to_dict(),
            "metrics": self.metrics.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceReport":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "ResilienceReport":
            raise ValidationError(
                f"expected type 'ResilienceReport', got {data.get('type')!r}"
            )
        return cls(
            run=ScheduleRunResult.from_dict(data["run"]),
            metrics=ResilienceMetrics.from_dict(data["metrics"]),
        )


def _record_run(report: ResilienceReport) -> None:
    """Metrics-registry bookkeeping for one run (obs must be enabled)."""
    registry = obs_metrics.get_registry()
    outcome = (
        "clean"
        if report.metrics.n_violations == 0
        else ("recovered" if report.metrics.recovered else "unrecovered")
    )
    registry.counter(
        "repro_resilience_runs_total",
        help="resilience schedule runs by recovery outcome",
        outcome=outcome,
    ).inc()
    if 0.0 < report.metrics.time_to_recovery < math.inf:
        registry.histogram(
            "repro_resilience_recovery_seconds",
            help="simulated time from first violation to re-entry",
            buckets=RECOVERY_BUCKETS,
        ).observe(report.metrics.time_to_recovery)
    if np.isfinite(report.metrics.dip):
        registry.histogram(
            "repro_resilience_dip_ratio",
            help="worst relative degradation vs. nominal makespan",
            buckets=DIP_BUCKETS,
        ).observe(report.metrics.dip)


def evaluate_resilience(
    mapping: Mapping,
    etc: np.ndarray,
    schedule: PerturbationSchedule,
    tau: float,
    *,
    n_steps: int = 200,
    tail_fraction: float = 0.1,
    clock: Clock | None = None,
) -> ResilienceReport:
    """Run ``mapping`` through ``schedule`` and summarize its resilience.

    Bit-for-bit reproducible: the report is a pure function of
    ``(mapping, etc, schedule, tau, n_steps, tail_fraction)`` — the only
    randomness lives in the (seeded) schedule generation.
    """
    with obs_trace.maybe_span("resilience.run", tau=float(tau), n_steps=int(n_steps)) as sp:
        run = run_schedule(mapping, etc, schedule, tau, n_steps=n_steps, clock=clock)
        metrics = evaluate_series(run, tail_fraction=tail_fraction)
        report = ResilienceReport(run=run, metrics=metrics)
        if obs_trace.enabled():
            sp.set_attr("n_violations", metrics.n_violations)
            sp.set_attr("recovered", metrics.recovered)
            _record_run(report)
    return report
