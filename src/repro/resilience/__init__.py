"""Temporal resilience: how a mapping behaves *through* a disturbance.

The paper's robustness radius is a static promise — a distance to the
failure boundary.  This package measures the dynamic counterpart: a
mapping is executed through a seeded
:class:`~repro.faults.schedule.PerturbationSchedule`
(:func:`repro.sim.run_schedule` emits the performance-feature series) and
the series is summarized by pure metric functions —

- dip magnitude, time to recovery, degradation integral, steady-state
  offset and antifragility score (:mod:`~repro.resilience.metrics`);
- :func:`evaluate_resilience` bundles a run and its metrics into one
  serializable :class:`ResilienceReport` (obs spans/metrics included);
- :func:`run_resilience_experiment` sweeps a random population for the
  static radius *and* the temporal metrics under one shared schedule and
  reports the radius-vs-recovery correlation
  (:mod:`~repro.resilience.experiment`).

See ``docs/RESILIENCE.md`` for the formulas and a CLI walkthrough
(``repro resilience``).
"""

from repro.resilience.evaluate import ResilienceReport, evaluate_resilience
from repro.resilience.experiment import (
    ResilienceExperimentResult,
    run_resilience_experiment,
)
from repro.resilience.metrics import (
    ResilienceMetrics,
    antifragility_score,
    degradation_integral,
    dip_magnitude,
    evaluate_series,
    resilience_metrics,
    steady_state_offset,
    time_to_recovery,
    violation_flags,
)
from repro.resilience.report import report_experiment, report_resilience

__all__ = [
    "ResilienceMetrics",
    "ResilienceReport",
    "ResilienceExperimentResult",
    "violation_flags",
    "dip_magnitude",
    "time_to_recovery",
    "degradation_integral",
    "steady_state_offset",
    "antifragility_score",
    "resilience_metrics",
    "evaluate_series",
    "evaluate_resilience",
    "run_resilience_experiment",
    "report_resilience",
    "report_experiment",
]
