"""The radius-vs-resilience experiment: does a larger robustness radius
predict faster recovery?

The paper's Figure 3 population (random mappings on a CVB ETC matrix) is
swept twice with the *same* tolerance ``tau``:

1. the **static** view — each mapping's robustness radius ``rho`` (Eq. 7,
   closed form via the engine);
2. the **temporal** view — each mapping is executed through one shared
   seeded :class:`~repro.faults.schedule.PerturbationSchedule` and its
   recovery time, degradation integral and dip are measured from the
   emitted series.

The result reports Pearson and Spearman correlations between the radius
and the temporal metrics.  The paper's geometry predicts a *negative*
radius-recovery association: a mapping whose failure boundary is further
away needs a larger disturbance to violate at all, so fewer schedule
events trip it and the violating episode is shorter.  The experiment
quantifies how much of that static promise survives an actual disturbance
trajectory (outages included, which the radius says nothing about).

Determinism: one seed spawns the ETC / mapping / schedule streams
(:func:`~repro.utils.rng.spawn_rngs`), and the runs themselves are pure,
so the whole result — series, metrics, correlations — is bit-for-bit
reproducible from ``(seed, parameters)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.generators import random_assignments
from repro.alloc.mapping import Mapping
from repro.engine import RobustnessEngine
from repro.etcgen.cvb import cvb_etc_matrix
from repro.exceptions import ValidationError
from repro.faults.schedule import EVENT_KINDS, PerturbationSchedule
from repro.resilience.metrics import evaluate_series
from repro.sim.schedule_run import run_schedule
from repro.utils.rng import spawn_rngs
from repro.utils.serialization import decode_array, encode_array, encode_float, decode_float
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ResilienceExperimentResult", "run_resilience_experiment"]

#: disturbances the experiment defaults to — the recoverable kinds, so
#: recovery time is informative (step/ramp inflations never subside)
RECOVERABLE_KINDS = ("spike", "burst_crash")


def _rankdata(x: np.ndarray) -> np.ndarray:
    """Average ranks (ties shared), tolerant of ``inf`` entries."""
    order = np.argsort(x, kind="stable")
    ranks = np.empty(x.size, dtype=float)
    ranks[order] = np.arange(1, x.size + 1, dtype=float)
    # average the ranks of exact ties
    sorted_x = x[order]
    i = 0
    while i < x.size:
        j = i
        while j + 1 < x.size and sorted_x[j + 1] == sorted_x[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    return ranks


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation over finite pairs (NaN when undefined)."""
    finite = np.isfinite(x) & np.isfinite(y)
    x, y = x[finite], y[finite]
    if x.size < 2 or np.ptp(x) == 0.0 or np.ptp(y) == 0.0:
        return float("nan")
    return float(np.corrcoef(x, y)[0, 1])


def _spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman correlation (rank Pearson); ``inf`` ranks largest."""
    if x.size < 2:
        return float("nan")
    return _pearson(_rankdata(x), _rankdata(y))


@dataclass(frozen=True)
class ResilienceExperimentResult:
    """Per-mapping static radii and temporal resilience, plus correlations."""

    #: the tolerance factor shared by both views
    tau: float
    #: static robustness radius (Eq. 7) per mapping
    radii: np.ndarray
    #: time-to-recovery per mapping (0 = never violated, inf = never recovered)
    recovery_times: np.ndarray
    #: degradation integral per mapping
    degradation_integrals: np.ndarray
    #: dip magnitude per mapping
    dips: np.ndarray
    #: the shared disturbance every mapping was executed through
    schedule: PerturbationSchedule
    #: Pearson correlations (finite pairs only)
    pearson_radius_recovery: float
    pearson_radius_integral: float
    #: Spearman (rank) correlations — robust to inf recovery times
    spearman_radius_recovery: float
    spearman_radius_integral: float
    #: number of mappings with a finite recovery time
    n_finite_recovery: int

    @property
    def n_mappings(self) -> int:
        """Population size."""
        return int(self.radii.size)

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "ResilienceExperimentResult",
            "version": 1,
            "tau": float(self.tau),
            "radii": encode_array(self.radii),
            "recovery_times": encode_array(self.recovery_times),
            "degradation_integrals": encode_array(self.degradation_integrals),
            "dips": encode_array(self.dips),
            "schedule": self.schedule.to_dict(),
            "pearson_radius_recovery": encode_float(self.pearson_radius_recovery),
            "pearson_radius_integral": encode_float(self.pearson_radius_integral),
            "spearman_radius_recovery": encode_float(self.spearman_radius_recovery),
            "spearman_radius_integral": encode_float(self.spearman_radius_integral),
            "n_finite_recovery": int(self.n_finite_recovery),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceExperimentResult":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "ResilienceExperimentResult":
            raise ValidationError(
                f"expected type 'ResilienceExperimentResult', got {data.get('type')!r}"
            )
        return cls(
            tau=float(data["tau"]),
            radii=decode_array(data["radii"]),
            recovery_times=decode_array(data["recovery_times"]),
            degradation_integrals=decode_array(data["degradation_integrals"]),
            dips=decode_array(data["dips"]),
            schedule=PerturbationSchedule.from_dict(data["schedule"]),
            pearson_radius_recovery=decode_float(data["pearson_radius_recovery"]),
            pearson_radius_integral=decode_float(data["pearson_radius_integral"]),
            spearman_radius_recovery=decode_float(data["spearman_radius_recovery"]),
            spearman_radius_integral=decode_float(data["spearman_radius_integral"]),
            n_finite_recovery=int(data["n_finite_recovery"]),
        )


def run_resilience_experiment(
    *,
    n_tasks: int = 20,
    n_machines: int = 5,
    n_mappings: int = 200,
    tau: float = 1.2,
    n_events: int = 8,
    n_steps: int = 160,
    horizon: float = 100.0,
    kinds: tuple[str, ...] = RECOVERABLE_KINDS,
    magnitude_range: tuple[float, float] = (0.5, 2.0),
    mean_task: float = 10.0,
    task_het: float = 0.7,
    machine_het: float = 0.7,
    seed=None,
    backend=None,
) -> ResilienceExperimentResult:
    """Sweep a population for static radius *and* temporal resilience.

    ``kinds`` defaults to the recoverable disturbances (spikes and machine
    outages); including ``"step"``/``"ramp"`` is allowed but drives every
    violating mapping's recovery time to ``inf`` (the inflation never
    subsides), which empties the Pearson view.  ``backend`` is forwarded to
    the engine for facade uniformity (the Eq. 7 pass is closed-form).
    """
    n_mappings = check_positive_int(n_mappings, "n_mappings")
    tau = check_positive(tau, "tau")
    bad = [k for k in kinds if k not in EVENT_KINDS]
    if bad:
        raise ValidationError(f"unknown event kinds {bad!r}; valid: {EVENT_KINDS}")
    rng_etc, rng_maps, rng_sched = spawn_rngs(seed, 3)

    etc = cvb_etc_matrix(
        n_tasks,
        n_machines,
        mean_task=mean_task,
        task_het=task_het,
        machine_het=machine_het,
        seed=rng_etc,
    )
    assignments = random_assignments(n_mappings, n_tasks, n_machines, seed=rng_maps)
    radii = RobustnessEngine(backend=backend).evaluate_allocation(assignments, etc, tau).values

    schedule = PerturbationSchedule.generate(
        n_events,
        n_tasks,
        n_machines,
        horizon=horizon,
        kinds=kinds,
        magnitude_range=magnitude_range,
        seed=rng_sched,
    )

    recovery = np.empty(n_mappings)
    integral = np.empty(n_mappings)
    dips = np.empty(n_mappings)
    for p in range(n_mappings):
        mapping = Mapping(assignments[p], n_machines)
        run = run_schedule(mapping, etc, schedule, tau, n_steps=n_steps)
        m = evaluate_series(run)
        recovery[p] = m.time_to_recovery
        integral[p] = m.degradation_integral
        dips[p] = m.dip

    return ResilienceExperimentResult(
        tau=tau,
        radii=radii,
        recovery_times=recovery,
        degradation_integrals=integral,
        dips=dips,
        schedule=schedule,
        pearson_radius_recovery=_pearson(radii, recovery),
        pearson_radius_integral=_pearson(radii, integral),
        spearman_radius_recovery=_spearman(radii, recovery),
        spearman_radius_integral=_spearman(radii, integral),
        n_finite_recovery=int(np.count_nonzero(np.isfinite(recovery))),
    )
