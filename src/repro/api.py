"""Stable top-level facade over the robustness engine.

One import gives the whole population-scale workflow with explicit
execution-backend selection::

    from repro import api

    result = api.evaluate(features, parameter)
    batch = api.evaluate_population(problems, backend="shm", on_error="record")
    curve = api.robustness_curve(mappings, etc, taus=[1.1, 1.2, 1.5])
    report = api.evaluate_resilience(mapping, etc, schedule, tau=1.2)

Every function accepts the same orthogonal keywords:

- ``norm=`` — a :class:`~repro.core.norms.Norm` or name (default l2);
- ``config=`` — a :class:`~repro.core.config.SolverConfig`;
- ``backend=`` — execution substrate of numeric solves: a registered name
  (``"serial"`` / ``"thread"`` / ``"process"`` / ``"shm"``), an
  :class:`~repro.engine.backends.ExecutionBackend` class or instance, or
  None for the default resolution (``REPRO_BACKEND`` env var, then the
  ``pool_size`` heuristic);
- ``store=`` — optional persistent solve store (path or
  :class:`~repro.engine.store.RadiusStore`).

The facade is a thin veneer: each call builds a
:class:`~repro.engine.RobustnessEngine` and delegates, so results are
bit-for-bit identical to driving the engine directly.  Construct and reuse
an engine yourself when you want the solve cache to persist across calls
without a store.

This module is the *stable* surface — the deprecation policy in
``docs/API.md`` routes old entry points here, and nothing in it will change
without a deprecation cycle.

Served access
-------------
Every evaluator here is also reachable over HTTP: :mod:`repro.serve` wraps
a shared engine in an asyncio JSON API (``repro serve`` at the command
line) whose ``/evaluate``, ``/evaluate_population`` and
``/robustness_curve`` endpoints mirror :func:`evaluate`,
:func:`evaluate_population` and :func:`robustness_curve`.  Concurrent
requests are micro-batched into the same stacked engine passes these
functions make, so served results are bit-for-bit the in-process results;
see ``docs/SERVE.md``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.core.config import SolverConfig
from repro.core.features import PerformanceFeature
from repro.core.metric import MetricResult
from repro.core.norms import Norm
from repro.core.perturbation import PerturbationParameter
from repro.engine.backends import BackendSpec, ExecutionBackend
from repro.engine.engine import (
    AllocationBatchResult,
    BatchRobustnessResult,
    HiperdBatchResult,
    RobustnessEngine,
)
from repro.engine.fault import RetryPolicy
from repro.engine.store import RadiusStore
from repro.exceptions import ValidationError
from repro.faults.schedule import PerturbationSchedule
from repro.hiperd.model import HiperDSystem
from repro.resilience.evaluate import ResilienceReport
from repro.resilience.evaluate import evaluate_resilience as _evaluate_resilience
from repro.utils.clock import Clock
from repro.utils.serialization import encode_array, decode_array

__all__ = [
    "evaluate",
    "evaluate_population",
    "evaluate_stream",
    "evaluate_allocation",
    "evaluate_hiperd",
    "evaluate_resilience",
    "robustness_curve",
    "RobustnessCurve",
    "ResilienceReport",
    "PerturbationSchedule",
    "RobustnessEngine",
    "BatchRobustnessResult",
    "AllocationBatchResult",
    "HiperdBatchResult",
    "SolverConfig",
    "RadiusStore",
    "RetryPolicy",
]

#: type accepted everywhere a backend can be chosen
BackendLike = "str | ExecutionBackend | type[ExecutionBackend] | BackendSpec | None"


def _engine(
    norm: Norm | str | None,
    config: SolverConfig | None,
    backend: BackendLike = None,
    store: "RadiusStore | str | None" = None,
    sanitize: bool = False,
) -> RobustnessEngine:
    """One-shot engine with the facade's keyword set."""
    return RobustnessEngine(
        norm=norm, config=config, backend=backend, store=store, sanitize=sanitize
    )


def evaluate(
    features: Iterable[PerformanceFeature],
    parameter: PerturbationParameter,
    *,
    norm: Norm | str | None = None,
    config: SolverConfig | None = None,
    backend: BackendLike = None,
    store: "RadiusStore | str | None" = None,
    apply_floor: bool | None = None,
    require_feasible: bool = False,
    on_error: str = "raise",
    retry_policy: RetryPolicy | None = None,
) -> MetricResult:
    """The paper's robustness metric (Eq. 2) of one ``(Phi, pi)`` problem."""
    return _engine(norm, config, backend, store).evaluate_metric(
        list(features),
        parameter,
        apply_floor=apply_floor,
        require_feasible=require_feasible,
        on_error=on_error,
        retry_policy=retry_policy,
    )


def evaluate_population(
    problems: Iterable[tuple[Iterable[PerformanceFeature], PerturbationParameter]],
    *,
    norm: Norm | str | None = None,
    config: SolverConfig | None = None,
    backend: BackendLike = None,
    store: "RadiusStore | str | None" = None,
    chunk_size: int | None = None,
    apply_floor: bool | None = None,
    require_feasible: bool = False,
    on_error: str = "raise",
    retry_policy: RetryPolicy | None = None,
) -> BatchRobustnessResult:
    """Eq. 2 for a whole population of ``(features, parameter)`` problems.

    With ``chunk_size=None`` the population is evaluated eagerly in one
    batch; an integer streams it through
    :meth:`~repro.engine.RobustnessEngine.evaluate_population_stream` in
    chunks of that size (identical results, bounded memory).
    """
    engine = _engine(norm, config, backend, store)
    if chunk_size is None:
        return engine.evaluate_population(
            problems,
            apply_floor=apply_floor,
            require_feasible=require_feasible,
            on_error=on_error,
            retry_policy=retry_policy,
        )
    return engine.evaluate_population_stream(
        problems,
        chunk_size=chunk_size,
        apply_floor=apply_floor,
        require_feasible=require_feasible,
        on_error=on_error,
        retry_policy=retry_policy,
    )


def evaluate_stream(
    problems: Iterable[tuple[Iterable[PerformanceFeature], PerturbationParameter]],
    *,
    norm: Norm | str | None = None,
    config: SolverConfig | None = None,
    backend: BackendLike = None,
    store: "RadiusStore | str | None" = None,
    chunk_size: int = 256,
    apply_floor: bool | None = None,
    require_feasible: bool = False,
    on_error: str = "raise",
    retry_policy: RetryPolicy | None = None,
) -> Iterator[BatchRobustnessResult]:
    """Chunk-by-chunk population evaluation (a generator of batches).

    Yields one :class:`~repro.engine.BatchRobustnessResult` per
    ``chunk_size`` problems, consuming the input lazily; merge with
    :meth:`BatchRobustnessResult.merge` when a single result is wanted.
    """
    return _engine(norm, config, backend, store).iter_population(
        problems,
        chunk_size=chunk_size,
        apply_floor=apply_floor,
        require_feasible=require_feasible,
        on_error=on_error,
        retry_policy=retry_policy,
    )


def evaluate_allocation(
    mappings: "np.ndarray | Sequence[Mapping] | Sequence[Sequence[int]]",
    etc: np.ndarray,
    tau: float,
    *,
    norm: Norm | str | None = None,
    config: SolverConfig | None = None,
    backend: BackendLike = None,
    store: "RadiusStore | str | None" = None,
    require_feasible: bool = False,
) -> AllocationBatchResult:
    """Eq. 6/7 (independent-task allocation) for a population of mappings.

    The pass is closed-form (pure array work), so ``backend=`` / ``store=``
    are accepted for facade uniformity but do not change the computation.
    """
    return _engine(norm, config, backend, store).evaluate_allocation(
        mappings, etc, tau, require_feasible=require_feasible
    )


def evaluate_hiperd(
    system: HiperDSystem,
    mappings: "np.ndarray | Sequence[Mapping] | Sequence[Sequence[int]]",
    load_orig: "np.ndarray | Sequence[float]",
    *,
    norm: Norm | str | None = None,
    config: SolverConfig | None = None,
    backend: BackendLike = None,
    store: "RadiusStore | str | None" = None,
    apply_floor: bool = True,
    require_feasible: bool = False,
) -> HiperdBatchResult:
    """Eqs. 10-11 (HiPer-D) for a population of mappings.

    Closed-form like :func:`evaluate_allocation`; ``backend=`` / ``store=``
    are accepted for facade uniformity but do not change the computation.
    """
    return _engine(norm, config, backend, store).evaluate_hiperd(
        system,
        mappings,
        load_orig,
        apply_floor=apply_floor,
        require_feasible=require_feasible,
    )


@dataclass(frozen=True)
class RobustnessCurve:
    """Allocation robustness swept over the tolerance factor ``tau``.

    ``values[i, p]`` is ``rho_mu(Phi, C)`` of mapping ``p`` at ``taus[i]`` —
    the robustness degradation curve of the population as the makespan
    tolerance tightens toward 1.
    """

    #: the swept tolerance factors, shape ``(T,)``
    taus: np.ndarray
    #: per-tau, per-mapping metric values, shape ``(T, P)``
    values: np.ndarray

    def __len__(self) -> int:
        return self.taus.size

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "RobustnessCurve",
            "version": 1,
            "taus": encode_array(self.taus),
            "values": encode_array(self.values),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RobustnessCurve":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "RobustnessCurve":
            raise ValidationError(
                f"expected type 'RobustnessCurve', got {data.get('type')!r}"
            )
        return cls(taus=decode_array(data["taus"]), values=decode_array(data["values"]))


def robustness_curve(
    mappings: "np.ndarray | Sequence[Mapping] | Sequence[Sequence[int]]",
    etc: np.ndarray,
    taus: "Sequence[float] | np.ndarray",
    *,
    norm: Norm | str | None = None,
    config: SolverConfig | None = None,
    backend: BackendLike = None,
    store: "RadiusStore | str | None" = None,
) -> RobustnessCurve:
    """Sweep the allocation metric over a set of tolerance factors.

    Each row of the returned curve is one
    :meth:`~repro.engine.RobustnessEngine.evaluate_allocation` pass at that
    ``tau`` (closed form, so the sweep is pure array work); rows are
    bit-for-bit identical to independent single-``tau`` calls.
    """
    tau_arr = np.asarray(list(taus), dtype=float)
    if tau_arr.ndim != 1 or tau_arr.size == 0:
        raise ValidationError("taus must be a non-empty 1-D sequence")
    diffs = np.diff(tau_arr)
    if diffs.size and not (np.all(diffs > 0) or np.all(diffs < 0)):
        raise ValidationError(
            "taus must be strictly monotonic (all increasing or all "
            f"decreasing) so the curve is well-ordered; got {tau_arr.tolist()}"
        )
    engine = _engine(norm, config, backend, store)
    rows = [engine.evaluate_allocation(mappings, etc, float(t)).values for t in tau_arr]
    return RobustnessCurve(taus=tau_arr, values=np.vstack(rows))


def evaluate_resilience(
    mapping: "Mapping | Sequence[int] | np.ndarray",
    etc: np.ndarray,
    schedule: PerturbationSchedule,
    tau: float,
    *,
    n_steps: int = 200,
    tail_fraction: float = 0.1,
    clock: "Clock | None" = None,
) -> ResilienceReport:
    """Temporal resilience of one mapping under a perturbation schedule.

    Runs ``mapping`` through ``schedule`` (:func:`repro.sim.run_schedule`),
    sampling the predicted makespan on ``n_steps`` uniform points of the
    schedule horizon, and summarizes the series (dip, time to recovery,
    degradation integral, steady-state offset, antifragility) into one
    serializable :class:`~repro.resilience.ResilienceReport`.

    Unlike the engine facades this is a pure simulation pass — there is no
    numeric solve, so no ``backend=``/``store=`` keywords.  The report is a
    deterministic function of its arguments; the only randomness lives in
    (seeded) schedule generation.  ``mapping`` may be a
    :class:`~repro.alloc.mapping.Mapping` or a bare assignment vector (the
    machine count is then taken from ``etc``'s column count).
    """
    if not isinstance(mapping, Mapping):
        etc_arr = np.asarray(etc, dtype=float)
        if etc_arr.ndim != 2:
            raise ValidationError(f"etc must be 2-D, got shape {etc_arr.shape}")
        mapping = Mapping(np.asarray(mapping, dtype=np.int64), etc_arr.shape[1])
    return _evaluate_resilience(
        mapping,
        etc,
        schedule,
        tau,
        n_steps=n_steps,
        tail_fraction=tail_fraction,
        clock=clock,
    )
