"""The robustness radius ``r_mu(phi_i, pi_j)`` — paper Equation 1.

:func:`robustness_radius` computes, for one performance feature, the smallest
(in the chosen norm) displacement of the perturbation parameter from its
assumed value that drives the feature onto a boundary of its tolerable
interval.  Dispatch:

- affine impact  -> closed-form hyperplane distance
  (:mod:`repro.core.solvers.analytic`);
- anything else -> constrained numeric minimization
  (:mod:`repro.core.solvers.numeric`).

Radii are *signed*: positive while the origin is strictly robust, zero on a
boundary, negative when the requirement is already violated at the origin
(``require_feasible=True`` turns that case into
:class:`~repro.exceptions.InfeasibleAtOriginError` to match the paper's
assumption of a feasible starting point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.boundary import boundary_relations
from repro.core.config import SolverConfig, resolve_config
from repro.core.features import PerformanceFeature
from repro.core.impact import AffineImpact
from repro.core.norms import Norm, get_norm
from repro.core.perturbation import PerturbationParameter
from repro.core.solvers.analytic import affine_boundary_distance
from repro.core.solvers.discrete import floor_radius
from repro.core.solvers.numeric import boundary_min_norm
from repro.exceptions import InfeasibleAtOriginError, ValidationError
from repro.utils.serialization import decode_array, decode_float, encode_array, encode_float

__all__ = ["RadiusResult", "robustness_radius"]


@dataclass(frozen=True)
class RadiusResult:
    """The robustness radius of one feature against one perturbation parameter."""

    #: feature name (``phi_i``)
    feature: str
    #: perturbation parameter name (``pi_j``)
    parameter: str
    #: signed radius ``r_mu(phi_i, pi_j)``; ``inf`` when no finite bound is
    #: reachable, negative when the origin already violates a bound
    radius: float
    #: minimizing boundary point ``pi*(phi_i)`` (None when radius is infinite)
    boundary_point: np.ndarray | None
    #: which bound binds (``"lower"``/``"upper"``; None when radius infinite)
    binding_bound: str | None
    #: feature value at the origin, ``f_ij(pi_orig)``
    value_at_origin: float
    #: True when the origin satisfies the feature's requirement
    feasible_at_origin: bool
    #: solver used (``"analytic"``/``"numeric"``/``"montecarlo"``/``"failed"``)
    solver: str
    #: False when a numeric solve did not certify its answer (see ``failure``)
    #: or when the radius is a fallback bound rather than an exact solve
    converged: bool = True
    #: why the solve failed or degraded — a reason string from
    #: :data:`repro.core.solvers.numeric.RETRYABLE_REASONS` / the solver's
    #: taxonomy (``"max-iter"``, ``"nan-from-impact"``, ...), or None
    failure: str | None = None

    def __post_init__(self) -> None:
        if self.binding_bound not in (None, "lower", "upper"):
            raise ValidationError(f"bad binding_bound {self.binding_bound!r}")

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "RadiusResult",
            "version": 1,
            "feature": self.feature,
            "parameter": self.parameter,
            "radius": encode_float(self.radius),
            "boundary_point": encode_array(self.boundary_point),
            "binding_bound": self.binding_bound,
            "value_at_origin": encode_float(self.value_at_origin),
            "feasible_at_origin": bool(self.feasible_at_origin),
            "solver": self.solver,
            "converged": bool(self.converged),
            "failure": self.failure,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RadiusResult":
        """Decode a payload written by :meth:`to_dict`; validates the type tag.

        Payloads written before the fault-tolerance fields existed decode with
        the benign defaults (``converged=True``, ``failure=None``).
        """
        if data.get("type") != "RadiusResult":
            raise ValidationError(f"expected type 'RadiusResult', got {data.get('type')!r}")
        return cls(
            feature=str(data["feature"]),
            parameter=str(data["parameter"]),
            radius=decode_float(data["radius"]),
            boundary_point=decode_array(data["boundary_point"]),
            binding_bound=data["binding_bound"],
            value_at_origin=decode_float(data["value_at_origin"]),
            feasible_at_origin=bool(data["feasible_at_origin"]),
            solver=str(data["solver"]),
            converged=bool(data.get("converged", True)),
            failure=data.get("failure"),
        )


def _select_solver(feature: PerformanceFeature, config: SolverConfig) -> str:
    """Resolve the configured solver choice against the feature's impact."""
    affine = isinstance(feature.impact, AffineImpact)
    if config.solver == "auto":
        return "analytic" if affine else "numeric"
    if config.solver == "analytic" and not affine:
        raise ValidationError(
            f"solver='analytic' requires an affine impact, but feature "
            f"{feature.name!r} has {type(feature.impact).__name__}"
        )
    return config.solver


def robustness_radius(
    feature: PerformanceFeature,
    parameter: PerturbationParameter,
    *,
    norm: Norm | str | None = None,
    require_feasible: bool = False,
    apply_floor: bool | None = None,
    config: SolverConfig | dict | None = None,
    solver_options: dict | None = None,
) -> RadiusResult:
    """Compute ``r_mu(phi_i, pi_j)`` per Equation 1.

    Parameters
    ----------
    feature:
        The performance feature ``phi_i`` (with bounds and impact attached).
    parameter:
        The perturbation parameter ``pi_j`` (provides ``pi_orig``).
    norm:
        Perturbation norm; default l2 as in the paper.
    require_feasible:
        Raise :class:`InfeasibleAtOriginError` when the feature's requirement
        is already violated at ``pi_orig`` instead of returning a negative
        radius.
    apply_floor:
        Floor the radius for discrete parameters (Section 3.2).  ``None``
        (default) floors exactly when ``parameter.discrete``.
    config:
        A :class:`~repro.core.config.SolverConfig` (solver choice, numeric
        tolerances).  A plain dict is accepted with a ``DeprecationWarning``.
    solver_options:
        Removed after its deprecation cycle; any value raises
        :class:`~repro.exceptions.ValidationError` with the migration
        recipe (``config=SolverConfig(**solver_options)``).
    """
    cfg = resolve_config(config, solver_options)
    norm = get_norm(norm)
    origin = parameter.origin
    value0 = feature.value_at(origin)
    feasible = feature.bounds.contains(value0)
    if require_feasible and not feasible:
        raise InfeasibleAtOriginError(
            f"feature {feature.name!r} = {value0:g} violates bounds "
            f"[{feature.bounds.lower:g}, {feature.bounds.upper:g}] at the origin"
        )

    rels = boundary_relations(feature)
    best = np.inf
    best_point: np.ndarray | None = None
    best_bound: str | None = None
    solver_name = _select_solver(feature, cfg)
    converged = True
    failure: str | None = None

    for rel in rels:
        if solver_name == "analytic":
            dist, point = affine_boundary_distance(rel, origin, norm)
        else:
            res = boundary_min_norm(rel, origin, norm, **cfg.numeric_kwargs())
            dist, point = res.distance, res.point
            if not res.converged:
                converged = False
                if failure is None:
                    failure = res.reason
        if dist < best:
            best, best_point, best_bound = dist, point, rel.bound

    radius = float(best)
    if apply_floor is None:
        apply_floor = parameter.discrete
    if apply_floor:
        radius = floor_radius(radius)

    return RadiusResult(
        feature=feature.name,
        parameter=parameter.name,
        radius=radius,
        boundary_point=best_point,
        binding_bound=best_bound,
        value_at_origin=value0,
        feasible_at_origin=feasible,
        solver=solver_name,
        converged=converged,
        failure=failure,
    )
