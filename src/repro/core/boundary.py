"""Boundary relationships — the sets ``{pi : f_ij(pi) = beta}`` of FePIA step 4.

Each finite bound of each feature induces one boundary relationship that
separates robust from non-robust operation (paper Section 2, step 4 and
Figure 1).  :func:`boundary_relations` expands a feature into its (one or
two) relationships; each knows how to report whether the origin sits on the
feasible side and which sign a distance to it should carry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import PerformanceFeature
from repro.exceptions import ValidationError

__all__ = ["Bound", "BoundaryRelation", "boundary_relations"]


class Bound:
    """Which end of the tolerable interval a relationship belongs to."""

    LOWER = "lower"
    UPPER = "upper"


@dataclass(frozen=True)
class BoundaryRelation:
    """One equation ``f(pi) = beta`` for a feature's finite bound.

    ``signed_gap(pi)`` is positive while the feature value is strictly inside
    the bound (robust side), zero on the boundary, negative beyond it — so
    dividing by the appropriate dual norm (for affine impacts) yields the
    *signed* robustness radius directly.
    """

    feature: PerformanceFeature
    bound: str  # Bound.LOWER or Bound.UPPER
    beta: float

    def __post_init__(self) -> None:
        if self.bound not in (Bound.LOWER, Bound.UPPER):
            raise ValidationError(f"bound must be 'lower' or 'upper', got {self.bound!r}")
        if not np.isfinite(self.beta):
            raise ValidationError("boundary value beta must be finite")

    @property
    def name(self) -> str:
        op = ">=" if self.bound == Bound.LOWER else "<="
        return f"{self.feature.name} {op} {self.beta:g}"

    def value_gap(self, pi: np.ndarray) -> float:
        """Signed gap in *feature units*: ``beta - f(pi)`` for an upper bound,
        ``f(pi) - beta`` for a lower bound (positive = robust side)."""
        v = self.feature.value_at(pi)
        return (self.beta - v) if self.bound == Bound.UPPER else (v - self.beta)

    def residual(self, pi: np.ndarray) -> float:
        """``f(pi) - beta`` (zero exactly on the boundary)."""
        return self.feature.value_at(pi) - self.beta

    def satisfied_at(self, pi: np.ndarray, *, tol: float = 0.0) -> bool:
        """True when the origin-side inequality holds at ``pi``."""
        return self.value_gap(pi) >= -tol


def boundary_relations(feature: PerformanceFeature) -> list[BoundaryRelation]:
    """Expand ``feature`` into its finite-bound boundary relationships.

    A feature with two finite bounds yields two relationships (the paper's
    ``f = beta_min`` and ``f = beta_max``); an unbounded side yields none.
    """
    rels: list[BoundaryRelation] = []
    if np.isfinite(feature.bounds.lower):
        rels.append(BoundaryRelation(feature, Bound.LOWER, float(feature.bounds.lower)))
    if np.isfinite(feature.bounds.upper):
        rels.append(BoundaryRelation(feature, Bound.UPPER, float(feature.bounds.upper)))
    return rels
