"""The robustness metric ``rho_mu(Phi, pi_j)`` — paper Equation 2.

The metric is the minimum robustness radius over the performance-feature set
``Phi``: the largest collective perturbation (in the chosen norm, in any
direction) that is guaranteed not to violate *any* feature's requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import FeatureSet, PerformanceFeature
from repro.core.norms import Norm
from repro.core.perturbation import PerturbationParameter
from repro.core.radius import RadiusResult, robustness_radius
from repro.core.solvers.discrete import floor_radius
from repro.exceptions import ValidationError

__all__ = ["MetricResult", "robustness_metric"]


@dataclass(frozen=True)
class MetricResult:
    """The robustness metric with its full per-feature breakdown."""

    #: ``rho_mu(Phi, pi_j)`` — min over radii (floored if the parameter is
    #: discrete, per Section 3.2)
    value: float
    #: the unfloored minimum radius
    raw_value: float
    #: per-feature radii, in feature-set order
    radii: tuple[RadiusResult, ...]
    #: name of the binding feature (argmin); None when all radii are infinite
    binding_feature: str | None
    #: parameter name
    parameter: str
    #: True when every feature is feasible at the origin
    feasible_at_origin: bool

    @property
    def boundary_point(self) -> np.ndarray | None:
        """The boundary point ``pi*`` of the binding feature."""
        if self.binding_feature is None:
            return None
        for r in self.radii:
            if r.feature == self.binding_feature:
                return r.boundary_point
        return None  # pragma: no cover - binding feature always in radii

    def radius_of(self, feature_name: str) -> RadiusResult:
        """Look up the radius result of one feature by name."""
        for r in self.radii:
            if r.feature == feature_name:
                return r
        raise KeyError(feature_name)

    def sorted_radii(self) -> list[RadiusResult]:
        """Radii sorted ascending (most critical feature first)."""
        return sorted(self.radii, key=lambda r: r.radius)


def robustness_metric(
    features: FeatureSet | list[PerformanceFeature],
    parameter: PerturbationParameter,
    *,
    norm: Norm | str | None = None,
    require_feasible: bool = False,
    apply_floor: bool | None = None,
    solver_options: dict | None = None,
) -> MetricResult:
    """Compute ``rho_mu(Phi, pi_j) = min_i r_mu(phi_i, pi_j)`` (Equation 2).

    Parameters mirror :func:`repro.core.radius.robustness_radius`; the floor
    for discrete parameters is applied once to the minimum (matching Eq. 11's
    discussion), while the per-feature radii in the result are unfloored so
    the breakdown stays exact.
    """
    if isinstance(features, FeatureSet):
        feats = list(features)
    else:
        feats = list(features)
        if not all(isinstance(f, PerformanceFeature) for f in feats):
            raise ValidationError("features must be PerformanceFeature instances")
    if not feats:
        raise ValidationError("the feature set Phi must be non-empty")

    results = tuple(
        robustness_radius(
            f,
            parameter,
            norm=norm,
            require_feasible=require_feasible,
            apply_floor=False,
            solver_options=solver_options,
        )
        for f in feats
    )
    radii = np.array([r.radius for r in results], dtype=float)
    raw = float(np.min(radii))
    finite_min = int(np.argmin(radii))
    binding = results[finite_min].feature if np.isfinite(raw) or raw == -np.inf else None
    if raw == np.inf:
        binding = None

    if apply_floor is None:
        apply_floor = parameter.discrete
    value = floor_radius(raw) if apply_floor else raw

    return MetricResult(
        value=float(value),
        raw_value=raw,
        radii=results,
        binding_feature=binding,
        parameter=parameter.name,
        feasible_at_origin=all(r.feasible_at_origin for r in results),
    )
