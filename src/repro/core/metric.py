"""The robustness metric ``rho_mu(Phi, pi_j)`` — paper Equation 2.

The metric is the minimum robustness radius over the performance-feature set
``Phi``: the largest collective perturbation (in the chosen norm, in any
direction) that is guaranteed not to violate *any* feature's requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.config import SolverConfig, resolve_config
from repro.core.features import FeatureSet, PerformanceFeature
from repro.core.norms import Norm
from repro.core.perturbation import PerturbationParameter
from repro.core.radius import RadiusResult, robustness_radius
from repro.core.solvers.discrete import floor_radius
from repro.exceptions import ValidationError

__all__ = ["MetricResult", "robustness_metric", "metric_from_radii"]


@dataclass(frozen=True)
class MetricResult:
    """The robustness metric with its full per-feature breakdown."""

    #: ``rho_mu(Phi, pi_j)`` — min over radii (floored if the parameter is
    #: discrete, per Section 3.2)
    value: float
    #: the unfloored minimum radius
    raw_value: float
    #: per-feature radii, in feature-set order
    radii: tuple[RadiusResult, ...]
    #: name of the binding feature (argmin); None when all radii are infinite
    binding_feature: str | None
    #: parameter name
    parameter: str
    #: True when every feature is feasible at the origin
    feasible_at_origin: bool

    @cached_property
    def _radii_by_name(self) -> dict[str, RadiusResult]:
        """Name -> radius-result index (built once, O(1) lookups after)."""
        return {r.feature: r for r in self.radii}

    @property
    def converged(self) -> bool:
        """True when every per-feature radius solve certified its answer."""
        return all(r.converged for r in self.radii)

    @property
    def boundary_point(self) -> np.ndarray | None:
        """The boundary point ``pi*`` of the binding feature."""
        if self.binding_feature is None:
            return None
        binding = self._radii_by_name.get(self.binding_feature)
        return None if binding is None else binding.boundary_point

    def radius_of(self, feature_name: str) -> RadiusResult:
        """Look up the radius result of one feature by name (O(1))."""
        try:
            return self._radii_by_name[feature_name]
        except KeyError:
            raise KeyError(feature_name) from None

    def sorted_radii(self) -> list[RadiusResult]:
        """Radii sorted ascending (most critical feature first)."""
        return sorted(self.radii, key=lambda r: r.radius)

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        from repro.utils.serialization import encode_float

        return {
            "type": "MetricResult",
            "version": 1,
            "value": encode_float(self.value),
            "raw_value": encode_float(self.raw_value),
            "radii": [r.to_dict() for r in self.radii],
            "binding_feature": self.binding_feature,
            "parameter": self.parameter,
            "feasible_at_origin": bool(self.feasible_at_origin),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricResult":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        from repro.utils.serialization import decode_float

        if data.get("type") != "MetricResult":
            raise ValidationError(f"expected type 'MetricResult', got {data.get('type')!r}")
        return cls(
            value=decode_float(data["value"]),
            raw_value=decode_float(data["raw_value"]),
            radii=tuple(RadiusResult.from_dict(r) for r in data["radii"]),
            binding_feature=data["binding_feature"],
            parameter=str(data["parameter"]),
            feasible_at_origin=bool(data["feasible_at_origin"]),
        )


def metric_from_radii(
    results: tuple[RadiusResult, ...] | list[RadiusResult],
    parameter: PerturbationParameter,
    *,
    apply_floor: bool | None = None,
) -> MetricResult:
    """Assemble a :class:`MetricResult` from per-feature radii (Eq. 2's min).

    Shared by :func:`robustness_metric` and the batched
    :class:`~repro.engine.RobustnessEngine` so both branches apply the
    identical argmin / floor / feasibility logic.
    """
    results = tuple(results)
    if not results:
        raise ValidationError("the feature set Phi must be non-empty")
    radii = np.array([r.radius for r in results], dtype=float)
    raw = float(np.min(radii))
    # argmin propagates NaN (a failed/unsolved radius), so when the batch
    # contains a failure the "binding" feature is the failed one and the
    # metric itself is NaN — poisoning the min exactly as unknowability should.
    arg = int(np.argmin(radii))
    binding = results[arg].feature if np.isfinite(raw) or raw == -np.inf or np.isnan(raw) else None
    if raw == np.inf:
        binding = None

    if apply_floor is None:
        apply_floor = parameter.discrete
    value = floor_radius(raw) if apply_floor else raw

    return MetricResult(
        value=float(value),
        raw_value=raw,
        radii=results,
        binding_feature=binding,
        parameter=parameter.name,
        feasible_at_origin=all(r.feasible_at_origin for r in results),
    )


def robustness_metric(
    features: FeatureSet | list[PerformanceFeature],
    parameter: PerturbationParameter,
    *,
    norm: Norm | str | None = None,
    require_feasible: bool = False,
    apply_floor: bool | None = None,
    config: SolverConfig | dict | None = None,
    solver_options: dict | None = None,
) -> MetricResult:
    """Compute ``rho_mu(Phi, pi_j) = min_i r_mu(phi_i, pi_j)`` (Equation 2).

    Parameters mirror :func:`repro.core.radius.robustness_radius`; the floor
    for discrete parameters is applied once to the minimum (matching Eq. 11's
    discussion), while the per-feature radii in the result are unfloored so
    the breakdown stays exact.
    """
    cfg = resolve_config(config, solver_options)
    if isinstance(features, FeatureSet):
        feats = list(features)
    else:
        feats = list(features)
        if not all(isinstance(f, PerformanceFeature) for f in feats):
            raise ValidationError("features must be PerformanceFeature instances")
    if not feats:
        raise ValidationError("the feature set Phi must be non-empty")

    results = tuple(
        robustness_radius(
            f,
            parameter,
            norm=norm,
            require_feasible=require_feasible,
            apply_floor=False,
            config=cfg,
        )
        for f in feats
    )
    return metric_from_radii(results, parameter, apply_floor=apply_floor)
