"""Impact functions — step 3 of the FePIA procedure.

An *impact function* ``f_ij`` relates a perturbation-parameter vector
``pi_j`` to the value of a performance feature ``phi_i``
(``phi_i = f_ij(pi_j)``, Section 2, step 3).  The library represents them as
callables ``f : R^n -> R`` with optional structure:

- :class:`AffineImpact` — ``f(pi) = c . pi + b``.  Both example systems in the
  paper reduce to this form (machine finishing times, Eq. 4; HiPer-D
  computation/communication/latency times with the linear complexity
  functions of Section 4.3).  Affine impacts admit closed-form robustness
  radii via the point-to-hyperplane distance (Eq. 6).
- :class:`CallableImpact` — an arbitrary (ideally convex, see the paper's
  discussion at the end of Section 3.2) function, handled by the numeric
  solver.

Impacts compose: sums and positive scalings of impacts are impacts, and sums
of affine impacts stay affine — which is exactly how a HiPer-D path latency
(Eq. 8) is built from per-application computation and communication times.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import as_1d_float_array, check_finite

__all__ = [
    "ImpactFunction",
    "AffineImpact",
    "CallableImpact",
    "SumImpact",
    "ScaledImpact",
    "as_impact",
    "affine_sum",
]


class ImpactFunction(ABC):
    """Maps a perturbation vector to a scalar feature value."""

    @abstractmethod
    def __call__(self, pi: np.ndarray) -> float:
        """Evaluate the feature value at perturbation-parameter value ``pi``."""

    def gradient(self, pi: np.ndarray) -> np.ndarray | None:
        """Return ``grad f(pi)`` if known analytically, else ``None``.

        Numeric solvers fall back to finite differences when this returns
        ``None``.
        """
        return None

    @property
    def is_affine(self) -> bool:
        """True when the impact is affine (enables the analytic solver)."""
        return False

    # -- composition ------------------------------------------------------
    def __add__(self, other: "ImpactFunction") -> "ImpactFunction":
        if not isinstance(other, ImpactFunction):
            return NotImplemented
        if self.is_affine and other.is_affine:
            return AffineImpact(
                self.coefficients + other.coefficients,  # type: ignore[attr-defined]
                self.intercept + other.intercept,  # type: ignore[attr-defined]
            )
        return SumImpact([self, other])

    def __mul__(self, scalar: float) -> "ImpactFunction":
        if not isinstance(scalar, (int, float, np.floating, np.integer)):
            return NotImplemented
        if self.is_affine:
            return AffineImpact(
                float(scalar) * self.coefficients,  # type: ignore[attr-defined]
                float(scalar) * self.intercept,  # type: ignore[attr-defined]
            )
        return ScaledImpact(self, float(scalar))

    __rmul__ = __mul__


class AffineImpact(ImpactFunction):
    """``f(pi) = coefficients . pi + intercept``.

    Examples
    --------
    A machine finishing time (paper Eq. 4) over the perturbation vector of all
    application computation times is an affine impact whose coefficients are
    the 0/1 indicator of "application mapped to this machine"::

        F_j = AffineImpact(indicator_vector)  # intercept defaults to 0
    """

    def __init__(self, coefficients: np.ndarray | Sequence[float], intercept: float = 0.0) -> None:
        self.coefficients = as_1d_float_array(coefficients, "coefficients", allow_empty=False)
        self.intercept = check_finite(intercept, "intercept")

    @property
    def dimension(self) -> int:
        """Number of perturbation components the impact reads."""
        return self.coefficients.size

    @property
    def is_affine(self) -> bool:
        return True

    def __call__(self, pi: np.ndarray) -> float:
        pi = np.asarray(pi, dtype=float)
        if pi.shape[-1] != self.coefficients.size:
            raise ValidationError(
                f"pi has dimension {pi.shape[-1]}, impact expects {self.coefficients.size}"
            )
        return float(pi @ self.coefficients + self.intercept)

    def batch(self, pis: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over rows of ``pis`` (shape ``(m, n)``)."""
        pis = np.asarray(pis, dtype=float)
        return pis @ self.coefficients + self.intercept

    def gradient(self, pi: np.ndarray) -> np.ndarray:
        return self.coefficients.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AffineImpact(coefficients={self.coefficients!r}, intercept={self.intercept})"


class CallableImpact(ImpactFunction):
    """Wraps an arbitrary scalar function ``f(pi)`` (optionally with gradient).

    The paper assumes such functions are convex so the boundary minimization
    is a convex program (Section 3.2, final paragraph); non-convex functions
    are still accepted and handled with multi-start heuristics, matching the
    paper's "heuristic techniques ... to find near-optimal solutions".
    """

    def __init__(
        self,
        func: Callable[[np.ndarray], float],
        *,
        grad: Callable[[np.ndarray], np.ndarray] | None = None,
        name: str | None = None,
        convex: bool | None = None,
    ) -> None:
        if not callable(func):
            raise ValidationError("func must be callable")
        self._func = func
        self._grad = grad
        self.name = name or getattr(func, "__name__", "impact")
        #: declared convexity (None = unknown); informs solver multi-start count
        self.convex = convex

    def __call__(self, pi: np.ndarray) -> float:
        return float(self._func(np.asarray(pi, dtype=float)))

    def gradient(self, pi: np.ndarray) -> np.ndarray | None:
        if self._grad is None:
            return None
        g = self._grad(np.asarray(pi, dtype=float))
        if g is None:  # a wrapped gradient may itself be partial
            return None
        return np.asarray(g, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CallableImpact({self.name})"


class SumImpact(ImpactFunction):
    """Sum of impact functions (used when terms are not all affine)."""

    def __init__(self, terms: Sequence[ImpactFunction]) -> None:
        terms = list(terms)
        if not terms:
            raise ValidationError("SumImpact requires at least one term")
        for t in terms:
            if not isinstance(t, ImpactFunction):
                raise ValidationError(f"SumImpact terms must be ImpactFunction, got {type(t)}")
        self.terms = terms

    def __call__(self, pi: np.ndarray) -> float:
        return float(sum(t(pi) for t in self.terms))

    def gradient(self, pi: np.ndarray) -> np.ndarray | None:
        grads = [t.gradient(pi) for t in self.terms]
        if any(g is None for g in grads):
            return None
        return np.sum(grads, axis=0)


class ScaledImpact(ImpactFunction):
    """``scalar * f(pi)`` for a non-affine ``f``."""

    def __init__(self, inner: ImpactFunction, scalar: float) -> None:
        if not isinstance(inner, ImpactFunction):
            raise ValidationError("inner must be an ImpactFunction")
        self.inner = inner
        self.scalar = check_finite(scalar, "scalar")

    def __call__(self, pi: np.ndarray) -> float:
        return self.scalar * self.inner(pi)

    def gradient(self, pi: np.ndarray) -> np.ndarray | None:
        g = self.inner.gradient(pi)
        return None if g is None else self.scalar * g


def as_impact(obj: ImpactFunction | Callable[[np.ndarray], float] | np.ndarray | Sequence[float]) -> ImpactFunction:
    """Coerce ``obj`` to an :class:`ImpactFunction`.

    Accepts an existing impact, a 1-D array of affine coefficients, or a bare
    callable.
    """
    if isinstance(obj, ImpactFunction):
        return obj
    if callable(obj):
        return CallableImpact(obj)
    return AffineImpact(obj)


def affine_sum(impacts: Sequence[AffineImpact]) -> AffineImpact:
    """Sum a sequence of affine impacts into a single affine impact.

    Vectorized building block for path latencies (paper Eq. 8): the latency
    coefficients are the sum of the member computation/communication
    coefficient vectors.
    """
    impacts = list(impacts)
    if not impacts:
        raise ValidationError("affine_sum requires at least one impact")
    coeff = np.zeros_like(impacts[0].coefficients)
    intercept = 0.0
    for imp in impacts:
        if not isinstance(imp, AffineImpact):
            raise ValidationError("affine_sum requires AffineImpact terms")
        if imp.coefficients.shape != coeff.shape:
            raise ValidationError("affine_sum impacts must share a dimension")
        coeff = coeff + imp.coefficients
        intercept += imp.intercept
    return AffineImpact(coeff, intercept)
