"""FePIA — the paper's four-step derivation procedure as an explicit API.

The FePIA procedure (Section 2) derives a robustness metric for an arbitrary
system:

1. **Fe** — identify the performance features ``Phi`` and their tolerable
   variation ``<beta_min, beta_max>``;
2. **P**  — identify the perturbation parameter ``pi`` and its assumed value
   ``pi_orig``;
3. **I**  — identify the impact of ``pi`` on each feature
   (``phi_i = f_ij(pi)``);
4. **A**  — analyze: find the boundary relationships and the smallest
   perturbation reaching any of them (Eqs. 1-2).

:class:`FePIAAnalysis` is a builder that walks these steps and produces a
:class:`~repro.core.metric.MetricResult`; the worked systems in
:mod:`repro.alloc` and :mod:`repro.hiperd` are implemented on top of it (and
cross-checked against their closed forms in the test suite).

Example
-------
The paper's running makespan example (two machines, tolerance 30%)::

    analysis = (
        FePIAAnalysis("makespan-robustness")
        .with_perturbation("C", origin=[5.0, 3.0, 4.0])   # step 2: ETC values
        .add_feature("F_0", impact=[1, 0, 1], upper=1.3 * 9.0)  # steps 1+3
        .add_feature("F_1", impact=[0, 1, 0], upper=1.3 * 9.0)
    )
    result = analysis.analyze()          # step 4
    result.value                         # rho_mu(Phi, C)
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SolverConfig, resolve_config
from repro.core.features import FeatureBounds, FeatureSet, PerformanceFeature
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro.core.impact import ImpactFunction, as_impact
from repro.core.metric import MetricResult, robustness_metric
from repro.core.norms import Norm
from repro.core.perturbation import PerturbationParameter
from repro.exceptions import ValidationError

if TYPE_CHECKING:
    from repro.core.boundary import BoundaryRelation

__all__ = ["FePIAAnalysis"]


class FePIAAnalysis:
    """Builder for a robustness analysis following the FePIA steps.

    The builder is order-tolerant (features may be added before or after the
    perturbation parameter is set) but :meth:`analyze` insists that both
    steps were completed and that every impact function matches the
    parameter's dimension where that is checkable.
    """

    def __init__(self, name: str = "analysis") -> None:
        self.name = name
        self._features = FeatureSet()
        self._parameter: PerturbationParameter | None = None

    # -- step 2 -----------------------------------------------------------
    def with_perturbation(
        self,
        name: str,
        origin: np.ndarray | Sequence[float] | float,
        *,
        discrete: bool = False,
        component_names: list[str] | None = None,
    ) -> "FePIAAnalysis":
        """Declare the perturbation parameter ``pi`` and its assumed value."""
        if self._parameter is not None:
            raise ValidationError(
                "perturbation parameter already set; single-parameter analyses "
                "only (the multi-parameter case is discussed in [1])"
            )
        self._parameter = PerturbationParameter(
            name=name, origin=origin, discrete=discrete, component_names=component_names
        )
        return self

    # -- steps 1 + 3 ------------------------------------------------------
    def add_feature(
        self,
        name: str,
        impact: ImpactFunction | Callable[[np.ndarray], float] | np.ndarray | Sequence[float],
        *,
        lower: float = -np.inf,
        upper: float = np.inf,
        meta: dict | None = None,
    ) -> "FePIAAnalysis":
        """Declare one performance feature: its tolerable variation (step 1)
        and its impact function (step 3)."""
        feature = PerformanceFeature(
            name=name,
            impact=as_impact(impact),
            bounds=FeatureBounds(lower, upper),
            meta=meta or {},
        )
        self._features.add(feature)
        return self

    # -- introspection ----------------------------------------------------
    @property
    def features(self) -> FeatureSet:
        """The feature set ``Phi`` assembled so far."""
        return self._features

    @property
    def parameter(self) -> PerturbationParameter:
        """The perturbation parameter (raises if step 2 not done)."""
        if self._parameter is None:
            raise ValidationError("perturbation parameter not set (FePIA step 2)")
        return self._parameter

    def boundary_relationships(self) -> list[BoundaryRelation]:
        """The step-4 boundary relationship set (for inspection/printing)."""
        from repro.core.boundary import boundary_relations

        rels: list[BoundaryRelation] = []
        for f in self._features:
            rels.extend(boundary_relations(f))
        return rels

    # -- step 4 -----------------------------------------------------------
    def analyze(
        self,
        *,
        norm: Norm | str | None = None,
        require_feasible: bool = False,
        apply_floor: bool | None = None,
        config: SolverConfig | dict | None = None,
        solver_options: dict | None = None,
    ) -> MetricResult:
        """Run the analysis step and return the robustness metric.

        ``config`` takes a :class:`~repro.core.config.SolverConfig`; the
        removed ``solver_options`` keyword raises ``ValidationError``.
        """
        cfg = resolve_config(config, solver_options)
        parameter = self.parameter
        if len(self._features) == 0:
            raise ValidationError("no performance features declared (FePIA step 1)")
        for f in self._features:
            dim = getattr(f.impact, "dimension", None)
            if dim is not None and dim != parameter.dimension:
                raise ValidationError(
                    f"feature {f.name!r} impact has dimension {dim}, parameter "
                    f"{parameter.name!r} has dimension {parameter.dimension}"
                )
        return robustness_metric(
            self._features,
            parameter,
            norm=norm,
            require_feasible=require_feasible,
            apply_floor=apply_floor,
            config=cfg,
        )
