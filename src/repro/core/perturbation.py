"""Perturbation parameters — FePIA step 2.

A *perturbation parameter* ``pi_j`` is a vector of uncertain system or
environment quantities (paper Section 2, step 2): e.g. the vector ``C`` of
actual application computation times (Section 3.1) or the sensor-load vector
``lambda`` (Section 3.2).  The analysis is anchored at the assumed operating
point ``pi_orig``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import as_1d_float_array

__all__ = ["PerturbationParameter"]


@dataclass
class PerturbationParameter:
    """The uncertain vector ``pi_j`` with its assumed value ``pi_orig``.

    Parameters
    ----------
    name:
        Identifier (``"C"`` for computation times, ``"lambda"`` for sensor
        loads, ...).
    origin:
        The assumed operating point ``pi_orig`` — estimated computation times
        / initial sensor loads.
    discrete:
        True when the parameter only takes integer values (e.g. objects per
        data set).  The paper treats such parameters continuously and floors
        the resulting metric (Section 3.2, discussion after Eq. 11); solvers
        honor this flag the same way, and
        :mod:`repro.core.solvers.discrete` offers the bracketing alternative
        of step 4's parenthetical.
    component_names:
        Optional per-component labels used in reports.
    """

    name: str
    origin: np.ndarray
    discrete: bool = False
    component_names: list[str] | None = None
    #: free-form metadata carried into results
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("perturbation parameter name must be non-empty")
        self.origin = as_1d_float_array(self.origin, "origin")
        if self.component_names is not None:
            if len(self.component_names) != self.origin.size:
                raise ValidationError(
                    f"component_names has {len(self.component_names)} entries for a "
                    f"{self.origin.size}-dimensional parameter"
                )
            self.component_names = [str(c) for c in self.component_names]

    @property
    def dimension(self) -> int:
        """Number of components ``n_pi`` of the parameter vector."""
        return self.origin.size

    def displacement(self, pi: np.ndarray) -> np.ndarray:
        """``pi - pi_orig`` as a float array (validates dimension)."""
        pi = np.asarray(pi, dtype=float)
        if pi.shape != self.origin.shape:
            raise ValidationError(
                f"pi has shape {pi.shape}, expected {self.origin.shape}"
            )
        return pi - self.origin

    def label(self, r: int) -> str:
        """Human-readable label of component ``r``."""
        if self.component_names is not None:
            return self.component_names[r]
        return f"{self.name}[{r}]"
