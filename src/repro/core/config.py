"""Typed solver configuration — the replacement for ``solver_options`` dicts.

Every analysis entry point (:func:`~repro.core.radius.robustness_radius`,
:func:`~repro.core.metric.robustness_metric`, :class:`~repro.core.fepia.
FePIAAnalysis`, the system-specific ``robustness`` functions and the batched
:class:`~repro.engine.RobustnessEngine`) takes a ``config`` keyword holding a
:class:`SolverConfig`: a frozen, validated bundle of solver choice,
numeric-solver tolerances, process-pool sizing and cache sizing.

The historical ``solver_options: dict`` (forwarded blindly to the numeric
solver) has completed its deprecation cycle: the ``solver_options=`` keyword
now raises :class:`~repro.exceptions.ValidationError` with the migration
recipe, while a plain dict passed to ``config=`` is still converted (one
release behind on the same path) under a :class:`DeprecationWarning`.
:func:`resolve_config` implements both shims in one place; the lint rule
R009 flags internal call sites before they reach either.
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = ["SolverConfig", "DEFAULT_CONFIG", "resolve_config"]

#: valid values of :attr:`SolverConfig.solver`
_SOLVERS = ("auto", "analytic", "numeric")


@dataclass(frozen=True)
class SolverConfig:
    """Immutable configuration of the robustness solvers.

    Parameters
    ----------
    solver:
        ``"auto"`` (closed form for affine impacts, numeric otherwise),
        ``"analytic"`` (force the closed form; affine impacts only) or
        ``"numeric"`` (force the SLSQP boundary minimization even for affine
        impacts — useful for cross-checks).
    n_starts:
        Number of random multi-start directions of the numeric solver, in
        addition to its gradient warm start.
    seed:
        RNG seed of the multi-start directions (deterministic by default so
        solves are reproducible and cacheable).
    maxiter:
        Iteration cap of each SLSQP solve.
    ftol:
        Objective tolerance of each SLSQP solve.
    pool_size:
        Worker processes used by :class:`~repro.engine.RobustnessEngine` to
        fan out numeric solves (``0`` = solve in-process, no pool).
    chunk_size:
        Historical chunked-map knob.  The fault-isolated solve layer submits
        one future per task (so a crashed worker or hung solve poisons only
        that task), which makes chunking moot; the field is kept so existing
        configs stay valid, and is ignored by the per-task path.
    cache_size:
        Entries of the engine's LRU boundary-solve cache (``0`` disables
        caching).
    task_timeout:
        Per-attempt wall-clock deadline, in seconds, of one pooled radius
        solve (``None`` = no deadline).  A task that overruns it is abandoned
        (its worker is hung), recorded as a :class:`~repro.exceptions.
        SolverTimeoutError`, and retried with a doubled deadline per the
        engine's :class:`~repro.engine.fault.RetryPolicy`.  Only enforceable
        when a pool is in use — in-process solves cannot be preempted.
    max_retries:
        Extra attempts after the first failed one (``0`` = fail immediately).
        Each retry escalates the solve (more multi-starts, tighter ``ftol``)
        before the engine falls back per ``on_error``.
    backoff_base:
        Base delay, in seconds, of the exponential backoff between retry
        attempts (doubled per attempt, with deterministic seeded jitter).
    """

    solver: str = "auto"
    n_starts: int = 4
    seed: int | None = 0
    maxiter: int = 200
    ftol: float = 1e-12
    pool_size: int = 0
    chunk_size: int | None = None
    cache_size: int = 256
    task_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05

    def __post_init__(self) -> None:
        if self.solver not in _SOLVERS:
            raise ValidationError(
                f"solver must be one of {_SOLVERS}, got {self.solver!r}"
            )
        if int(self.n_starts) < 0:
            raise ValidationError("n_starts must be >= 0")
        if int(self.maxiter) <= 0:
            raise ValidationError("maxiter must be >= 1")
        if float(self.ftol) <= 0:
            raise ValidationError("ftol must be > 0")
        if int(self.pool_size) < 0:
            raise ValidationError("pool_size must be >= 0")
        if self.chunk_size is not None and int(self.chunk_size) <= 0:
            raise ValidationError("chunk_size must be >= 1 (or None)")
        if int(self.cache_size) < 0:
            raise ValidationError("cache_size must be >= 0")
        if self.task_timeout is not None:
            timeout = float(self.task_timeout)
            if math.isnan(timeout) or timeout <= 0:
                raise ValidationError(
                    f"task_timeout must be > 0 seconds (or None), got {self.task_timeout!r}"
                )
        if int(self.max_retries) < 0:
            raise ValidationError("max_retries must be >= 0")
        backoff = float(self.backoff_base)
        if math.isnan(backoff) or backoff < 0 or math.isinf(backoff):
            raise ValidationError(
                f"backoff_base must be a finite number >= 0, got {self.backoff_base!r}"
            )

    def numeric_kwargs(self) -> dict:
        """Keyword arguments for :func:`repro.core.solvers.numeric.boundary_min_norm`."""
        return {
            "n_starts": self.n_starts,
            "seed": self.seed,
            "maxiter": self.maxiter,
            "ftol": self.ftol,
        }

    def replace(self, **changes: object) -> "SolverConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_options(cls, options: dict) -> "SolverConfig":
        """Build a config from a legacy ``solver_options`` dict.

        Keys must be :class:`SolverConfig` field names; anything else (which
        the old code would have forwarded blindly to the numeric solver and
        crashed on) raises :class:`~repro.exceptions.ValidationError`.
        """
        if not isinstance(options, dict):
            raise ValidationError(
                f"solver options must be a dict, got {type(options).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(options) - known)
        if unknown:
            raise ValidationError(
                f"unknown solver option(s) {unknown}; valid keys: {sorted(known)}"
            )
        return cls(**options)


#: the shared default configuration (module-level so identity checks are cheap)
DEFAULT_CONFIG = SolverConfig()

_DICT_MSG = (
    "passing a plain dict of solver options is deprecated; "
    "pass config=SolverConfig(...) instead"
)
_KWARG_MSG = (
    "the solver_options= keyword was removed after its deprecation cycle; "
    "migrate with config=SolverConfig(**solver_options) — "
    "see the migration table in docs/API.md"
)


def resolve_config(
    config: "SolverConfig | dict | None" = None,
    solver_options: dict | None = None,
    *,
    stacklevel: int = 3,
) -> SolverConfig:
    """Normalize the ``config`` / legacy ``solver_options`` pair to a config.

    A :class:`SolverConfig` passes through; ``None`` yields
    :data:`DEFAULT_CONFIG`; a plain dict via ``config=`` is converted with
    :meth:`SolverConfig.from_options` after emitting a
    :class:`DeprecationWarning`.  The ``solver_options=`` keyword completed
    its deprecation cycle and now raises
    :class:`~repro.exceptions.ValidationError` with the migration recipe.
    """
    if solver_options is not None:
        raise ValidationError(_KWARG_MSG)
    if config is None:
        return DEFAULT_CONFIG
    if isinstance(config, SolverConfig):
        return config
    if isinstance(config, dict):
        warnings.warn(_DICT_MSG, DeprecationWarning, stacklevel=stacklevel)
        return SolverConfig.from_options(config)
    raise ValidationError(
        f"config must be a SolverConfig, dict or None, got {type(config).__name__}"
    )
