"""Monte-Carlo estimation and empirical validation of robustness radii.

The robustness radius has an operational meaning (Section 2): *no*
perturbation of norm at most ``r`` may push any feature outside its bounds.
This module provides

- :func:`estimate_radius_mc` — a sampling estimator of the radius: shoot rays
  in random directions from ``pi_orig``, bisect each ray for its boundary
  crossing, and take the minimum crossing distance.  For star-shaped robust
  regions (all convex regions qualify) this converges to the true radius from
  above as the number of directions grows.
- :func:`validate_radius` — empirical verification that a *claimed* radius is
  sound (no sampled perturbation strictly inside the ball violates any
  feature) and tight (some perturbation of norm ``r (1 + tol)`` violates, if
  a violating boundary point is supplied or can be found by ray search).

These are the basis of the E4 validation benchmark (see DESIGN.md): the
closed-form Eq. 6 radii are checked against brute-force perturbation
sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import FeatureSet
from repro.core.norms import L2Norm, Norm, get_norm
from repro.exceptions import SolverError, ValidationError
from repro.utils.rng import ensure_rng

__all__ = ["estimate_radius_mc", "validate_radius", "RadiusValidation"]


def _ray_crossing(
    features: FeatureSet,
    origin: np.ndarray,
    direction: np.ndarray,
    *,
    max_scale: float,
    tol: float,
) -> float:
    """Distance along ``direction`` (unit norm) at which some feature first
    leaves its bounds; ``inf`` if none within ``max_scale``."""
    lo, hi = 0.0, None
    # Geometric expansion to find a violating scale.
    scale = 1.0
    while scale <= max_scale:
        if not features.all_satisfied_at(origin + scale * direction):
            hi = scale
            break
        lo = scale
        scale *= 2.0
    if hi is None:
        return np.inf
    # Bisection between the last satisfied and first violated scales.
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if features.all_satisfied_at(origin + mid * direction):
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def estimate_radius_mc(
    features: FeatureSet,
    origin: np.ndarray,
    *,
    n_directions: int = 256,
    norm: Norm | str | None = None,
    seed: int | np.random.Generator | None = None,
    max_scale: float = 1e9,
    tol: float = 1e-9,
) -> float:
    """Estimate the robustness radius by random ray search.

    Always an *over*-estimate of the true radius for star-shaped robust
    regions (it can only miss the worst direction, never find a
    better-than-possible one), so tests assert ``estimate >= exact`` and
    convergence from above.
    """
    norm = get_norm(norm)
    origin = np.asarray(origin, dtype=float)
    if origin.ndim != 1:
        raise ValidationError("origin must be a vector")
    if not features.all_satisfied_at(origin):
        raise ValidationError(
            "origin violates the robustness requirement; MC estimation assumes "
            "a feasible starting point"
        )
    rng = ensure_rng(seed)
    best = np.inf
    for _ in range(n_directions):
        d = rng.standard_normal(origin.size)
        n = np.linalg.norm(d)
        if n == 0:
            continue
        d = d / n
        # Re-normalize in the requested norm so the crossing scale is the
        # perturbation size in that norm.
        size = norm(d)
        if size == 0:
            continue
        d = d / size
        crossing = _ray_crossing(features, origin, d, max_scale=max_scale, tol=tol)
        best = min(best, crossing)
    if best is np.inf and n_directions > 0:
        return np.inf
    return float(best)


@dataclass(frozen=True)
class RadiusValidation:
    """Report of an empirical radius validation."""

    radius: float
    n_samples: int
    #: number of sampled interior perturbations (all must be violation-free)
    interior_violations: int
    #: smallest ray-crossing distance found (>= radius for a sound radius)
    min_crossing: float
    sound: bool
    tight: bool


def validate_radius(
    features: FeatureSet,
    origin: np.ndarray,
    radius: float,
    *,
    n_samples: int = 512,
    norm: Norm | str | None = None,
    seed: int | np.random.Generator | None = None,
    slack: float = 1e-9,
    tightness_factor: float = 1.05,
    boundary_point: np.ndarray | None = None,
) -> RadiusValidation:
    """Empirically validate a claimed robustness radius.

    Soundness: samples ``n_samples`` perturbations with norm strictly below
    ``radius`` — none may violate any feature.  Tightness: either a known
    ``boundary_point`` (the minimizing ``pi*`` from a solver) demonstrates a
    crossing at distance ``~radius`` along its direction, or ray search must
    find a crossing at distance at most ``radius * tightness_factor`` in some
    sampled direction (so the claimed radius is not a gross under-estimate —
    with random directions only, this may require many samples in high
    dimension).
    """
    norm = get_norm(norm)
    origin = np.asarray(origin, dtype=float)
    radius = float(radius)
    if radius < 0 or not np.isfinite(radius):
        raise ValidationError(f"radius must be finite and non-negative, got {radius}")
    rng = ensure_rng(seed)
    interior_violations = 0
    min_crossing = np.inf
    if boundary_point is not None:
        bp = np.asarray(boundary_point, dtype=float)
        disp = bp - origin
        size = norm(disp)
        if size > 0:
            direction = disp / size
            min_crossing = _ray_crossing(
                features, origin, direction, max_scale=max(size * 16.0, 1.0), tol=1e-9
            )
    for _ in range(n_samples):
        d = rng.standard_normal(origin.size)
        nl2 = np.linalg.norm(d)
        if nl2 == 0:
            continue
        d = d / nl2
        size = norm(d)
        if size == 0:
            continue
        d = d / size
        # Soundness probe strictly inside the ball (random magnitude so the
        # whole interior is exercised, not just the shell).
        mag = radius * (1.0 - slack) * rng.uniform(0.0, 1.0) ** (1.0 / max(origin.size, 1))
        if not features.all_satisfied_at(origin + mag * d):
            interior_violations += 1
        # Tightness probe: crossing distance along this direction.
        crossing = _ray_crossing(
            features, origin, d, max_scale=max(radius * 16.0, 1.0), tol=1e-9
        )
        min_crossing = min(min_crossing, crossing)
    sound = interior_violations == 0
    tight = bool(min_crossing <= radius * tightness_factor) if np.isfinite(radius) else True
    return RadiusValidation(
        radius=radius,
        n_samples=n_samples,
        interior_violations=interior_violations,
        min_crossing=float(min_crossing),
        sound=sound,
        tight=tight,
    )
