"""Handling of discrete perturbation parameters.

Step 4 of the FePIA procedure notes that when ``pi_j`` is discrete, "the
boundary values correspond to the closest values that bracket each boundary
relationship".  Section 3.2 uses the pragmatic alternative for the sensor
loads: treat the parameter continuously and take the floor of the final
metric (the number of possible discrete values is infinite).  Both tools are
provided here:

- :func:`floor_radius` — the Section 3.2 flooring of a continuous radius.
- :func:`bracket_boundary_1d` — the step-4 bracketing for a scalar discrete
  parameter: the two closest integers around the boundary crossing.
- :func:`lattice_radius` — exact smallest-integer-displacement radius for an
  affine constraint on a small integer lattice (exhaustive ball search),
  useful for validating the flooring approximation in tests.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable

import numpy as np

from repro.core.impact import AffineImpact
from repro.exceptions import SolverError, ValidationError

__all__ = ["floor_radius", "bracket_boundary_1d", "lattice_radius"]


def floor_radius(radius: float) -> float:
    """Floor a continuous radius for an integer-valued parameter.

    Follows Section 3.2: "because rho should not have fractional values, one
    can take the floor of the right hand side in Equation 11."  Negative radii
    (already-violated bounds) are floored toward zero magnitude (ceil) so the
    reported violation distance is not exaggerated; infinities pass through.
    """
    radius = float(radius)
    if not np.isfinite(radius):
        return radius
    # Snap values within float-roundoff of an integer before flooring, so a
    # radius that is mathematically integral (common for calibrated systems)
    # is not knocked down by an epsilon.
    nearest = round(radius)
    if abs(radius - nearest) <= 1e-9 * max(1.0, abs(radius)):
        radius = float(nearest)
    return float(math.floor(radius)) if radius >= 0 else float(math.ceil(radius))


def bracket_boundary_1d(
    func: Callable[[float], float],
    beta: float,
    origin: int,
    *,
    direction: int = 1,
    max_steps: int = 10_000_000,
) -> tuple[int, int]:
    """Bracket the boundary ``func(x) = beta`` with consecutive integers.

    Walks from ``origin`` in ``direction`` (+1/-1) until ``func`` crosses
    ``beta``; returns ``(inside, outside)`` — the last integer on the origin
    side of the boundary and the first one beyond it.  Uses geometric stride
    doubling followed by bisection, so the cost is logarithmic in the
    crossing distance.

    Raises
    ------
    SolverError
        If no crossing is found within ``max_steps`` of the origin.
    """
    if direction not in (1, -1):
        raise ValidationError("direction must be +1 or -1")
    origin = int(origin)
    f0 = float(func(origin))
    side0 = f0 <= beta
    # Geometric search for a sign change.
    stride = 1
    prev = origin
    while stride <= max_steps:
        cand = origin + direction * stride
        if (float(func(cand)) <= beta) != side0:
            break
        prev = cand
        stride *= 2
    else:
        raise SolverError(
            f"no boundary crossing within {max_steps} steps from {origin} "
            f"in direction {direction:+d}"
        )
    lo, hi = prev, origin + direction * stride
    # Bisect (lo on origin side, hi beyond).
    while abs(hi - lo) > 1:
        mid = (lo + hi) // 2
        if (float(func(mid)) <= beta) == side0:
            lo = mid
        else:
            hi = mid
    return lo, hi


def lattice_radius(
    impact: AffineImpact,
    beta: float,
    origin: np.ndarray,
    *,
    max_radius: float,
) -> float:
    """Exact minimum l2 length of an *integer* displacement ``delta`` with
    ``impact(origin + delta)`` beyond ``beta`` (upper-bound sense).

    Exhaustively searches the integer ball of radius ``max_radius`` (suitable
    for low dimensions / small radii; used to validate :func:`floor_radius`
    against ground truth in tests).  Returns ``inf`` when no such
    displacement exists within the ball.
    """
    origin = np.asarray(origin, dtype=float)
    n = origin.size
    if n > 4:
        raise ValidationError("lattice_radius is exhaustive; use dimension <= 4")
    if not np.isfinite(max_radius) or max_radius < 0:
        raise ValidationError("max_radius must be finite and non-negative")
    r_int = int(math.floor(max_radius))
    best = np.inf
    rng = range(-r_int, r_int + 1)
    for delta in itertools.product(rng, repeat=n):
        d = np.asarray(delta, dtype=float)
        length = float(np.linalg.norm(d))
        if length > max_radius or length >= best or length == 0.0:
            continue
        if impact(origin + d) > beta:
            best = length
    return best
