"""Closed-form robustness radii for affine impact functions.

For an affine impact ``f(pi) = c . pi + b`` the boundary set
``{pi : f(pi) = beta}`` is the hyperplane ``{pi : c . pi = beta - b}``, and
the minimum-norm displacement from ``pi_orig`` to it is the classic
point-to-plane distance (paper Eq. 5 -> Eq. 6, citing [23]):

    distance = (beta - f(pi_orig)) / ||c||_*      (signed)

where ``||.||_*`` is the dual of the perturbation norm (for the paper's l2,
the dual is l2 itself, recovering Eq. 6's ``1/sqrt(#applications)`` factor
for 0/1 coefficient vectors).  The sign is positive while the origin is on
the robust side of the bound, negative once the bound is already violated —
so the metric "degenerates gracefully" for infeasible mappings instead of
raising.
"""

from __future__ import annotations

import numpy as np

from repro.core.boundary import Bound, BoundaryRelation
from repro.core.features import PerformanceFeature
from repro.core.impact import AffineImpact
from repro.core.norms import Norm, get_norm
from repro.exceptions import ValidationError

__all__ = ["affine_boundary_distance", "affine_radius", "batch_hyperplane_distances"]


def affine_boundary_distance(
    relation: BoundaryRelation,
    origin: np.ndarray,
    norm: Norm | str | None = None,
) -> tuple[float, np.ndarray | None]:
    """Signed distance from ``origin`` to one affine boundary relationship.

    Returns ``(distance, boundary_point)``.  ``distance`` is signed as
    described in the module docstring; ``boundary_point`` is the minimizing
    ``pi*`` on the boundary (``None`` when the boundary set is empty, i.e.
    the impact is constant and never meets ``beta`` — distance ``+/-inf``).
    """
    impact = relation.feature.impact
    if not isinstance(impact, AffineImpact):
        raise ValidationError(
            "analytic solver requires an AffineImpact; use boundary_min_norm instead"
        )
    norm = get_norm(norm)
    origin = np.asarray(origin, dtype=float)
    c = impact.coefficients
    # Hyperplane c . pi = beta - intercept
    d = relation.beta - impact.intercept
    dual = norm.dual(c)
    gap = relation.value_gap(origin)  # positive on the robust side
    if dual == 0.0:
        # Constant impact: boundary set empty unless the constant equals beta.
        if relation.residual(origin) == 0.0:
            return 0.0, origin.copy()
        return (np.inf if gap > 0 else -np.inf), None
    distance = gap / dual
    point = norm.closest_point_on_hyperplane(c, d, origin)
    return float(distance), point


def affine_radius(
    feature: PerformanceFeature,
    origin: np.ndarray,
    norm: Norm | str | None = None,
) -> tuple[float, np.ndarray | None, str | None]:
    """Signed robustness radius of an affine-impact feature (Eq. 1, affine case).

    Takes the minimum signed distance over the feature's finite bounds.

    Returns ``(radius, boundary_point, binding_bound)`` where
    ``binding_bound`` is ``"lower"``/``"upper"`` (``None`` when the feature
    has no finite bound that its impact can reach — radius ``inf``).
    """
    from repro.core.boundary import boundary_relations

    best: float = np.inf
    best_point: np.ndarray | None = None
    best_bound: str | None = None
    for rel in boundary_relations(feature):
        dist, point = affine_boundary_distance(rel, origin, norm)
        if dist < best:
            best, best_point, best_bound = dist, point, rel.bound
    if best_bound is None and best == np.inf:
        return np.inf, None, None
    return float(best), best_point, best_bound


def batch_hyperplane_distances(
    coefficients: np.ndarray,
    limits: np.ndarray,
    origin: np.ndarray,
) -> np.ndarray:
    """Vectorized signed l2 distances for many upper-bound hyperplanes.

    Parameters
    ----------
    coefficients:
        Array of shape ``(m, n)`` — row ``k`` holds the affine coefficients of
        constraint ``k`` (intercepts must already be folded into ``limits``).
    limits:
        Length-``m`` upper bounds ``beta_k``.
    origin:
        The operating point ``pi_orig`` (length ``n``).

    Returns
    -------
    Signed distances of shape ``(m,)``; rows with all-zero coefficients give
    ``+inf`` (never-violated constant constraints) or ``-inf`` (constant
    already above its limit).

    This is the hot path of the 1000-mapping experiments: one matrix-vector
    product instead of ``m`` scalar solves.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    limits = np.asarray(limits, dtype=float)
    origin = np.asarray(origin, dtype=float)
    if coefficients.ndim != 2:
        raise ValidationError("coefficients must be 2-D (m, n)")
    if limits.shape != (coefficients.shape[0],):
        raise ValidationError("limits must have one entry per coefficient row")
    if origin.shape != (coefficients.shape[1],):
        raise ValidationError("origin dimension must match coefficient columns")
    gaps = limits - coefficients @ origin
    norms = np.linalg.norm(coefficients, axis=1)
    degenerate = np.where(gaps > 0, np.inf, np.where(gaps < 0, -np.inf, 0.0))
    dists = np.where(norms > 0, gaps / np.where(norms > 0, norms, 1.0), degenerate)
    return dists
