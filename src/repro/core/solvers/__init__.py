"""Boundary-minimization solvers behind the robustness radius (Eq. 1).

- :mod:`~repro.core.solvers.analytic` — closed-form radii for affine impacts
  (point-to-hyperplane distance, paper Eq. 6).
- :mod:`~repro.core.solvers.numeric` — constrained minimization for general
  (ideally convex) impacts via SLSQP with multi-start.
- :mod:`~repro.core.solvers.discrete` — discrete perturbation parameters
  (flooring per Section 3.2, and the bracketing of step 4's parenthetical).
- :mod:`~repro.core.solvers.montecarlo` — sampling-based radius estimation and
  empirical validation of a claimed radius.
"""

from repro.core.solvers.analytic import affine_boundary_distance, affine_radius
from repro.core.solvers.numeric import boundary_min_norm
from repro.core.solvers.discrete import bracket_boundary_1d, floor_radius
from repro.core.solvers.montecarlo import estimate_radius_mc, validate_radius

__all__ = [
    "affine_boundary_distance",
    "affine_radius",
    "boundary_min_norm",
    "bracket_boundary_1d",
    "floor_radius",
    "estimate_radius_mc",
    "validate_radius",
]
