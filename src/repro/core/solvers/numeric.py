"""Numeric boundary minimization for general impact functions.

Implements Eq. 1 for non-affine impacts:

    r = min ||pi - pi_orig||   subject to   f(pi) = beta.

The paper notes (end of Section 3.2) that when ``f`` is convex this is a
convex program solvable to global optimality, and that otherwise "heuristic
techniques can be used to find near-optimal solutions".  We use SLSQP on the
smooth surrogate objective ``||pi - pi_orig||_2^2`` with the equality
constraint, warm-started from

- a gradient step from the origin onto the linearized boundary (the affine
  answer, exact when ``f`` is affine), and
- several random directions (multi-start) to hedge against non-convexity.

For non-l2 norms the true objective (which may be non-smooth, e.g. l1/linf)
is minimized with SLSQP on an epigraph-free smoothing: we minimize the
squared l2 norm first to find a boundary point, then polish by minimizing the
requested norm from that point.  For the convex cases the paper discusses,
the l2 solution restricted to the boundary is an excellent starting basin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.boundary import BoundaryRelation
from repro.core.impact import ImpactFunction
from repro.core.norms import L2Norm, Norm, get_norm
from repro.exceptions import SolverError
from repro.utils.rng import ensure_rng

__all__ = ["NumericSolveResult", "boundary_min_norm", "RETRYABLE_REASONS"]

_FD_EPS = 1e-7

#: marker used to recognize non-finite-gradient failures in classification
_NONFINITE_GRAD_MSG = "non-finite gradient"

#: failure reasons that a retry with an escalated configuration (more
#: multi-starts, tighter tolerances) can plausibly fix; ``"unreachable-
#: boundary"`` is excluded because an unreachable boundary is a property of
#: the problem, not of the solve.
RETRYABLE_REASONS = frozenset(
    {"max-iter", "nan-from-impact", "non-finite-iterate", "solver-exception"}
)


@dataclass(frozen=True)
class NumericSolveResult:
    """Outcome of one boundary minimization."""

    distance: float
    point: np.ndarray | None
    n_starts: int
    converged: bool
    #: why ``converged`` is False — one of ``"max-iter"`` (iteration cap hit
    #: before the success criterion), ``"nan-from-impact"`` (the impact or its
    #: gradient produced NaN/inf), ``"non-finite-iterate"`` (SLSQP diverged to
    #: a non-finite point), ``"solver-exception"`` (scipy raised), or
    #: ``"unreachable-boundary"`` (no start ever satisfied the constraint —
    #: the boundary may genuinely not be attainable).  ``None`` when converged.
    reason: str | None = None


def _gradient(impact: ImpactFunction, pi: np.ndarray) -> np.ndarray:
    """Analytic gradient when available, else central finite differences."""
    g = impact.gradient(pi)
    if g is not None:
        return np.asarray(g, dtype=float)
    n = pi.size
    grad = np.empty(n)
    f0 = impact(pi)
    scale = np.maximum(np.abs(pi), 1.0)
    for r in range(n):
        h = _FD_EPS * scale[r]
        up = pi.copy()
        up[r] += h
        dn = pi.copy()
        dn[r] -= h
        grad[r] = (impact(up) - impact(dn)) / (2 * h)
    if not np.all(np.isfinite(grad)):
        raise SolverError(f"non-finite gradient at {pi!r} (f={f0})")
    return grad


def _newton_boundary_start(
    impact: ImpactFunction, beta: float, origin: np.ndarray, max_iter: int = 50
) -> np.ndarray | None:
    """Walk from the origin along the (re-evaluated) gradient direction until
    ``f = beta`` — a Newton-like root find along a curve of steepest change.

    Exact for affine impacts in one step; for smooth convex impacts it lands
    on (or very near) the boundary, giving SLSQP a feasible warm start.
    """
    pi = origin.astype(float).copy()
    for _ in range(max_iter):
        resid = impact(pi) - beta
        if abs(resid) <= 1e-12 * max(1.0, abs(beta)):
            return pi
        try:
            g = _gradient(impact, pi)
        except SolverError:
            return None
        gg = float(g @ g)
        if gg == 0.0 or not np.isfinite(gg):
            return None
        pi = pi - (resid / gg) * g
        if not np.all(np.isfinite(pi)):
            return None
    resid = impact(pi) - beta
    if abs(resid) <= 1e-6 * max(1.0, abs(beta)):
        return pi
    return None


def boundary_min_norm(
    relation: BoundaryRelation,
    origin: np.ndarray,
    norm: Norm | str | None = None,
    *,
    n_starts: int = 4,
    seed: int | np.random.Generator | None = 0,
    maxiter: int = 200,
    ftol: float = 1e-12,
) -> NumericSolveResult:
    """Minimize ``||pi - origin||`` over the boundary ``f(pi) = beta``.

    Returns a *signed* distance: positive when the origin satisfies the
    relation's inequality (robust side), negative when it already violates
    it, mirroring the analytic solver's convention.

    Parameters
    ----------
    relation:
        The boundary relationship (feature bound) to reach.
    origin:
        The operating point ``pi_orig``.
    norm:
        Perturbation norm (default l2, as in the paper).
    n_starts:
        Number of random multi-start directions in addition to the
        gradient-based warm start.
    seed:
        RNG for the multi-start directions (deterministic by default so the
        solver is reproducible).
    """
    norm = get_norm(norm)
    origin = np.asarray(origin, dtype=float)
    impact = relation.feature.impact
    beta = relation.beta
    rng = ensure_rng(seed)
    sign = 1.0 if relation.value_gap(origin) >= 0 else -1.0

    l2 = L2Norm()

    def objective(pi: np.ndarray) -> float:
        d = pi - origin
        return float(d @ d)

    def objective_grad(pi: np.ndarray) -> np.ndarray:
        return 2.0 * (pi - origin)

    def constraint(pi: np.ndarray) -> float:
        return impact(pi) - beta

    def constraint_grad(pi: np.ndarray) -> np.ndarray:
        return _gradient(impact, pi)

    starts: list[np.ndarray] = []
    newton = _newton_boundary_start(impact, beta, origin)
    if newton is not None:
        starts.append(newton)
    scale = max(1.0, float(np.max(np.abs(origin))) if origin.size else 1.0)
    for _ in range(max(0, n_starts)):
        direction = rng.standard_normal(origin.size)
        nrm = np.linalg.norm(direction)
        if nrm == 0:
            continue
        step = rng.uniform(0.1, 2.0) * scale
        cand = origin + step * direction / nrm
        # Try to project the random start onto the boundary too.
        proj = _newton_boundary_start(impact, beta, cand)
        starts.append(proj if proj is not None else cand)
    if not starts:
        starts.append(origin + 1e-3 * scale * np.ones_like(origin))

    best_val = np.inf
    best_pi: np.ndarray | None = None
    any_converged = False
    failures: set[str] = set()
    for x0 in starts:
        try:
            res = optimize.minimize(
                objective,
                x0,
                jac=objective_grad,
                method="SLSQP",
                constraints=[{"type": "eq", "fun": constraint, "jac": constraint_grad}],
                options={"maxiter": maxiter, "ftol": ftol},
            )
        except SolverError as exc:
            failures.add(
                "nan-from-impact" if _NONFINITE_GRAD_MSG in str(exc) else "solver-exception"
            )
            continue
        except (ValueError, FloatingPointError):
            failures.add("solver-exception")
            continue
        if not np.all(np.isfinite(res.x)):
            failures.add("non-finite-iterate")
            continue
        feas = abs(constraint(res.x))
        if not np.isfinite(feas):
            failures.add("nan-from-impact")
            continue
        if feas > 1e-6 * max(1.0, abs(beta)):
            if not res.success and getattr(res, "nit", 0) >= maxiter:
                failures.add("max-iter")
            else:
                failures.add("unreachable-boundary")
            continue
        any_converged = any_converged or bool(res.success)
        val = l2(res.x - origin)
        if val < best_val:
            best_val = val
            best_pi = res.x.copy()

    if best_pi is None:
        # The boundary may be unreachable (e.g. bounded impact never attains
        # beta).  Report an infinite radius rather than failing: an
        # unreachable boundary constrains nothing.  ``reason`` distinguishes
        # that benign case from numeric trouble a retry could fix.
        return NumericSolveResult(
            distance=sign * np.inf,
            point=None,
            n_starts=len(starts),
            converged=False,
            reason=_classify_failure(failures),
        )

    distance = best_val if isinstance(norm, L2Norm) else _polish_norm(
        norm, impact, beta, origin, best_pi, maxiter=maxiter
    )
    return NumericSolveResult(
        distance=float(sign * distance),
        point=best_pi,
        n_starts=len(starts),
        converged=any_converged,
        reason=None if any_converged else "max-iter",
    )


#: most-actionable first: numeric trouble beats a plain feasibility miss
_FAILURE_PRIORITY = (
    "nan-from-impact",
    "solver-exception",
    "non-finite-iterate",
    "max-iter",
    "unreachable-boundary",
)


def _classify_failure(failures: set[str]) -> str:
    """Collapse per-start failure causes into the single most actionable one."""
    for reason in _FAILURE_PRIORITY:
        if reason in failures:
            return reason
    return "unreachable-boundary"


def _polish_norm(
    norm: Norm,
    impact: ImpactFunction,
    beta: float,
    origin: np.ndarray,
    x0: np.ndarray,
    *,
    maxiter: int,
) -> float:
    """Re-minimize the requested (possibly non-smooth) norm from the l2 solution."""

    def objective(pi: np.ndarray) -> float:
        return norm(pi - origin)

    def constraint(pi: np.ndarray) -> float:
        return impact(pi) - beta

    try:
        res = optimize.minimize(
            objective,
            x0,
            method="SLSQP",
            constraints=[{"type": "eq", "fun": constraint}],
            options={"maxiter": maxiter, "ftol": 1e-12},
        )
        if np.all(np.isfinite(res.x)) and abs(constraint(res.x)) <= 1e-6 * max(1.0, abs(beta)):
            return min(float(norm(res.x - origin)), float(norm(x0 - origin)))
    except (ValueError, FloatingPointError):  # pragma: no cover - scipy edge
        pass
    return float(norm(x0 - origin))
