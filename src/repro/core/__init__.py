"""Core FePIA robustness framework (paper Section 2).

Public surface:

- :class:`~repro.core.features.PerformanceFeature`,
  :class:`~repro.core.features.FeatureBounds`,
  :class:`~repro.core.features.FeatureSet` — step 1;
- :class:`~repro.core.perturbation.PerturbationParameter` — step 2;
- :class:`~repro.core.impact.AffineImpact`,
  :class:`~repro.core.impact.CallableImpact` — step 3;
- :func:`~repro.core.radius.robustness_radius` (Eq. 1),
  :func:`~repro.core.metric.robustness_metric` (Eq. 2) — step 4;
- :class:`~repro.core.fepia.FePIAAnalysis` — the whole procedure as a builder;
- :mod:`~repro.core.norms` — the perturbation norms.
"""

from repro.core.boundary import Bound, BoundaryRelation, boundary_relations
from repro.core.config import DEFAULT_CONFIG, SolverConfig, resolve_config
from repro.core.features import FeatureBounds, FeatureSet, PerformanceFeature
from repro.core.fepia import FePIAAnalysis
from repro.core.impact import (
    AffineImpact,
    CallableImpact,
    ImpactFunction,
    ScaledImpact,
    SumImpact,
    affine_sum,
    as_impact,
)
from repro.core.metric import MetricResult, metric_from_radii, robustness_metric
from repro.core.multi import MultiParameterAnalysis
from repro.core.norms import L1Norm, L2Norm, LInfNorm, Norm, WeightedL2Norm, get_norm
from repro.core.perturbation import PerturbationParameter
from repro.core.radius import RadiusResult, robustness_radius

__all__ = [
    "Bound",
    "BoundaryRelation",
    "boundary_relations",
    "DEFAULT_CONFIG",
    "SolverConfig",
    "resolve_config",
    "FeatureBounds",
    "FeatureSet",
    "PerformanceFeature",
    "FePIAAnalysis",
    "AffineImpact",
    "CallableImpact",
    "ImpactFunction",
    "ScaledImpact",
    "SumImpact",
    "affine_sum",
    "as_impact",
    "MetricResult",
    "metric_from_radii",
    "robustness_metric",
    "MultiParameterAnalysis",
    "L1Norm",
    "L2Norm",
    "LInfNorm",
    "Norm",
    "WeightedL2Norm",
    "get_norm",
    "PerturbationParameter",
    "RadiusResult",
    "robustness_radius",
]
