"""Multiple simultaneous perturbation parameters.

Section 2's step 3 "assumes that each ``pi_j`` affects a given ``phi_i``
independently" and notes that "the case where multiple perturbation
parameters can affect a given ``phi_i`` simultaneously is discussed in
[1]" (Ali's thesis).  This module implements both natural treatments:

- **marginal analysis** — one metric per parameter, holding the others at
  their assumed values (the paper's "rest of this discussion ... assuming
  only one element in Pi", applied to each element in turn);
- **joint analysis** — concatenate the parameters into one vector and
  compute a single radius in the product space, i.e. the smallest
  *combined* perturbation (in a norm over all components at once) that
  violates any feature.

Joint and marginal metrics relate by ``rho_joint <= min_j rho_marginal_j``:
allowing simultaneous variation can only reach a boundary sooner (verified
as a property test).

Features are declared with per-parameter impacts; for affine impacts the
joint impact is the concatenation of coefficient blocks and everything stays
closed-form.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import SolverConfig, resolve_config
from repro.core.features import FeatureBounds, FeatureSet, PerformanceFeature
from repro.core.impact import AffineImpact, CallableImpact, ImpactFunction, as_impact
from repro.core.metric import MetricResult, robustness_metric
from repro.core.norms import Norm
from repro.core.perturbation import PerturbationParameter
from repro.exceptions import ValidationError

__all__ = ["MultiParameterAnalysis"]


class _BlockFeature:
    """A feature whose impact is declared per parameter block."""

    def __init__(
        self, name: str, impacts: dict[str, ImpactFunction], bounds: FeatureBounds
    ) -> None:
        self.name = name
        self.impacts = impacts
        self.bounds = bounds


class MultiParameterAnalysis:
    """FePIA analysis with several perturbation parameters.

    Example
    -------
    A machine finishing time affected by both execution-time errors ``C``
    and a machine slowdown factor ``s``::

        analysis = (
            MultiParameterAnalysis()
            .with_parameter("C", origin=[5.0, 4.0])
            .with_parameter("s", origin=[1.0])
            .add_feature(
                "F_0",
                impacts={"C": [1.0, 1.0], "s": [9.0]},   # affine blocks
                upper=13.0,
            )
        )
        joint = analysis.analyze_joint()        # one radius in R^3
        per_param = analysis.analyze_marginal() # {"C": ..., "s": ...}
    """

    def __init__(self, name: str = "multi-analysis") -> None:
        self.name = name
        self._parameters: list[PerturbationParameter] = []
        self._features: list[_BlockFeature] = []

    # -- step 2 (repeated) -------------------------------------------------
    def with_parameter(
        self,
        name: str,
        origin: np.ndarray | Sequence[float] | float,
        *,
        discrete: bool = False,
    ) -> "MultiParameterAnalysis":
        """Declare one perturbation parameter (call once per parameter)."""
        if any(p.name == name for p in self._parameters):
            raise ValidationError(f"duplicate parameter name {name!r}")
        self._parameters.append(
            PerturbationParameter(name=name, origin=origin, discrete=discrete)
        )
        return self

    # -- steps 1 + 3 --------------------------------------------------------
    def add_feature(
        self,
        name: str,
        impacts: dict,
        *,
        lower: float = -np.inf,
        upper: float = np.inf,
    ) -> "MultiParameterAnalysis":
        """Declare a feature with one impact per parameter it depends on.

        ``impacts`` maps parameter names to impact functions (affine
        coefficient arrays or callables).  A parameter not mentioned does not
        affect the feature.  The feature value is the *sum* of the block
        impacts (the additive-decomposition model of [1]); wrap interactions
        into a single block over a combined parameter if needed.
        """
        if any(f.name == name for f in self._features):
            raise ValidationError(f"duplicate feature name {name!r}")
        if not impacts:
            raise ValidationError("impacts must name at least one parameter")
        known = {p.name for p in self._parameters}
        resolved: dict[str, ImpactFunction] = {}
        for pname, imp in impacts.items():
            if pname not in known:
                raise ValidationError(
                    f"feature {name!r} references unknown parameter {pname!r}"
                )
            resolved[pname] = as_impact(imp)
        self._features.append(_BlockFeature(name, resolved, FeatureBounds(lower, upper)))
        return self

    # -- helpers -------------------------------------------------------------
    @property
    def parameters(self) -> list[PerturbationParameter]:
        return list(self._parameters)

    def _require_ready(self) -> None:
        if not self._parameters:
            raise ValidationError("no perturbation parameters declared")
        if not self._features:
            raise ValidationError("no features declared")

    def _offsets(self) -> dict[str, tuple[int, int]]:
        """Block start/end of each parameter in the concatenated vector."""
        out = {}
        k = 0
        for p in self._parameters:
            out[p.name] = (k, k + p.dimension)
            k += p.dimension
        return out

    def _joint_feature(self, bf: _BlockFeature) -> PerformanceFeature:
        offsets = self._offsets()
        total_dim = sum(p.dimension for p in self._parameters)
        if all(isinstance(i, AffineImpact) for i in bf.impacts.values()):
            coeff = np.zeros(total_dim)
            intercept = 0.0
            for pname, imp in bf.impacts.items():
                lo, hi = offsets[pname]
                if imp.coefficients.size != hi - lo:
                    raise ValidationError(
                        f"feature {bf.name!r} block {pname!r} has dimension "
                        f"{imp.coefficients.size}, parameter has {hi - lo}"
                    )
                coeff[lo:hi] = imp.coefficients
                intercept += imp.intercept
            return PerformanceFeature(bf.name, AffineImpact(coeff, intercept), bf.bounds)

        blocks = dict(bf.impacts)

        def joint(
            pi: np.ndarray,
            _blocks: dict[str, ImpactFunction] = blocks,
            _off: dict[str, tuple[int, int]] = offsets,
        ) -> float:
            return float(sum(imp(pi[_off[p][0] : _off[p][1]]) for p, imp in _blocks.items()))

        def joint_grad(
            pi: np.ndarray,
            _blocks: dict[str, ImpactFunction] = blocks,
            _off: dict[str, tuple[int, int]] = offsets,
        ) -> np.ndarray | None:
            g = np.zeros_like(pi)
            for p, imp in _blocks.items():
                lo, hi = _off[p]
                gb = imp.gradient(pi[lo:hi])
                if gb is None:
                    return None
                g[lo:hi] = gb
            return g

        return PerformanceFeature(
            bf.name, CallableImpact(joint, grad=joint_grad, name=bf.name), bf.bounds
        )

    def _marginal_feature(self, bf: _BlockFeature, pname: str) -> PerformanceFeature:
        """Feature restricted to one parameter, others frozen at origin."""
        frozen = 0.0
        for other, imp in bf.impacts.items():
            if other != pname:
                origin = next(p for p in self._parameters if p.name == other).origin
                frozen += imp(origin)
        imp = bf.impacts[pname]
        if isinstance(imp, AffineImpact):
            restricted: ImpactFunction = AffineImpact(
                imp.coefficients, imp.intercept + frozen
            )
        else:
            restricted = CallableImpact(
                lambda pi, _imp=imp, _f=frozen: _imp(pi) + _f,
                grad=imp.gradient,
                name=f"{bf.name}|{pname}",
            )
        return PerformanceFeature(bf.name, restricted, bf.bounds)

    # -- step 4 ----------------------------------------------------------------
    def analyze_joint(
        self,
        *,
        norm: Norm | str | None = None,
        require_feasible: bool = False,
        config: SolverConfig | dict | None = None,
        solver_options: dict | None = None,
    ) -> MetricResult:
        """One metric over the concatenated parameter vector.

        The result's boundary points live in the product space; the metric is
        floored when *all* declared parameters are discrete.
        """
        cfg = resolve_config(config, solver_options)
        self._require_ready()
        joint_param = PerturbationParameter(
            name="+".join(p.name for p in self._parameters),
            origin=np.concatenate([p.origin for p in self._parameters]),
            discrete=all(p.discrete for p in self._parameters),
        )
        features = FeatureSet(self._joint_feature(bf) for bf in self._features)
        return robustness_metric(
            features,
            joint_param,
            norm=norm,
            require_feasible=require_feasible,
            config=cfg,
        )

    def analyze_marginal(
        self,
        *,
        norm: Norm | str | None = None,
        require_feasible: bool = False,
        config: SolverConfig | dict | None = None,
        solver_options: dict | None = None,
    ) -> dict[str, MetricResult]:
        """One metric per parameter, holding the others at their origins.

        Features unaffected by a parameter are skipped for that parameter
        (they would contribute an infinite radius anyway).
        """
        cfg = resolve_config(config, solver_options)
        self._require_ready()
        out: dict[str, MetricResult] = {}
        for p in self._parameters:
            feats = [
                self._marginal_feature(bf, p.name)
                for bf in self._features
                if p.name in bf.impacts
            ]
            if not feats:
                continue
            out[p.name] = robustness_metric(
                FeatureSet(feats),
                p,
                norm=norm,
                require_feasible=require_feasible,
                config=cfg,
            )
        return out
