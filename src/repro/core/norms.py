"""Vector norms used to measure the size of a perturbation.

The paper measures perturbations with the Euclidean (l2) norm (Section 2,
Equation 1).  Ali's thesis [1] discusses generalizations; this module
implements the l2 norm plus the natural extensions (weighted l2, l1, linf)
behind one interface so every solver in :mod:`repro.core.solvers` is
norm-generic.

The key analytic fact used throughout is the point-to-hyperplane distance:
for a hyperplane ``{x : c . x = d}`` and a point ``x0``, the minimum
``||x - x0||`` over the hyperplane equals ``|d - c . x0| / ||c||_*`` where
``||.||_*`` is the *dual* norm (Cauchy-Schwarz / Hölder).  Each norm here
knows its dual and, for l2-like norms, the minimizing point itself.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import as_1d_float_array

__all__ = [
    "Norm",
    "L2Norm",
    "WeightedL2Norm",
    "L1Norm",
    "LInfNorm",
    "get_norm",
]


class Norm(ABC):
    """A vector norm with enough structure for boundary analysis."""

    #: short identifier, e.g. ``"l2"``
    name: str = "norm"

    @abstractmethod
    def __call__(self, x: np.ndarray) -> float:
        """Return ``||x||``."""

    @abstractmethod
    def dual(self, c: np.ndarray) -> float:
        """Return the dual norm ``||c||_*`` (used in hyperplane distances)."""

    def distance_to_hyperplane(self, c: np.ndarray, d: float, x0: np.ndarray) -> float:
        """Signed distance from ``x0`` to the hyperplane ``{x : c . x = d}``.

        Positive when ``c . x0 < d`` (the origin is on the "feasible" side of
        an upper bound), negative when beyond it.  ``inf`` when ``c == 0`` and
        ``c . x0 != d`` (the boundary set is empty); ``0`` when ``c == 0`` and
        the degenerate "hyperplane" is all of space.
        """
        c = np.asarray(c, dtype=float)
        x0 = np.asarray(x0, dtype=float)
        gap = float(d) - float(c @ x0)
        denom = self.dual(c)
        if denom == 0.0:
            return 0.0 if gap == 0.0 else np.inf if gap > 0 else -np.inf
        return gap / denom

    def closest_point_on_hyperplane(
        self, c: np.ndarray, d: float, x0: np.ndarray
    ) -> np.ndarray:
        """Return a point of the hyperplane ``{x : c . x = d}`` closest to ``x0``.

        Subclasses override when a closed form exists; the base implementation
        raises ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no closed-form hyperplane projection"
        )

    def unit_steepest_direction(self, c: np.ndarray) -> np.ndarray:
        """A unit-norm direction ``u`` maximizing ``c . u`` (i.e. attaining the
        dual norm).  Used to construct boundary-touching perturbations."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class L2Norm(Norm):
    """Euclidean norm — the norm used by the paper (Equation 1)."""

    name = "l2"

    def __call__(self, x: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(x, dtype=float)))

    def dual(self, c: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(c, dtype=float)))

    def closest_point_on_hyperplane(
        self, c: np.ndarray, d: float, x0: np.ndarray
    ) -> np.ndarray:
        c = np.asarray(c, dtype=float)
        x0 = np.asarray(x0, dtype=float)
        cc = float(c @ c)
        if cc == 0.0:
            if float(d) == 0.0:
                return x0.copy()
            raise ValidationError("hyperplane with zero normal and nonzero offset is empty")
        # Orthogonal projection: x* = x0 + ((d - c.x0)/||c||^2) c
        return x0 + ((float(d) - float(c @ x0)) / cc) * c

    def unit_steepest_direction(self, c: np.ndarray) -> np.ndarray:
        c = np.asarray(c, dtype=float)
        n = float(np.linalg.norm(c))
        if n == 0.0:
            raise ValidationError("zero vector has no steepest direction")
        return c / n


class WeightedL2Norm(Norm):
    """``||x||_w = sqrt(sum_r w_r x_r^2)`` with strictly positive weights.

    Models perturbation components with different natural scales (e.g. sensor
    loads measured in incommensurate units).  Its dual norm is
    ``sqrt(sum_r c_r^2 / w_r)``.
    """

    name = "wl2"

    def __init__(self, weights: np.ndarray | list[float]) -> None:
        w = as_1d_float_array(weights, "weights")
        if np.any(w <= 0):
            raise ValidationError("weights must be strictly positive")
        self.weights = w

    def _check(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape != self.weights.shape:
            raise ValidationError(
                f"vector has shape {x.shape}, weights have shape {self.weights.shape}"
            )
        return x

    def __call__(self, x: np.ndarray) -> float:
        x = self._check(x)
        return float(np.sqrt(np.sum(self.weights * x * x)))

    def dual(self, c: np.ndarray) -> float:
        c = self._check(c)
        return float(np.sqrt(np.sum(c * c / self.weights)))

    def closest_point_on_hyperplane(
        self, c: np.ndarray, d: float, x0: np.ndarray
    ) -> np.ndarray:
        c = self._check(c)
        x0 = self._check(x0)
        # Minimize sum w_r (x_r - x0_r)^2 s.t. c.x = d  (Lagrange):
        #   x_r = x0_r + lam * c_r / w_r,  lam = (d - c.x0) / sum(c_r^2 / w_r)
        denom = float(np.sum(c * c / self.weights))
        if denom == 0.0:
            if float(d) == 0.0:
                return x0.copy()
            raise ValidationError("hyperplane with zero normal and nonzero offset is empty")
        lam = (float(d) - float(c @ x0)) / denom
        return x0 + lam * c / self.weights

    def unit_steepest_direction(self, c: np.ndarray) -> np.ndarray:
        c = self._check(c)
        u = c / self.weights
        n = self(u)
        if n == 0.0:
            raise ValidationError("zero vector has no steepest direction")
        return u / n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeightedL2Norm(weights={self.weights!r})"


class L1Norm(Norm):
    """``||x||_1`` — dual is linf; worst case concentrates in one coordinate."""

    name = "l1"

    def __call__(self, x: np.ndarray) -> float:
        return float(np.sum(np.abs(np.asarray(x, dtype=float))))

    def dual(self, c: np.ndarray) -> float:
        c = np.asarray(c, dtype=float)
        return float(np.max(np.abs(c))) if c.size else 0.0

    def closest_point_on_hyperplane(
        self, c: np.ndarray, d: float, x0: np.ndarray
    ) -> np.ndarray:
        c = np.asarray(c, dtype=float)
        x0 = np.asarray(x0, dtype=float)
        denom = self.dual(c)
        gap = float(d) - float(c @ x0)
        if denom == 0.0:
            if gap == 0.0:
                return x0.copy()
            raise ValidationError("hyperplane with zero normal and nonzero offset is empty")
        # Move only along the coordinate with the largest |c_r|.
        r = int(np.argmax(np.abs(c)))
        x = x0.copy()
        x[r] += gap / c[r]
        return x

    def unit_steepest_direction(self, c: np.ndarray) -> np.ndarray:
        c = np.asarray(c, dtype=float)
        if not np.any(c):
            raise ValidationError("zero vector has no steepest direction")
        r = int(np.argmax(np.abs(c)))
        u = np.zeros_like(c)
        u[r] = np.sign(c[r])
        return u


class LInfNorm(Norm):
    """``||x||_inf`` — dual is l1; worst case moves all coordinates equally."""

    name = "linf"

    def __call__(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        return float(np.max(np.abs(x))) if x.size else 0.0

    def dual(self, c: np.ndarray) -> float:
        return float(np.sum(np.abs(np.asarray(c, dtype=float))))

    def closest_point_on_hyperplane(
        self, c: np.ndarray, d: float, x0: np.ndarray
    ) -> np.ndarray:
        c = np.asarray(c, dtype=float)
        x0 = np.asarray(x0, dtype=float)
        denom = self.dual(c)
        gap = float(d) - float(c @ x0)
        if denom == 0.0:
            if gap == 0.0:
                return x0.copy()
            raise ValidationError("hyperplane with zero normal and nonzero offset is empty")
        # Move every coordinate by t * sign(c_r) with t = gap / ||c||_1.
        t = gap / denom
        return x0 + t * np.sign(c) + (np.sign(c) == 0) * 0.0

    def unit_steepest_direction(self, c: np.ndarray) -> np.ndarray:
        c = np.asarray(c, dtype=float)
        if not np.any(c):
            raise ValidationError("zero vector has no steepest direction")
        return np.sign(c)


_NORMS = {
    "l2": L2Norm,
    "euclidean": L2Norm,
    "l1": L1Norm,
    "linf": LInfNorm,
}


def get_norm(norm: str | Norm | None) -> Norm:
    """Resolve ``norm`` to a :class:`Norm` instance.

    Accepts an instance (returned as-is), a name (``"l2"``, ``"l1"``,
    ``"linf"``, ``"euclidean"``), or ``None`` for the paper's default l2.
    """
    if norm is None:
        return L2Norm()
    if isinstance(norm, Norm):
        return norm
    try:
        return _NORMS[str(norm).lower()]()
    except KeyError:
        raise ValidationError(
            f"unknown norm {norm!r}; expected one of {sorted(_NORMS)} or a Norm instance"
        ) from None
