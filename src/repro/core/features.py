"""Performance features and their tolerable-variation bounds — FePIA step 1.

A *performance feature* ``phi_i`` is a scalar system quantity whose variation
must stay within a tolerable interval ``<beta_i_min, beta_i_max>`` for the
system to be considered robust (paper Section 2, step 1).  Here a feature
bundles a name, that interval (:class:`FeatureBounds`), and the impact
function (step 3) that expresses the feature in terms of the perturbation
parameter.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.core.impact import ImpactFunction, as_impact
from repro.exceptions import ValidationError

__all__ = ["FeatureBounds", "PerformanceFeature", "FeatureSet"]


@dataclass(frozen=True)
class FeatureBounds:
    """The tuple ``<beta_min, beta_max>`` of tolerable variation.

    Either end may be infinite (``-inf`` / ``+inf``) when the requirement only
    bounds one side — e.g. the makespan example bounds finishing times above
    by ``tau * M_orig`` and below by 0.
    """

    lower: float = -np.inf
    upper: float = np.inf

    def __post_init__(self) -> None:
        lower = float(self.lower)
        upper = float(self.upper)
        if np.isnan(lower) or np.isnan(upper):
            raise ValidationError("bounds must not be NaN")
        if lower > upper:
            raise ValidationError(f"lower bound {lower} exceeds upper bound {upper}")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @classmethod
    def upper_only(cls, upper: float) -> "FeatureBounds":
        """Bounds with only a maximum (``beta_min = -inf``)."""
        return cls(-np.inf, upper)

    @classmethod
    def lower_only(cls, lower: float) -> "FeatureBounds":
        """Bounds with only a minimum (``beta_max = +inf``)."""
        return cls(lower, np.inf)

    def contains(self, value: float, *, tol: float = 0.0) -> bool:
        """True when ``value`` lies within the tolerable interval (± ``tol``)."""
        return (self.lower - tol) <= value <= (self.upper + tol)

    def margin(self, value: float) -> float:
        """Distance (in feature units) from ``value`` to the nearer violated
        bound; negative when ``value`` is already outside the interval."""
        return min(value - self.lower, self.upper - value)


@dataclass
class PerformanceFeature:
    """A named feature ``phi_i`` with bounds and impact function.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"F_3"`` for machine 3's finishing
        time, or ``"L_7"`` for path 7's latency).
    impact:
        The function ``f_ij`` with ``phi_i = f_ij(pi_j)`` (step 3).  May be an
        :class:`~repro.core.impact.ImpactFunction`, an array of affine
        coefficients, or a bare callable.
    bounds:
        The tolerable-variation tuple (step 1).
    """

    name: str
    impact: ImpactFunction
    bounds: FeatureBounds
    #: free-form metadata (machine index, path id, ...) carried into results
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("feature name must be non-empty")
        self.impact = as_impact(self.impact)
        if not isinstance(self.bounds, FeatureBounds):
            lo, hi = self.bounds  # accept a 2-tuple
            self.bounds = FeatureBounds(lo, hi)

    def value_at(self, pi: np.ndarray) -> float:
        """Evaluate the feature at perturbation value ``pi``."""
        return self.impact(np.asarray(pi, dtype=float))

    def satisfied_at(self, pi: np.ndarray, *, tol: float = 0.0) -> bool:
        """True when the robustness requirement holds for this feature at ``pi``."""
        return self.bounds.contains(self.value_at(pi), tol=tol)


class FeatureSet:
    """The set ``Phi`` of performance features (paper notation).

    A thin ordered container with name-based lookup and bulk evaluation.
    """

    def __init__(self, features: Iterable[PerformanceFeature] = ()) -> None:
        self._features: list[PerformanceFeature] = []
        self._by_name: dict[str, PerformanceFeature] = {}
        for f in features:
            self.add(f)

    def add(self, feature: PerformanceFeature) -> None:
        if not isinstance(feature, PerformanceFeature):
            raise ValidationError("FeatureSet elements must be PerformanceFeature")
        if feature.name in self._by_name:
            raise ValidationError(f"duplicate feature name {feature.name!r}")
        self._features.append(feature)
        self._by_name[feature.name] = feature

    def __iter__(self) -> Iterator[PerformanceFeature]:
        return iter(self._features)

    def __len__(self) -> int:
        return len(self._features)

    def __getitem__(self, key: int | str) -> PerformanceFeature:
        if isinstance(key, str):
            return self._by_name[key]
        return self._features[key]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return [f.name for f in self._features]

    def values_at(self, pi: np.ndarray) -> np.ndarray:
        """Evaluate every feature at ``pi`` (returns an array in set order)."""
        pi = np.asarray(pi, dtype=float)
        return np.array([f.value_at(pi) for f in self._features], dtype=float)

    def all_satisfied_at(self, pi: np.ndarray, *, tol: float = 0.0) -> bool:
        """True when every feature's requirement holds at ``pi``."""
        return all(f.satisfied_at(pi, tol=tol) for f in self._features)

    def violations_at(self, pi: np.ndarray, *, tol: float = 0.0) -> list[str]:
        """Names of features whose requirement is violated at ``pi``."""
        return [f.name for f in self._features if not f.satisfied_at(pi, tol=tol)]
