"""repro — reproduction of "Definition of a Robustness Metric for Resource
Allocation" (Ali, Maciejewski, Siegel, Kim — IPPS 2003).

The package implements the paper's FePIA procedure and robustness metric
(:mod:`repro.core`), the two example systems it derives the metric for —
independent application allocation (:mod:`repro.alloc`) and a HiPer-D-like
sensor/application DAG system (:mod:`repro.hiperd`) — together with the
supporting substrates: heterogeneous ETC generation (:mod:`repro.etcgen`),
mapping heuristics (:mod:`repro.alloc.heuristics`), a discrete-event
execution simulator (:mod:`repro.sim`), the experiment pipelines that
regenerate the paper's figures and tables (:mod:`repro.experiments`), and an
off-by-default observability layer — structured tracing, metrics, profiling
hooks (:mod:`repro.obs`, see ``docs/OBSERVABILITY.md``).
"""

from repro import api
from repro.core import (
    AffineImpact,
    CallableImpact,
    FeatureBounds,
    FeatureSet,
    FePIAAnalysis,
    MetricResult,
    PerformanceFeature,
    PerturbationParameter,
    RadiusResult,
    SolverConfig,
    robustness_metric,
    robustness_radius,
)
from repro.engine import RobustnessEngine
from repro.exceptions import (
    InfeasibleAtOriginError,
    ModelError,
    ReproError,
    SolverError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "AffineImpact",
    "CallableImpact",
    "FeatureBounds",
    "FeatureSet",
    "FePIAAnalysis",
    "MetricResult",
    "PerformanceFeature",
    "PerturbationParameter",
    "RadiusResult",
    "RobustnessEngine",
    "SolverConfig",
    "robustness_metric",
    "robustness_radius",
    "InfeasibleAtOriginError",
    "ModelError",
    "ReproError",
    "SolverError",
    "ValidationError",
    "__version__",
]
