"""In-process client + server-thread harness for the robustness service.

:class:`ServeClient` is a thin synchronous HTTP client over stdlib
:mod:`http.client` — enough to exercise every endpoint from tests,
benchmarks and scripts without adding a dependency.  :class:`ServerThread`
runs a :class:`~repro.serve.server.RobustnessServer` on a dedicated event
loop in a daemon thread (the same loop-on-a-thread pattern as
:class:`~repro.engine.backends.AsyncioBackend`), so synchronous test code
can start a real network server, talk to it over a real socket, and drain
it — all in-process::

    with ServerThread(ServeConfig(port=0)) as harness:
        client = ServeClient("127.0.0.1", harness.port)
        reply = client.evaluate({"kind": "allocation", ...})
        assert reply.json["ok"]
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.exceptions import ReproError
from repro.serve.protocol import dump_json
from repro.serve.server import RobustnessServer, ServeConfig

if TYPE_CHECKING:
    from repro.engine import RobustnessEngine

__all__ = ["ServeClient", "ServeResponse", "ServerThread"]


@dataclass(frozen=True)
class ServeResponse:
    """One HTTP reply: status, headers, body, parsed-on-demand JSON."""

    status: int
    headers: dict[str, str]
    body: bytes

    @property
    def json(self) -> Any:
        """The body decoded as JSON."""
        return json.loads(self.body.decode("utf-8"))

    @property
    def text(self) -> str:
        """The body decoded as UTF-8 text."""
        return self.body.decode("utf-8")

    @property
    def retry_after(self) -> float | None:
        """The ``Retry-After`` hint in seconds, when present."""
        value = self.headers.get("retry-after")
        return None if value is None else float(value)


class ServeClient:
    """Synchronous keep-alive client of one robustness server.

    Not thread-safe — give each concurrent client its own instance (each
    holds one persistent connection, which is exactly what the load
    benchmark wants to model per simulated client).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str | None = None,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.client_id = client_id
        self.timeout = float(timeout)
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing --------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the persistent connection (reopened lazily on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(
        self, method: str, path: str, body: bytes | None = None
    ) -> ServeResponse:
        """One round trip; reconnects once if the kept-alive socket died."""
        headers = {}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                raw = conn.getresponse()
                payload = raw.read()
            except (http.client.HTTPException, OSError):
                self.close()
                if attempt == 2:
                    raise
                continue
            return ServeResponse(
                status=raw.status,
                headers={k.lower(): v for k, v in raw.getheaders()},
                body=payload,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def post_json(self, path: str, doc: dict) -> ServeResponse:
        """POST a JSON document."""
        return self.request("POST", path, body=dump_json(doc))

    # -- endpoints -------------------------------------------------------------
    def healthz(self) -> ServeResponse:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition."""
        return self.request("GET", "/metrics").text

    def evaluate(
        self, problem: dict, *, request_id: str | None = None
    ) -> ServeResponse:
        """``POST /evaluate`` one problem object."""
        doc: dict = {"problem": problem}
        if request_id is not None:
            doc["id"] = request_id
        return self.post_json("/evaluate", doc)

    def evaluate_population(
        self, problems: list[dict], *, request_id: str | None = None
    ) -> ServeResponse:
        """``POST /evaluate_population`` a list of problem objects."""
        doc: dict = {"problems": problems}
        if request_id is not None:
            doc["id"] = request_id
        return self.post_json("/evaluate_population", doc)

    def robustness_curve(
        self,
        mappings: list[list[int]],
        etc: list[list[float]],
        taus: list[float],
        *,
        request_id: str | None = None,
    ) -> ServeResponse:
        """``POST /robustness_curve`` a tau sweep."""
        doc: dict = {"mappings": mappings, "etc": etc, "taus": taus}
        if request_id is not None:
            doc["id"] = request_id
        return self.post_json("/robustness_curve", doc)


class ServerThread:
    """Run a :class:`RobustnessServer` on its own event-loop thread.

    Start/stop are synchronous and safe to call from test code; the server's
    bound port (ephemeral when ``config.port == 0``) is :attr:`port` after
    :meth:`start`.  Usable as a context manager.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        engine: "RobustnessEngine | None" = None,
        retry_policy=None,
    ) -> None:
        self.server = RobustnessServer(config, engine=engine, retry_policy=retry_policy)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-loop", daemon=True
        )
        self._started = False

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self.server.port is None:
            raise ReproError("server not started")
        return self.server.port

    def client(self, *, client_id: str | None = None, timeout: float = 60.0) -> ServeClient:
        """A fresh client pointed at this server."""
        return ServeClient(
            self.server.config.host, self.port, client_id=client_id, timeout=timeout
        )

    def start(self, timeout: float = 30.0) -> "ServerThread":
        """Start the loop thread and bind the server (blocks until bound)."""
        if self._started:
            return self
        self._thread.start()
        started = asyncio.run_coroutine_threadsafe(self.server.start(), self._loop)
        started.result(timeout=timeout)
        self._started = True
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the server and tear the loop thread down."""
        if self._started:
            drained = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
            drained.result(timeout=timeout)
            self._started = False
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)
        if not self._loop.is_closed():
            self._loop.close()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
