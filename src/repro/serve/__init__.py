"""Robustness-as-a-service: asyncio HTTP/JSON front-end over the engine.

The service turns the library's population-scale evaluators into network
endpoints without adding a single dependency — stdlib asyncio, stdlib JSON,
a hand-rolled sliver of HTTP/1.1.  Four pieces:

- :mod:`repro.serve.protocol` — the JSON wire format and its codecs;
- :mod:`repro.serve.batcher` — the micro-batching queue that coalesces
  requests into engine-sized batches (full / deadline / drain flushes);
- :mod:`repro.serve.quotas` — per-client token buckets behind the 429s;
- :mod:`repro.serve.server` — the :class:`RobustnessServer` tying them to
  a shared :class:`~repro.engine.RobustnessEngine`;
- :mod:`repro.serve.client` — a synchronous :class:`ServeClient` and the
  :class:`ServerThread` harness tests and benchmarks drive.

Start one from the command line with ``repro serve --port 8471`` or
in-process::

    from repro.serve import ServeConfig, ServerThread

    with ServerThread(ServeConfig(port=0)) as harness:
        reply = harness.client().evaluate(
            {"kind": "allocation", "mapping": [0, 1], "etc": [[4, 8], [6, 3]],
             "tau": 1.3}
        )

See ``docs/SERVE.md`` for the endpoint reference and semantics.
"""

from repro.serve.batcher import (
    FLUSH_REASONS,
    Batch,
    BatchQueue,
    PendingRequest,
    QueueFullError,
)
from repro.serve.client import ServeClient, ServeResponse, ServerThread
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    DecodedProblem,
    ProtocolError,
    QuadraticImpact,
    batch_key,
    decode_problem,
)
from repro.serve.quotas import ClientQuotas, TokenBucket
from repro.serve.server import RobustnessServer, ServeConfig

__all__ = [
    "Batch",
    "BatchQueue",
    "ClientQuotas",
    "DecodedProblem",
    "FLUSH_REASONS",
    "PROTOCOL_VERSION",
    "PendingRequest",
    "ProtocolError",
    "QuadraticImpact",
    "QueueFullError",
    "RobustnessServer",
    "ServeClient",
    "ServeConfig",
    "ServeResponse",
    "ServerThread",
    "TokenBucket",
    "batch_key",
    "decode_problem",
]
