"""The asyncio robustness server: HTTP front-end over a shared engine.

:class:`RobustnessServer` binds a stdlib ``asyncio.start_server`` listener
and speaks just enough HTTP/1.1 (request line, headers, ``Content-Length``
framing, keep-alive) to serve the JSON protocol of
:mod:`repro.serve.protocol` with **zero dependencies beyond the standard
library**:

========================  =====================================================
``GET  /healthz``         liveness + protocol/backend/queue introspection
``GET  /metrics``         Prometheus text (the shared :mod:`repro.obs` registry)
``POST /evaluate``        one problem → one outcome
``POST /evaluate_population``  many problems → aligned outcomes
``POST /robustness_curve``     tau sweep → :class:`~repro.api.RobustnessCurve`
========================  =====================================================

Requests do **not** each get an engine call.  Data-plane requests enter the
:class:`~repro.serve.batcher.BatchQueue` and leave as coalesced batches —
flushed when full, when the oldest member's deadline lapses (a timer task
owns that), or at drain — so concurrent clients share stacked
:meth:`~repro.engine.RobustnessEngine.evaluate_allocation` /
:meth:`~repro.engine.RobustnessEngine.evaluate_population` passes.  Batches
execute on a single-thread executor: the engine sees one call at a time
(its own backend provides the parallelism), and the event loop never
blocks.  Each request completes through a future parked in its queue
payload, so a fault mid-batch degrades exactly the requests it belongs to
(``on_error="record"`` failure records ride the JSON response) and the
co-batched neighbors still get their bit-for-bit answers.

Load shedding is explicit: per-client token buckets
(:class:`~repro.serve.quotas.ClientQuotas`, keyed by ``X-Client-Id`` or
peer address) and the bounded queue both answer **429 with a
``Retry-After`` hint**; a draining server answers **503**.
:meth:`RobustnessServer.stop` is a graceful drain — stop accepting, flush
every pending batch, wait for in-flight work, then close.

Observability rides the existing substrate: ``repro_serve_*`` metrics are
recorded unconditionally on the shared registry (scraped by ``/metrics``),
and when tracing is enabled the span context active at dispatch time is
re-activated inside the executor thread, so ``serve.batch`` spans parent
the engine's ``fault.task`` spans across the pool boundary.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import obs
from repro.exceptions import ReproError, ValidationError
from repro.serve.batcher import Batch, BatchQueue, QueueFullError
from repro.serve.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_problem,
    dump_json,
    error_outcome,
    outcome,
    parse_json_body,
    response_envelope,
)
from repro.serve.quotas import ClientQuotas
from repro.utils.clock import get_clock

if TYPE_CHECKING:
    from repro.engine import RobustnessEngine

__all__ = ["ServeConfig", "RobustnessServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: histogram buckets for request latency (seconds)
_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

_MAX_HEADERS = 100


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`RobustnessServer`.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`RobustnessServer.port` after start — the test-harness idiom).
    ``rate <= 0`` disables quotas.  ``allow_fault_injection`` unlocks the
    wire protocol's ``fault`` feature field and exists **for chaos-testing
    harnesses only**.
    """

    host: str = "127.0.0.1"
    port: int = 8471
    #: flush a coalescing group at this many requests
    max_batch: int = 16
    #: deadline flush: the most a request waits for co-batching, in ms
    flush_ms: float = 5.0
    #: total waiting requests before 429 backpressure
    max_pending: int = 1024
    #: per-client token refill per second (<= 0 disables quotas)
    rate: float = 0.0
    #: per-client bucket capacity
    burst: float = 8.0
    #: engine execution backend name (None = engine default resolution,
    #: which honors ``REPRO_BACKEND`` — the CI backend matrix relies on it;
    #: ``repro serve`` defaults to ``"asyncio"`` at the CLI layer)
    backend: str | None = None
    #: cap on request body size (413 beyond it)
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: honor ``fault`` specs in wire features (chaos harnesses only)
    allow_fault_injection: bool = False


@dataclass
class _PendingWork:
    """The payload parked in the batch queue for one data-plane request."""

    problem: Any
    #: asyncio future completed with this request's outcome dict
    completion: asyncio.Future = field(repr=False, default=None)  # type: ignore[assignment]


class RobustnessServer:
    """Serve robustness evaluations over HTTP (see module docstring).

    Parameters
    ----------
    config:
        Tunables; None uses :class:`ServeConfig` defaults.
    engine:
        A pre-built :class:`~repro.engine.RobustnessEngine` to share.  None
        constructs one on ``config.backend`` — the normal path; injecting an
        engine is the hook chaos tests use to pin an isolating backend.
    retry_policy:
        Optional :class:`~repro.engine.fault.RetryPolicy` threaded into
        population evaluations.  Chaos tests pass ``escalate=False`` so a
        healthy task requeued after a co-batched worker crash re-solves with
        attempt-0 parameters and stays bit-for-bit equal to a fault-free run.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        engine: "RobustnessEngine | None" = None,
        retry_policy=None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        if self.config.max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        if self.config.flush_ms < 0:
            raise ValidationError("flush_ms must be >= 0")
        if engine is None:
            from repro.engine import RobustnessEngine

            engine = RobustnessEngine(backend=self.config.backend)
        self.engine = engine
        self.retry_policy = retry_policy
        self._queue = BatchQueue(
            max_batch=self.config.max_batch,
            deadline_s=self.config.flush_ms / 1000.0,
            max_pending=self.config.max_pending,
        )
        self._quotas = ClientQuotas(self.config.rate, self.config.burst)
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-dispatch"
        )
        self._wake: asyncio.Event | None = None
        self._flush_task: asyncio.Task | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._connections: set[asyncio.StreamWriter] = set()
        self._draining = False
        self.port: int | None = None
        #: engine calls dispatched (denominator of the batching ratio lives
        #: in ``repro_serve_requests_total``)
        self.n_engine_calls = 0
        self.n_requests = 0

    # -- time / metrics --------------------------------------------------------
    @staticmethod
    def _now() -> float:
        return get_clock().monotonic()

    @staticmethod
    def _registry():
        return obs.get_registry()

    def _count_request(self, route: str, code: int) -> None:
        self._registry().counter(
            "repro_serve_requests_total",
            "HTTP requests served, by route and status code",
            route=route,
            code=str(code),
        ).inc()

    def _observe_latency(self, route: str, seconds: float) -> None:
        self._registry().histogram(
            "repro_serve_request_seconds",
            "request wall time, enqueue to response",
            buckets=_LATENCY_BUCKETS,
            route=route,
        ).observe(seconds)

    def _set_queue_depth(self) -> None:
        self._registry().gauge(
            "repro_serve_queue_depth", "requests waiting in the micro-batch queue"
        ).set(self._queue.n_pending)

    def _count_rejection(self, reason: str) -> None:
        self._registry().counter(
            "repro_serve_rejections_total",
            "requests shed before evaluation, by reason",
            reason=reason,
        ).inc()

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the deadline-flush timer."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._flush_task = self._loop.create_task(self._flush_loop())

    async def stop(self) -> None:
        """Graceful drain: refuse new work, finish everything accepted."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # flush whatever is still coalescing, then let dispatch finish
        for batch in self._queue.flush_all():
            self._dispatch(batch)
        self._set_queue_depth()
        if self._wake is not None:
            self._wake.set()
        if self._flush_task is not None:
            await self._flush_task
        while self._dispatch_tasks:
            await asyncio.gather(*list(self._dispatch_tasks), return_exceptions=True)
        for writer in list(self._connections):
            writer.close()
        self._executor.shutdown(wait=True)

    @property
    def draining(self) -> bool:
        """Whether the server has begun its graceful shutdown."""
        return self._draining

    # -- deadline flush timer --------------------------------------------------
    async def _flush_loop(self) -> None:
        wake = self._wake  # set once in start(); this task is the only consumer
        assert wake is not None
        while not self._draining:
            deadline = self._queue.next_deadline()
            if deadline is None:
                await wake.wait()
                wake.clear()
                continue
            delay = deadline - self._now()
            if delay > 0:
                try:
                    await asyncio.wait_for(wake.wait(), timeout=delay)
                    wake.clear()
                    continue  # arrivals may have changed the earliest deadline
                except asyncio.TimeoutError:
                    pass
            for batch in self._queue.flush_due():
                self._dispatch(batch)
            self._set_queue_depth()

    # -- batch dispatch --------------------------------------------------------
    def _dispatch(self, batch: Batch) -> None:
        """Hand a flushed batch to the engine executor (never blocks)."""
        assert self._loop is not None
        self._registry().counter(
            "repro_serve_batches_total",
            "batches flushed to the engine, by flush reason",
            reason=batch.reason,
        ).inc()
        self.n_engine_calls += 1
        ctx = obs.current_context()
        task = self._loop.create_task(self._complete_batch(batch, ctx))
        self._dispatch_tasks.add(task)
        task.add_done_callback(self._dispatch_tasks.discard)

    async def _complete_batch(self, batch: Batch, ctx) -> None:
        assert self._loop is not None
        try:
            outcomes = await self._loop.run_in_executor(
                self._executor, partial(self._run_batch, batch, ctx)
            )
        except Exception as err:  # noqa: BLE001 - answered, not swallowed
            outcomes = [error_outcome(f"{type(err).__name__}: {err}")] * len(batch)
        for req, out in zip(batch.items, outcomes):
            completion = req.payload.completion
            if not completion.done():
                completion.set_result(out)

    def _run_batch(self, batch: Batch, ctx) -> list[dict]:
        """Evaluate one batch on the engine (executor thread)."""
        token = obs.activate(ctx) if ctx is not None else None
        try:
            with obs.maybe_span(
                "serve.batch", kind=str(batch.key[0]), n=len(batch), reason=batch.reason
            ):
                if batch.key[0] == "allocation":
                    return self._run_allocation_batch(batch)
                return self._run_fepia_batch(batch)
        finally:
            if token is not None:
                obs.deactivate(token)

    def _run_allocation_batch(self, batch: Batch) -> list[dict]:
        problems = [req.payload.problem for req in batch.items]
        first = problems[0]
        mappings = np.stack([p.mapping for p in problems])
        try:
            res = self.engine.evaluate_allocation(mappings, first.etc, first.tau)
        except ReproError as err:
            return [error_outcome(f"{type(err).__name__}: {err}") for _ in problems]
        return [outcome(res.result_for(i).to_dict()) for i in range(len(problems))]

    def _run_fepia_batch(self, batch: Batch) -> list[dict]:
        problems = [req.payload.problem for req in batch.items]
        try:
            res = self.engine.evaluate_population(
                [(p.features, p.parameter) for p in problems],
                on_error="record",
                retry_policy=self.retry_policy,
            )
        except ReproError as err:
            return [error_outcome(f"{type(err).__name__}: {err}") for _ in problems]
        return [
            outcome(
                res[i].to_dict(),
                [f.to_dict() for f in res.failures_for(i)],
            )
            for i in range(len(problems))
        ]

    # -- request intake --------------------------------------------------------
    async def _submit(self, problem, request_id: str | None) -> dict:
        """Enqueue one decoded problem; resolves with its outcome dict."""
        assert self._loop is not None and self._wake is not None
        work = _PendingWork(problem=problem, completion=self._loop.create_future())
        _, full_batches = self._queue.add(problem.key, work, request_id=request_id)
        self._set_queue_depth()
        for batch in full_batches:
            self._dispatch(batch)
        self._wake.set()
        return await work.completion

    # -- HTTP plumbing ---------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._route(request, reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str]] | None:
        try:
            line = await reader.readline()
        except ValueError:
            return None  # request line over the stream limit
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            return None  # header section absurdly long
        return method, target, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> bytes | None:
        """The request body, or None when it must be rejected (413)."""
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return None
        if length < 0 or length > self.config.max_body_bytes:
            return None
        if length == 0:
            return b""
        return await reader.readexactly(length)

    @staticmethod
    def _client_id(headers: dict[str, str], writer: asyncio.StreamWriter) -> str:
        explicit = headers.get("x-client-id")
        if explicit:
            return explicit
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if peer else "unknown"

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        extra_headers: tuple[tuple[str, str], ...] = (),
        keep_alive: bool = True,
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        )
        for name, value in extra_headers:
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()

    async def _reject(
        self,
        writer: asyncio.StreamWriter,
        route: str,
        status: int,
        message: str,
        *,
        retry_after: float | None = None,
        request_id: str | None = None,
    ) -> bool:
        extra: tuple[tuple[str, str], ...] = ()
        if retry_after is not None:
            extra = (("Retry-After", str(max(1, int(np.ceil(retry_after))))),)
        body = dump_json(
            response_envelope(
                request_id, {"ok": False, "result": None, "failures": [], "error": message}
            )
        )
        self._count_request(route, status)
        await self._respond(writer, status, body, extra_headers=extra)
        return True

    # -- routing ---------------------------------------------------------------
    async def _route(
        self,
        request: tuple[str, str, dict[str, str]],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        method, target, headers = request
        route = target.split("?", 1)[0]
        started = self._now()
        if route == "/healthz" or route == "/metrics":
            if method != "GET":
                return await self._reject(writer, route, 405, f"{route} is GET-only")
            if route == "/healthz":
                return await self._get_healthz(writer)
            return await self._get_metrics(writer)
        if route not in ("/evaluate", "/evaluate_population", "/robustness_curve"):
            return await self._reject(writer, route, 404, f"unknown route {route!r}")
        if method != "POST":
            return await self._reject(writer, route, 405, f"{route} is POST-only")

        body = await self._read_body(reader, headers)
        if body is None:
            return await self._reject(
                writer, route, 413, "request body missing, malformed or over the size cap"
            )
        if self._draining:
            self._count_rejection("draining")
            return await self._reject(writer, route, 503, "server is draining")
        wait = self._quotas.try_acquire(self._client_id(headers, writer))
        if wait > 0:
            self._count_rejection("quota")
            return await self._reject(
                writer, route, 429, "client quota exhausted", retry_after=wait
            )

        try:
            doc = parse_json_body(body)
            request_id = doc.get("id")
            if request_id is not None and not isinstance(request_id, str):
                raise ProtocolError("id must be a string when present")
            if route == "/evaluate":
                payload = await self._post_evaluate(doc)
            elif route == "/evaluate_population":
                payload = await self._post_population(doc)
            else:
                payload = await self._post_curve(doc)
        except ProtocolError as err:
            return await self._reject(writer, route, 400, str(err))
        except QueueFullError as err:
            self._count_rejection("queue_full")
            return await self._reject(
                writer,
                route,
                429,
                str(err),
                retry_after=self.config.flush_ms / 1000.0,
            )
        self.n_requests += 1
        self._count_request(route, 200)
        self._observe_latency(route, self._now() - started)
        await self._respond(writer, 200, dump_json(payload))
        return True

    async def _get_healthz(self, writer: asyncio.StreamWriter) -> bool:
        from repro.engine.backends import resolve_backend

        spec = resolve_backend(self.engine.backend, self.engine.config.pool_size)
        payload = {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "backend": spec.name,
            "queue_depth": self._queue.n_pending,
            "n_requests": self.n_requests,
            "n_engine_calls": self.n_engine_calls,
        }
        self._count_request("/healthz", 200)
        await self._respond(writer, 200, dump_json(payload))
        return True

    async def _get_metrics(self, writer: asyncio.StreamWriter) -> bool:
        self._set_queue_depth()
        self._count_request("/metrics", 200)
        text = self._registry().render_prometheus()
        await self._respond(
            writer,
            200,
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )
        return True

    async def _post_evaluate(self, doc: dict) -> dict:
        if "problem" not in doc:
            raise ProtocolError("/evaluate body must carry a 'problem' object")
        problem = decode_problem(
            doc["problem"], allow_faults=self.config.allow_fault_injection
        )
        request_id = doc.get("id")
        result = await self._submit(problem, request_id)
        return response_envelope(request_id, result)

    async def _post_population(self, doc: dict) -> dict:
        problems_spec = doc.get("problems")
        if not isinstance(problems_spec, list) or not problems_spec:
            raise ProtocolError(
                "/evaluate_population body must carry a non-empty 'problems' array"
            )
        problems = [
            decode_problem(spec, allow_faults=self.config.allow_fault_injection)
            for spec in problems_spec
        ]
        request_id = doc.get("id")
        outcomes = await asyncio.gather(
            *(self._submit(p, request_id) for p in problems)
        )
        return response_envelope(
            request_id,
            {
                "ok": all(o["ok"] for o in outcomes),
                "outcomes": list(outcomes),
            },
        )

    async def _post_curve(self, doc: dict) -> dict:
        assert self._loop is not None
        from repro.api import robustness_curve
        from repro.serve.protocol import _decode_matrix  # shared validation

        etc = _decode_matrix(doc.get("etc"), "body.etc")
        mappings_spec = doc.get("mappings")
        if not isinstance(mappings_spec, list) or not mappings_spec:
            raise ProtocolError("body.mappings must be a non-empty array")
        mappings = np.asarray(mappings_spec)
        if mappings.ndim != 2 or not np.issubdtype(mappings.dtype, np.integer):
            raise ProtocolError("body.mappings must be a 2-D integer array")
        taus_spec = doc.get("taus")
        if not isinstance(taus_spec, list) or not taus_spec:
            raise ProtocolError("body.taus must be a non-empty array")
        request_id = doc.get("id")
        ctx = obs.current_context()

        def run() -> dict:
            token = obs.activate(ctx) if ctx is not None else None
            try:
                curve = robustness_curve(mappings, etc, [float(t) for t in taus_spec])
            except ReproError as err:
                return error_outcome(f"{type(err).__name__}: {err}")
            finally:
                if token is not None:
                    obs.deactivate(token)
            return outcome(curve.to_dict())

        self.n_engine_calls += 1
        result = await self._loop.run_in_executor(self._executor, run)
        if result["error"] is not None:
            raise ProtocolError(result["error"])
        return response_envelope(request_id, result)
