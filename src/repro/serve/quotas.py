"""Per-client token-bucket quotas for the robustness service.

A classic token bucket per client: ``rate`` tokens refill per second up to a
``burst`` capacity, one request spends one token, and an empty bucket
reports how long the client must wait for the next token — which the server
turns into an HTTP 429 with a ``Retry-After`` header.  Clients are
identified by the ``X-Client-Id`` request header when present, falling back
to the peer address, so well-behaved tenants are isolated from a noisy
neighbor without any shared-state coordination on the client side.

Like the batch queue, the registry reads time only through an injected
:class:`~repro.utils.clock.Clock`, so quota behavior is deterministic under
a :class:`~repro.utils.clock.FakeClock`.  The registry is used exclusively
from the server's event loop (single-threaded), so no locking is needed;
bucket state is evicted least-recently-used beyond ``max_clients`` to bound
memory against client-id churn.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.exceptions import ValidationError
from repro.utils.clock import Clock, get_clock

__all__ = ["TokenBucket", "ClientQuotas"]


class TokenBucket:
    """One client's refillable request allowance.

    Parameters
    ----------
    rate:
        Tokens refilled per second; ``rate <= 0`` disables the quota
        entirely (every acquire succeeds).
    burst:
        Bucket capacity — the largest request burst served from a full
        bucket before refill pacing kicks in.
    clock:
        Time source (None = the process-wide active clock).
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock")

    def __init__(self, rate: float, burst: float, clock: Clock | None = None) -> None:
        if float(burst) < 1 and float(rate) > 0:
            raise ValidationError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last: float | None = None
        self._clock = clock

    def _now(self) -> float:
        clock = self._clock if self._clock is not None else get_clock()
        return clock.monotonic()

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Spend ``tokens`` if available.

        Returns ``0.0`` on success, otherwise the seconds until the bucket
        will hold enough tokens (the ``Retry-After`` hint).  A disabled
        bucket (``rate <= 0``) always succeeds.
        """
        if self.rate <= 0:
            return 0.0
        now = self._now()
        if self._last is not None:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Tokens held at the last acquire (no refill applied)."""
        return self._tokens


class ClientQuotas:
    """LRU-bounded registry of per-client token buckets."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        max_clients: int = 1024,
        clock: Clock | None = None,
    ) -> None:
        if int(max_clients) < 1:
            raise ValidationError(f"max_clients must be >= 1, got {max_clients!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    @property
    def enabled(self) -> bool:
        """False when ``rate <= 0`` (quotas are a no-op)."""
        return self.rate > 0

    @property
    def n_clients(self) -> int:
        """Clients with live bucket state."""
        return len(self._buckets)

    def try_acquire(self, client_id: str) -> float:
        """Spend one token of ``client_id``'s bucket (see
        :meth:`TokenBucket.try_acquire` for the return contract)."""
        if not self.enabled:
            return 0.0
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client_id] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client_id)
        return bucket.try_acquire()
