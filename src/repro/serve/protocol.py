"""Wire protocol of the robustness service: JSON schemas and codecs.

The service speaks plain JSON over HTTP/1.1.  A request envelope is::

    {"id": "r-17", "problem": {...}}            # POST /evaluate
    {"id": "r-18", "problems": [{...}, ...]}    # POST /evaluate_population
    {"id": "r-19", "mappings": [[...], ...],    # POST /robustness_curve
     "etc": [[...], ...], "taus": [...]}

and every data-plane response is the envelope::

    {"id": "r-17", "ok": true, "result": {...}, "failures": [...]}

``result`` is the tagged ``to_dict`` payload of the engine result object
(:class:`~repro.alloc.robustness.AllocationRobustness` /
:class:`~repro.core.metric.MetricResult` /
:class:`~repro.api.RobustnessCurve`), ``failures`` the
:class:`~repro.engine.fault.FailureRecord` entries of *this* request only,
and ``ok`` is false exactly when failures are present — a degraded request
still answers 200 with structured failure detail; HTTP errors are reserved
for requests the service never evaluated (malformed input, quota, overload).

Two problem kinds are evaluable over the wire:

- ``allocation`` — the paper's Eq. 6/7 independent-task problem: an
  assignment vector, an ETC matrix and a tolerance ``tau``.  Closed form;
  requests sharing the same ETC bytes and tau coalesce into one stacked
  engine pass (their :func:`batch_key` is equal).
- ``fepia`` — a generic FePIA problem: named features with JSON-describable
  impacts (``affine`` or ``quadratic``) and a perturbation parameter.
  Quadratic impacts route through the numeric solver and hence the
  engine's execution backend, which is what makes the service's fault
  ladder (and the chaos suite) reachable from the wire.

A feature spec may carry a ``fault`` object (mode/on_call/... as accepted by
:func:`repro.faults.wrap_feature`).  Fault injection is **disabled unless
the server opts in** (``ServeConfig.allow_fault_injection``, meant for chaos
testing only); a fault spec on a production server is a 400, never a
silently-dropped field.

Floats ride the :mod:`repro.utils.serialization` codec (``inf``/``nan`` as
strings), so every payload is strict JSON — the server serializes with
``allow_nan=False`` and a non-finite float leaking into a response is a
loud bug, not a silently-invalid document.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.features import FeatureBounds, PerformanceFeature
from repro.core.impact import AffineImpact, ImpactFunction
from repro.core.perturbation import PerturbationParameter
from repro.exceptions import ValidationError

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QuadraticImpact",
    "DecodedProblem",
    "decode_problem",
    "batch_key",
    "parse_json_body",
    "dump_json",
    "outcome",
    "error_outcome",
    "response_envelope",
    "PROBLEM_KINDS",
]

#: wire protocol version, echoed by ``/healthz``
PROTOCOL_VERSION = 1

#: problem kinds evaluable over the wire
PROBLEM_KINDS = ("allocation", "fepia")

#: request body size cap enforced by the server (bytes)
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024


class ProtocolError(ValidationError):
    """A request the service cannot evaluate (HTTP 400)."""


class QuadraticImpact(ImpactFunction):
    """Weighted quadratic impact, describable in JSON and picklable.

    ``value(pi) = sum_i w_i * pi_i**2`` with exact gradient ``2 * w * pi``.
    Deliberately non-affine so wire requests can exercise the numeric
    solver path (multi-start SLSQP, the execution backend, the fault
    ladder) — an affine-only protocol would never leave the closed form.
    Module-level and stateless, so it crosses process-backend boundaries
    by ordinary pickling.
    """

    def __init__(self, weights: "np.ndarray | Sequence[float]") -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 1 or weights.size == 0:
            raise ValidationError("quadratic weights must be a non-empty 1-D vector")
        if not np.all(np.isfinite(weights)):
            raise ValidationError("quadratic weights must be finite")
        self.weights = weights

    def __call__(self, pi: np.ndarray) -> float:
        return float(np.sum(self.weights * np.square(pi)))

    def gradient(self, pi: np.ndarray) -> np.ndarray:
        """Exact gradient ``2 * w * pi``."""
        return 2.0 * self.weights * np.asarray(pi, dtype=float)

    @property
    def is_affine(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuadraticImpact(weights={self.weights.tolist()!r})"


@dataclass(frozen=True)
class DecodedProblem:
    """One wire problem, decoded and validated into engine inputs.

    Exactly one of the two input groups is populated, selected by ``kind``;
    :func:`batch_key` computes the coalescing key the micro-batcher groups
    on.  ``source`` keeps the original JSON object for golden/echo tests.
    """

    kind: str
    #: allocation inputs
    mapping: np.ndarray | None = None
    etc: np.ndarray | None = None
    tau: float | None = None
    #: fepia inputs
    features: tuple[PerformanceFeature, ...] = ()
    parameter: PerturbationParameter | None = None
    #: the decoded-from JSON object
    source: dict = field(default_factory=dict)

    @property
    def key(self) -> tuple:
        """Coalescing key (see :func:`batch_key`)."""
        return batch_key(self)


def batch_key(problem: DecodedProblem) -> tuple:
    """The coalescing key: problems with equal keys share one engine call.

    Allocation problems batch when their ETC matrices are byte-identical
    and their ``tau`` matches — the stacked Eq. 6 pass requires exactly
    that.  Generic FePIA problems are mutually independent inside
    :meth:`~repro.engine.RobustnessEngine.evaluate_population`, so they all
    share a single key.
    """
    if problem.kind == "allocation":
        assert problem.etc is not None and problem.tau is not None
        digest = hashlib.sha256(
            np.ascontiguousarray(problem.etc).tobytes()
        ).hexdigest()
        return ("allocation", problem.etc.shape, digest, problem.tau)
    return ("fepia",)


# -- JSON plumbing -------------------------------------------------------------


def parse_json_body(body: bytes) -> dict:
    """Decode a request body into a JSON object (:class:`ProtocolError` on
    anything that is not a JSON object)."""
    try:
        doc = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise ProtocolError(f"request body is not valid JSON: {err}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def dump_json(payload: dict) -> bytes:
    """Serialize a response payload as strict JSON (``allow_nan=False``)."""
    return json.dumps(payload, allow_nan=False, separators=(",", ":")).encode("utf-8")


def _require(doc: dict, field_name: str, types: tuple[type, ...], where: str) -> Any:
    if field_name not in doc:
        raise ProtocolError(f"{where}: missing required field {field_name!r}")
    value = doc[field_name]
    if not isinstance(value, types):
        raise ProtocolError(
            f"{where}: field {field_name!r} must be "
            f"{' or '.join(t.__name__ for t in types)}, got {type(value).__name__}"
        )
    return value


def _decode_bound(value: Any, where: str) -> float:
    """One bound: a number, or the strings ``"inf"`` / ``"-inf"``."""
    if value is None:
        raise ProtocolError(f"{where}: bound must not be null")
    if isinstance(value, str):
        if value in ("inf", "-inf"):
            return float(value)
        raise ProtocolError(f"{where}: bad bound string {value!r}")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{where}: bound must be a number, got {type(value).__name__}")
    return float(value)


def _decode_vector(value: Any, where: str) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ProtocolError(f"{where}: expected a non-empty 1-D number array")
    if not np.all(np.isfinite(arr)):
        raise ProtocolError(f"{where}: values must be finite")
    return arr


def _decode_matrix(value: Any, where: str) -> np.ndarray:
    try:
        arr = np.asarray(value, dtype=float)
    except (TypeError, ValueError) as err:
        raise ProtocolError(f"{where}: not a numeric matrix ({err})") from None
    if arr.ndim != 2 or arr.size == 0:
        raise ProtocolError(f"{where}: expected a non-empty 2-D number array")
    if not np.all(np.isfinite(arr)):
        raise ProtocolError(f"{where}: values must be finite")
    return arr


# -- problem decoding ----------------------------------------------------------


def _decode_impact(spec: Any, where: str) -> ImpactFunction:
    if not isinstance(spec, dict):
        raise ProtocolError(f"{where}: impact must be an object")
    kind = _require(spec, "kind", (str,), where)
    if kind == "affine":
        coeffs = _decode_vector(
            _require(spec, "coefficients", (list,), where), f"{where}.coefficients"
        )
        intercept = spec.get("intercept", 0.0)
        if isinstance(intercept, bool) or not isinstance(intercept, (int, float)):
            raise ProtocolError(f"{where}: intercept must be a number")
        return AffineImpact(coeffs, float(intercept))
    if kind == "quadratic":
        weights = _decode_vector(
            _require(spec, "weights", (list,), where), f"{where}.weights"
        )
        return QuadraticImpact(weights)
    raise ProtocolError(
        f"{where}: unknown impact kind {kind!r} (expected 'affine' or 'quadratic')"
    )


def _decode_fault(feature: PerformanceFeature, spec: Any, where: str) -> PerformanceFeature:
    from repro.faults import wrap_feature
    from repro.faults.inject import FAULT_MODES

    if not isinstance(spec, dict):
        raise ProtocolError(f"{where}: fault must be an object")
    mode = _require(spec, "mode", (str,), where)
    if mode not in FAULT_MODES:
        raise ProtocolError(f"{where}: fault mode must be one of {FAULT_MODES}")
    kwargs: dict[str, Any] = {}
    for key in ("on_call", "heal_after_attempt"):
        if key in spec:
            kwargs[key] = int(spec[key])
    if "hang_seconds" in spec:
        kwargs["hang_seconds"] = float(spec["hang_seconds"])
    kwargs["worker_only"] = bool(spec.get("worker_only", True))
    return wrap_feature(feature, mode, **kwargs)


def _decode_feature(
    spec: Any, n_components: int, where: str, *, allow_faults: bool
) -> PerformanceFeature:
    if not isinstance(spec, dict):
        raise ProtocolError(f"{where}: feature must be an object")
    name = _require(spec, "name", (str,), where)
    if not name:
        raise ProtocolError(f"{where}: feature name must be non-empty")
    impact = _decode_impact(spec.get("impact"), f"{where}.impact")
    weights = getattr(impact, "weights", None)
    coeffs = getattr(impact, "coefficients", None)
    vector = weights if weights is not None else coeffs
    if vector is not None and len(vector) != n_components:
        raise ProtocolError(
            f"{where}: impact dimension {len(vector)} does not match the "
            f"parameter's {n_components} components"
        )
    bounds_spec = _require(spec, "bounds", (dict,), where)
    bounds = FeatureBounds(
        lower=_decode_bound(bounds_spec.get("lower", "-inf"), f"{where}.bounds.lower"),
        upper=_decode_bound(bounds_spec.get("upper", "inf"), f"{where}.bounds.upper"),
    )
    feature = PerformanceFeature(name, impact, bounds)
    if "fault" in spec:
        if not allow_faults:
            raise ProtocolError(
                f"{where}: fault injection is disabled on this server "
                "(chaos-testing harnesses opt in via allow_fault_injection)"
            )
        feature = _decode_fault(feature, spec["fault"], f"{where}.fault")
    return feature


def _decode_allocation(doc: dict, where: str) -> DecodedProblem:
    etc = _decode_matrix(_require(doc, "etc", (list,), where), f"{where}.etc")
    mapping_raw = _require(doc, "mapping", (list,), where)
    mapping = np.asarray(mapping_raw)
    if mapping.ndim != 1 or mapping.size == 0:
        raise ProtocolError(f"{where}.mapping: expected a non-empty 1-D integer array")
    if not np.issubdtype(mapping.dtype, np.integer):
        raise ProtocolError(f"{where}.mapping: machine indices must be integers")
    if mapping.size != etc.shape[0]:
        raise ProtocolError(
            f"{where}: mapping has {mapping.size} tasks but etc has "
            f"{etc.shape[0]} rows"
        )
    if np.any(mapping < 0) or np.any(mapping >= etc.shape[1]):
        raise ProtocolError(
            f"{where}.mapping: machine indices must lie in [0, {etc.shape[1]})"
        )
    tau_raw = _require(doc, "tau", (int, float), where)
    if isinstance(tau_raw, bool) or float(tau_raw) <= 0:
        raise ProtocolError(f"{where}.tau: must be a positive number")
    return DecodedProblem(
        kind="allocation",
        mapping=mapping.astype(np.int64),
        etc=etc,
        tau=float(tau_raw),
        source=doc,
    )


def _decode_fepia(doc: dict, where: str, *, allow_faults: bool) -> DecodedProblem:
    param_spec = _require(doc, "parameter", (dict,), where)
    origin = _decode_vector(
        _require(param_spec, "origin", (list,), f"{where}.parameter"),
        f"{where}.parameter.origin",
    )
    name = param_spec.get("name", "pi")
    if not isinstance(name, str) or not name:
        raise ProtocolError(f"{where}.parameter.name: must be a non-empty string")
    parameter = PerturbationParameter(
        name, origin, discrete=bool(param_spec.get("discrete", False))
    )
    features_spec = _require(doc, "features", (list,), where)
    if not features_spec:
        raise ProtocolError(f"{where}.features: must be non-empty")
    features = tuple(
        _decode_feature(
            spec, origin.size, f"{where}.features[{i}]", allow_faults=allow_faults
        )
        for i, spec in enumerate(features_spec)
    )
    return DecodedProblem(
        kind="fepia", features=features, parameter=parameter, source=doc
    )


def decode_problem(doc: Any, *, allow_faults: bool = False) -> DecodedProblem:
    """Decode and validate one wire problem object.

    Raises :class:`ProtocolError` (HTTP 400) on anything malformed —
    validation happens *before* batching, so a bad request can never poison
    the engine call its neighbors share.
    """
    if not isinstance(doc, dict):
        raise ProtocolError(f"problem must be a JSON object, got {type(doc).__name__}")
    kind = _require(doc, "kind", (str,), "problem")
    if kind == "allocation":
        return _decode_allocation(doc, "problem")
    if kind == "fepia":
        return _decode_fepia(doc, "problem", allow_faults=allow_faults)
    raise ProtocolError(
        f"problem: unknown kind {kind!r} (expected one of {PROBLEM_KINDS})"
    )


# -- response assembly ---------------------------------------------------------


def outcome(result_dict: dict, failures: Sequence[dict] = ()) -> dict:
    """A per-request outcome: engine result plus this request's failures."""
    return {
        "ok": not failures,
        "result": result_dict,
        "failures": list(failures),
        "error": None,
    }


def error_outcome(message: str) -> dict:
    """A per-request outcome for a request whose engine call failed whole."""
    return {"ok": False, "result": None, "failures": [], "error": message}


def response_envelope(request_id: str | None, body: dict) -> dict:
    """Wrap an outcome (or batch of outcomes) with the echoed request id."""
    return {"id": request_id, "protocol": PROTOCOL_VERSION, **body}
