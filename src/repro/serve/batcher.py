"""Micro-batching queue: coalesce single requests into engine-sized batches.

The robustness engine amortizes per-call overhead across a whole population
(:meth:`~repro.engine.RobustnessEngine.evaluate_allocation` is one stacked
array pass no matter how many mappings ride in it), so a service that
dispatched one engine call per HTTP request would throw that advantage
away.  :class:`BatchQueue` is the coalescing core: requests enter one at a
time, grouped by a *batch key* (problems that can legally share an engine
call — same ETC matrix and tau, or any set of generic FePIA problems), and
leave as :class:`Batch` objects when either

- the group reaches ``max_batch`` items (a **full** flush, synchronous with
  the triggering :meth:`~BatchQueue.add`), or
- the oldest item of the group has waited ``deadline_s`` seconds (a
  **deadline** flush, driven by the owner polling :meth:`flush_due` at
  :meth:`next_deadline`), or
- the owner shuts down and calls :meth:`flush_all` (a **drain** flush).

The queue is deliberately *pure*: no asyncio, no threads, no wall clock of
its own — time enters only through the injected
:class:`~repro.utils.clock.Clock`, which is what makes the dispatch
invariants property-testable with a :class:`~repro.utils.clock.FakeClock`
(every request dispatched exactly once, no batch over ``max_batch``, no
request waiting past its deadline).  The asyncio server wraps it with a
timer task; nothing else in this module knows a network exists.

Total occupancy is bounded: :meth:`add` raises :class:`QueueFullError` once
``max_pending`` requests are waiting, which the server surfaces as HTTP 429
with a ``Retry-After`` hint — backpressure, not an unbounded buffer.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ReproError, ValidationError
from repro.utils.clock import Clock, get_clock

__all__ = ["Batch", "BatchQueue", "PendingRequest", "QueueFullError", "FLUSH_REASONS"]

#: why a batch left the queue
FLUSH_REASONS = ("full", "deadline", "drain")


class QueueFullError(ReproError):
    """The queue is at ``max_pending`` — the caller must shed load."""


@dataclass(frozen=True)
class PendingRequest:
    """One enqueued request, opaque payload included.

    The queue never looks inside ``payload`` — the server parks whatever it
    needs to complete the request there (decoded problem, response future,
    client id).  ``seq`` is unique per queue and strictly increasing, so it
    doubles as an arrival-order tiebreaker and an exactly-once token.
    """

    #: coalescing key — requests batch together iff their keys are equal
    key: Hashable
    #: opaque request payload (decoded problem + completion handle)
    payload: Any
    #: optional client-supplied request id (echoed in responses)
    request_id: str | None
    #: queue-assigned arrival sequence number
    seq: int
    #: clock reading at enqueue time
    enqueued_at: float


@dataclass(frozen=True)
class Batch:
    """A flushed group of requests that share one engine call."""

    #: the common batch key of every item
    key: Hashable
    #: the coalesced requests, in arrival order
    items: tuple[PendingRequest, ...]
    #: ``"full"`` | ``"deadline"`` | ``"drain"``
    reason: str
    #: clock reading at flush time
    flushed_at: float

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class _Group:
    """Mutable accumulation state of one batch key."""

    items: list[PendingRequest] = field(default_factory=list)

    @property
    def oldest(self) -> float:
        return self.items[0].enqueued_at


class BatchQueue:
    """Deadline-flushed, size-capped request coalescing (see module doc).

    Parameters
    ----------
    max_batch:
        Flush a group as soon as it holds this many requests.
    deadline_s:
        Flush a group once its oldest request has waited this long.  The
        worst-case added latency of coalescing; ``0`` degenerates to
        one-request batches flushed by the first :meth:`flush_due`.
    max_pending:
        Total requests allowed to wait across all groups; :meth:`add`
        raises :class:`QueueFullError` beyond it (None = unbounded).
    clock:
        Time source; None uses the process-wide active clock
        (:func:`repro.utils.clock.get_clock`), so installing a
        :class:`~repro.utils.clock.FakeClock` makes the queue fully
        deterministic.
    """

    def __init__(
        self,
        *,
        max_batch: int = 32,
        deadline_s: float = 0.005,
        max_pending: int | None = 1024,
        clock: Clock | None = None,
    ) -> None:
        if int(max_batch) < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch!r}")
        if float(deadline_s) < 0:
            raise ValidationError(f"deadline_s must be >= 0, got {deadline_s!r}")
        if max_pending is not None and int(max_pending) < 1:
            raise ValidationError(f"max_pending must be >= 1, got {max_pending!r}")
        self.max_batch = int(max_batch)
        self.deadline_s = float(deadline_s)
        self.max_pending = None if max_pending is None else int(max_pending)
        self._clock = clock
        self._groups: dict[Hashable, _Group] = {}
        self._pending = 0
        self._seq = itertools.count()

    # -- time ----------------------------------------------------------------
    def _now(self) -> float:
        clock = self._clock if self._clock is not None else get_clock()
        return clock.monotonic()

    # -- state ---------------------------------------------------------------
    @property
    def n_pending(self) -> int:
        """Requests currently waiting (across all groups)."""
        return self._pending

    @property
    def n_groups(self) -> int:
        """Distinct batch keys currently accumulating."""
        return len(self._groups)

    def next_deadline(self) -> float | None:
        """Clock reading at which the oldest group must flush (None = idle)."""
        if not self._groups:
            return None
        return min(g.oldest for g in self._groups.values()) + self.deadline_s

    # -- enqueue / flush -----------------------------------------------------
    def add(
        self,
        key: Hashable,
        payload: Any,
        *,
        request_id: str | None = None,
    ) -> tuple[PendingRequest, list[Batch]]:
        """Enqueue one request; returns it plus any batches its arrival filled.

        A returned non-empty batch list means the request's own group hit
        ``max_batch`` and flushed synchronously — the caller dispatches those
        batches immediately and must *not* wait for a deadline tick.

        Raises
        ------
        QueueFullError
            when ``max_pending`` requests are already waiting.
        """
        if self.max_pending is not None and self._pending >= self.max_pending:
            raise QueueFullError(
                f"batch queue full ({self._pending}/{self.max_pending} pending)"
            )
        now = self._now()
        req = PendingRequest(
            key=key,
            payload=payload,
            request_id=request_id,
            seq=next(self._seq),
            enqueued_at=now,
        )
        group = self._groups.setdefault(key, _Group())
        group.items.append(req)
        self._pending += 1
        flushed: list[Batch] = []
        if len(group.items) >= self.max_batch:
            flushed.append(self._flush_group(key, "full", now))
        return req, flushed

    def _flush_group(self, key: Hashable, reason: str, now: float) -> Batch:
        group = self._groups.pop(key)
        self._pending -= len(group.items)
        return Batch(
            key=key, items=tuple(group.items), reason=reason, flushed_at=now
        )

    def flush_due(self, now: float | None = None) -> list[Batch]:
        """Flush every group whose oldest request has reached its deadline.

        ``now`` defaults to the injected clock; passing it explicitly lets a
        driver flush *at* a computed deadline without consuming a clock read
        (and makes property tests exact).
        """
        if now is None:
            now = self._now()
        due = [
            key
            for key, group in self._groups.items()
            if group.oldest + self.deadline_s <= now
        ]
        return [self._flush_group(key, "deadline", now) for key in due]

    def flush_all(self, now: float | None = None) -> list[Batch]:
        """Drain every group regardless of age (shutdown path)."""
        if now is None:
            now = self._now()
        return [self._flush_group(key, "drain", now) for key in list(self._groups)]

    def __iter__(self) -> Iterator[PendingRequest]:
        """Iterate the waiting requests (observability/debugging aid)."""
        for group in self._groups.values():
            yield from group.items
