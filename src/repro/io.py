"""JSON serialization for systems and mappings.

Research workflows need to pin down *instances*: the exact ETC matrix,
HiPer-D system and mappings behind a reported number.  This module provides
a stable, human-readable JSON codec for:

- :class:`~repro.alloc.mapping.Mapping`,
- :class:`~repro.hiperd.model.HiperDSystem` (sensors, paths, coefficient
  tensor, latency limits, communication coefficients),

plus ``save_json``/``load_json`` helpers.  Every payload carries a ``"type"``
tag and a ``"version"`` so future format changes can stay compatible.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.alloc.mapping import Mapping
from repro.exceptions import ValidationError
from repro.hiperd.model import HiperDSystem, Path as HPath, Sensor

__all__ = [
    "mapping_to_dict",
    "mapping_from_dict",
    "system_to_dict",
    "system_from_dict",
    "save_json",
    "load_json",
    "save_mapping",
    "load_mapping",
    "save_system",
    "load_system",
]

_VERSION = 1


def mapping_to_dict(mapping: Mapping) -> dict:
    """Encode a :class:`Mapping` as a JSON-ready dict."""
    return {
        "type": "Mapping",
        "version": _VERSION,
        "n_machines": mapping.n_machines,
        "assignment": mapping.assignment.tolist(),
    }


def mapping_from_dict(data: dict) -> Mapping:
    """Decode a :class:`Mapping`; validates the type tag."""
    if data.get("type") != "Mapping":
        raise ValidationError(f"expected type 'Mapping', got {data.get('type')!r}")
    return Mapping(np.asarray(data["assignment"], dtype=np.int64), int(data["n_machines"]))


def system_to_dict(system: HiperDSystem) -> dict:
    """Encode a :class:`HiperDSystem` as a JSON-ready dict."""
    return {
        "type": "HiperDSystem",
        "version": _VERSION,
        "sensors": [{"name": s.name, "rate": s.rate} for s in system.sensors],
        "n_apps": system.n_apps,
        "n_machines": system.n_machines,
        "n_actuators": system.n_actuators,
        "paths": [
            {
                "driving_sensor": p.driving_sensor,
                "apps": list(p.apps),
                "terminal": list(p.terminal),
            }
            for p in system.paths
        ],
        "comp_coeffs": system.comp_coeffs.tolist(),
        "latency_limits": system.latency_limits.tolist(),
        "comm_coeffs": [
            {"edge": list(edge), "coeffs": vec.tolist()}
            for edge, vec in sorted(system.comm_coeffs.items())
        ],
    }


def system_from_dict(data: dict) -> HiperDSystem:
    """Decode a :class:`HiperDSystem`; all model validation re-runs."""
    if data.get("type") != "HiperDSystem":
        raise ValidationError(f"expected type 'HiperDSystem', got {data.get('type')!r}")
    return HiperDSystem(
        sensors=[Sensor(s["name"], float(s["rate"])) for s in data["sensors"]],
        n_apps=int(data["n_apps"]),
        n_machines=int(data["n_machines"]),
        n_actuators=int(data["n_actuators"]),
        paths=[
            HPath(
                int(p["driving_sensor"]),
                tuple(int(a) for a in p["apps"]),
                (str(p["terminal"][0]), int(p["terminal"][1])),
            )
            for p in data["paths"]
        ],
        comp_coeffs=np.asarray(data["comp_coeffs"], dtype=float),
        latency_limits=np.asarray(data["latency_limits"], dtype=float),
        comm_coeffs={
            (int(c["edge"][0]), int(c["edge"][1])): np.asarray(c["coeffs"], dtype=float)
            for c in data.get("comm_coeffs", [])
        },
    )


def save_json(data: dict, path) -> None:
    """Write a payload dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", "utf-8")


def load_json(path) -> dict:
    """Read a JSON payload dict."""
    return json.loads(Path(path).read_text("utf-8"))


def save_mapping(mapping: Mapping, path) -> None:
    """Write a mapping to ``path`` as JSON."""
    save_json(mapping_to_dict(mapping), path)


def load_mapping(path) -> Mapping:
    """Read a mapping previously written by :func:`save_mapping`."""
    return mapping_from_dict(load_json(path))


def save_system(system: HiperDSystem, path) -> None:
    """Write a HiPer-D system to ``path`` as JSON."""
    save_json(system_to_dict(system), path)


def load_system(path) -> HiperDSystem:
    """Read a system previously written by :func:`save_system`."""
    return system_from_dict(load_json(path))
