"""JSON serialization for systems and mappings.

Research workflows need to pin down *instances*: the exact ETC matrix,
HiPer-D system and mappings behind a reported number.  This module provides
a stable, human-readable JSON codec for:

- :class:`~repro.alloc.mapping.Mapping`,
- :class:`~repro.hiperd.model.HiperDSystem` (sensors, paths, coefficient
  tensor, latency limits, communication coefficients),

plus every result object of the analysis APIs through one registry-backed
codec (:func:`result_to_dict` / :func:`result_from_dict` /
:func:`save_result` / :func:`load_result`): ``RadiusResult``,
``MetricResult``, ``AllocationRobustness``, ``HiperdRobustness``,
``ConstraintSet``, the engine's batch results and the resilience objects
(``PerturbationSchedule``, ``ScheduleRunResult``, ``ResilienceMetrics``,
``ResilienceReport``, ``ResilienceExperimentResult``) all round-trip
through their own ``to_dict``/``from_dict`` pair, dispatched on the
payload's ``"type"`` tag.

``save_json``/``load_json`` are the raw helpers.  Every payload carries a
``"type"`` tag and a ``"version"`` so future format changes can stay
compatible.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.alloc.mapping import Mapping
from repro.exceptions import ValidationError
from repro.hiperd.model import HiperDSystem, Path as HPath, Sensor

__all__ = [
    "mapping_to_dict",
    "mapping_from_dict",
    "system_to_dict",
    "system_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_json",
    "load_json",
    "save_mapping",
    "load_mapping",
    "save_system",
    "load_system",
    "save_result",
    "load_result",
]

_VERSION = 1


def _result_registry() -> dict:
    """Type-tag -> class map of every ``to_dict``-capable result object.

    Built lazily so :mod:`repro.io` stays importable without pulling the
    engine (and its process-pool machinery) at module import time.
    """
    from repro.alloc.robustness import AllocationRobustness
    from repro.core.metric import MetricResult
    from repro.core.radius import RadiusResult
    from repro.engine import (
        AllocationBatchResult,
        BatchRobustnessResult,
        FailureRecord,
        HiperdBatchResult,
    )
    from repro.faults.schedule import PerturbationSchedule
    from repro.hiperd.constraints import ConstraintSet
    from repro.hiperd.robustness import HiperdRobustness
    from repro.resilience.evaluate import ResilienceReport
    from repro.resilience.experiment import ResilienceExperimentResult
    from repro.resilience.metrics import ResilienceMetrics
    from repro.sim.schedule_run import ScheduleRunResult

    return {
        "RadiusResult": RadiusResult,
        "MetricResult": MetricResult,
        "AllocationRobustness": AllocationRobustness,
        "HiperdRobustness": HiperdRobustness,
        "ConstraintSet": ConstraintSet,
        "AllocationBatchResult": AllocationBatchResult,
        "HiperdBatchResult": HiperdBatchResult,
        "BatchRobustnessResult": BatchRobustnessResult,
        "FailureRecord": FailureRecord,
        "PerturbationSchedule": PerturbationSchedule,
        "ScheduleRunResult": ScheduleRunResult,
        "ResilienceMetrics": ResilienceMetrics,
        "ResilienceReport": ResilienceReport,
        "ResilienceExperimentResult": ResilienceExperimentResult,
    }


def result_to_dict(result) -> dict:
    """Encode any registered result object via its own ``to_dict``."""
    registry = _result_registry()
    if type(result).__name__ not in registry:
        raise ValidationError(
            f"unserializable result type {type(result).__name__!r}; expected one "
            f"of {sorted(registry)}"
        )
    return result.to_dict()


def result_from_dict(data: dict):
    """Decode a result payload by its ``"type"`` tag."""
    registry = _result_registry()
    tag = data.get("type")
    if tag not in registry:
        raise ValidationError(
            f"unknown result type {tag!r}; expected one of {sorted(registry)}"
        )
    return registry[tag].from_dict(data)


def mapping_to_dict(mapping: Mapping) -> dict:
    """Encode a :class:`Mapping` as a JSON-ready dict."""
    return {
        "type": "Mapping",
        "version": _VERSION,
        "n_machines": mapping.n_machines,
        "assignment": mapping.assignment.tolist(),
    }


def mapping_from_dict(data: dict) -> Mapping:
    """Decode a :class:`Mapping`; validates the type tag."""
    if data.get("type") != "Mapping":
        raise ValidationError(f"expected type 'Mapping', got {data.get('type')!r}")
    return Mapping(np.asarray(data["assignment"], dtype=np.int64), int(data["n_machines"]))


def system_to_dict(system: HiperDSystem) -> dict:
    """Encode a :class:`HiperDSystem` as a JSON-ready dict."""
    return {
        "type": "HiperDSystem",
        "version": _VERSION,
        "sensors": [{"name": s.name, "rate": s.rate} for s in system.sensors],
        "n_apps": system.n_apps,
        "n_machines": system.n_machines,
        "n_actuators": system.n_actuators,
        "paths": [
            {
                "driving_sensor": p.driving_sensor,
                "apps": list(p.apps),
                "terminal": list(p.terminal),
            }
            for p in system.paths
        ],
        "comp_coeffs": system.comp_coeffs.tolist(),
        "latency_limits": system.latency_limits.tolist(),
        "comm_coeffs": [
            {"edge": list(edge), "coeffs": vec.tolist()}
            for edge, vec in sorted(system.comm_coeffs.items())
        ],
    }


def system_from_dict(data: dict) -> HiperDSystem:
    """Decode a :class:`HiperDSystem`; all model validation re-runs."""
    if data.get("type") != "HiperDSystem":
        raise ValidationError(f"expected type 'HiperDSystem', got {data.get('type')!r}")
    return HiperDSystem(
        sensors=[Sensor(s["name"], float(s["rate"])) for s in data["sensors"]],
        n_apps=int(data["n_apps"]),
        n_machines=int(data["n_machines"]),
        n_actuators=int(data["n_actuators"]),
        paths=[
            HPath(
                int(p["driving_sensor"]),
                tuple(int(a) for a in p["apps"]),
                (str(p["terminal"][0]), int(p["terminal"][1])),
            )
            for p in data["paths"]
        ],
        comp_coeffs=np.asarray(data["comp_coeffs"], dtype=float),
        latency_limits=np.asarray(data["latency_limits"], dtype=float),
        comm_coeffs={
            (int(c["edge"][0]), int(c["edge"][1])): np.asarray(c["coeffs"], dtype=float)
            for c in data.get("comm_coeffs", [])
        },
    )


def save_json(data: dict, path) -> None:
    """Write a payload dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", "utf-8")


def load_json(path) -> dict:
    """Read a JSON payload dict."""
    return json.loads(Path(path).read_text("utf-8"))


def save_mapping(mapping: Mapping, path) -> None:
    """Write a mapping to ``path`` as JSON."""
    save_json(mapping_to_dict(mapping), path)


def load_mapping(path) -> Mapping:
    """Read a mapping previously written by :func:`save_mapping`."""
    return mapping_from_dict(load_json(path))


def save_system(system: HiperDSystem, path) -> None:
    """Write a HiPer-D system to ``path`` as JSON."""
    save_json(system_to_dict(system), path)


def load_system(path) -> HiperDSystem:
    """Read a system previously written by :func:`save_system`."""
    return system_from_dict(load_json(path))


def save_result(result, path) -> None:
    """Write any registered analysis result to ``path`` as JSON."""
    save_json(result_to_dict(result), path)


def load_result(path):
    """Read a result previously written by :func:`save_result`."""
    return result_from_dict(load_json(path))
