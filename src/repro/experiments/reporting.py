"""Plain-text reports regenerating the paper's figures and tables.

The paper's Figures 3 and 4 are scatter plots; here they are rendered as the
underlying series (binned summary rows) plus an ASCII scatter, so the
benchmark harness can "print the same rows/series the paper reports" without
a plotting stack.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.experiment1 import ExperimentOneResult, cluster_analysis
from repro.experiments.experiment2 import (
    ExperimentTwoResult,
    find_ab_pair,
    find_flat_band,
)
from repro.utils.tables import ascii_scatter, format_table

__all__ = ["report_figure3", "report_figure4", "report_table2"]


def _binned_rows(x: np.ndarray, y: np.ndarray, n_bins: int = 8) -> list[list]:
    """Summary rows: per x-bin, the count and the y min/median/max."""
    edges = np.quantile(x, np.linspace(0, 1, n_bins + 1))
    rows = []
    for b in range(n_bins):
        lo, hi = edges[b], edges[b + 1]
        sel = (x >= lo) & (x <= hi if b == n_bins - 1 else x < hi)
        if not sel.any():
            continue
        ys = y[sel]
        rows.append(
            [f"[{lo:.4g}, {hi:.4g}]", int(sel.sum()), float(ys.min()),
             float(np.median(ys)), float(ys.max())]
        )
    return rows


def report_figure3(result: ExperimentOneResult) -> str:
    """Figure 3: robustness against makespan, plus the cluster structure."""
    lines = [
        "=== Figure 3 — robustness vs makespan "
        f"({result.n_mappings} random mappings, tau={result.tau}) ===",
        "",
        format_table(
            ["makespan bin", "n", "rho min", "rho median", "rho max"],
            _binned_rows(result.makespans, result.robustness),
            title="series: robustness by makespan bin",
        ),
        "",
    ]
    ca = cluster_analysis(result)
    rows = [
        [int(x), int(n1), float(res), int(nout)]
        for x, n1, res, nout in zip(
            ca.xs, ca.s1_sizes, ca.s1_max_residual, ca.outlier_sizes
        )
    ]
    lines.append(
        format_table(
            ["x = n(m(C_orig))", "|S1(x)|", "max |rho - line|", "outliers"],
            rows,
            title="cluster structure: rho = (tau-1) M / sqrt(x) on S1(x)",
        )
    )
    lines.append(f"all outliers on/below their x-line: {ca.outliers_below_line}")
    lines.append("")
    # The companion view the paper describes but does not show: robustness
    # against the load-balance index.
    finite_lbi = np.isfinite(result.load_balance)
    lines.append(
        format_table(
            ["load-balance bin", "n", "rho min", "rho median", "rho max"],
            _binned_rows(
                result.load_balance[finite_lbi], result.robustness[finite_lbi], 6
            ),
            title='series: robustness by load-balance-index bin (the "not shown" plot)',
        )
    )
    lines.append("")
    lines.append(
        ascii_scatter(
            result.makespans,
            result.robustness,
            xlabel="makespan",
            ylabel="robustness",
        )
    )
    # The paper's companion observation: similar makespan, sharply different
    # robustness.
    order = np.argsort(result.makespans)
    ms, rho = result.makespans[order], result.robustness[order]
    window = max(result.n_mappings // 50, 2)
    spreads = [
        (float(rho[k : k + window].max() / max(rho[k : k + window].min(), 1e-12)))
        for k in range(0, len(ms) - window)
    ]
    lines.append(
        f"max robustness ratio among mappings within a {window}-mapping "
        f"makespan window: {max(spreads):.2f}x"
    )
    return "\n".join(lines)


def report_figure4(result: ExperimentTwoResult) -> str:
    """Figure 4: robustness against slack, plus the A/B pair and flat band."""
    feas = result.feasible
    lines = [
        "=== Figure 4 — robustness vs slack "
        f"({result.n_mappings} random mappings; {int(feas.sum())} feasible) ===",
        "",
        format_table(
            ["slack bin", "n", "rho min", "rho median", "rho max"],
            _binned_rows(result.slack[feas], result.robustness[feas]),
            title="series: robustness by slack bin (feasible mappings)",
        ),
        "",
        ascii_scatter(
            result.slack[feas],
            result.robustness[feas],
            xlabel="slack",
            ylabel="robustness",
        ),
    ]
    try:
        pair = find_ab_pair(result)
        lines.append(
            format_table(
                ["", "mapping A", "mapping B"],
                [
                    ["robustness", pair.robustness_a, pair.robustness_b],
                    ["slack", pair.slack_a, pair.slack_b],
                ],
                title=f"Table-2-style pair (robustness ratio {pair.ratio:.2f}x at "
                f"|slack gap| = {abs(pair.slack_b - pair.slack_a):.4f})",
            )
        )
    except ValueError as exc:
        lines.append(f"Table-2-style pair: not found ({exc})")
    try:
        band = find_flat_band(result)
        lines.append(
            f"flat band: {band.size} mappings with identical robustness "
            f"~{band.robustness:.0f} (dominant binding constraint "
            f"{band.binding_name}) across slack "
            f"[{band.slack_min:.3f}, {band.slack_max:.3f}]"
        )
    except ValueError as exc:
        lines.append(f"flat band: not detected at this sample size ({exc})")
    return "\n".join(lines)


def report_table2(measured: dict, published: dict) -> str:
    """Table 2: paper-vs-measured comparison for mappings A and B.

    ``measured``/``published`` map "A"/"B" to dicts with keys
    ``robustness``, ``slack``, ``lambda_star``.
    """
    rows = []
    for which in ("A", "B"):
        pub, got = published[which], measured[which]
        rows.append([f"{which} robustness", pub["robustness"], got["robustness"]])
        rows.append([f"{which} slack", pub["slack"], round(got["slack"], 4)])
        rows.append(
            [
                f"{which} lambda*",
                str(tuple(round(float(v)) for v in pub["lambda_star"])),
                str(tuple(round(float(v), 1) for v in got["lambda_star"])),
            ]
        )
    ratio_pub = published["B"]["robustness"] / published["A"]["robustness"]
    ratio_got = measured["B"]["robustness"] / measured["A"]["robustness"]
    rows.append(["robustness ratio B/A", round(ratio_pub, 3), round(ratio_got, 3)])
    return format_table(
        ["quantity", "paper", "measured"],
        rows,
        title="=== Table 2 — mappings A and B (paper vs reconstruction) ===",
    )
