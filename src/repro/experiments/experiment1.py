"""Experiment 1 (paper Section 4.2 / Figure 3): independent allocation.

1000 random mappings of 20 applications onto 5 machines; ETC values from the
CVB Gamma method (mean 10, task and machine heterogeneity 0.7); tolerance
``tau = 1.2``.  Each mapping is evaluated for robustness (Eq. 7), makespan
and load-balance index.

Beyond regenerating the scatter, :func:`cluster_analysis` verifies the
paper's structural explanation of Figure 3: for mappings whose
makespan-determining machine also has the most applications (the set
``S1(x)``), robustness is exactly ``(tau - 1) * M_orig / sqrt(x)`` — a line
through the origin per ``x`` — and every other mapping (the outliers,
``S2(x) - S1(x)``) falls strictly below its ``x``-line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.generators import random_assignments
from repro.alloc.makespan import batch_finishing_times, batch_load_balance_index
from repro.engine import RobustnessEngine
from repro.etcgen.cvb import cvb_etc_matrix
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ExperimentOneResult", "run_experiment_one", "cluster_analysis"]


@dataclass(frozen=True)
class ExperimentOneResult:
    """All per-mapping measurements of the Figure 3 experiment."""

    etc: np.ndarray
    assignments: np.ndarray
    tau: float
    #: predicted makespan per mapping
    makespans: np.ndarray
    #: robustness metric (Eq. 7) per mapping
    robustness: np.ndarray
    #: load-balance index per mapping (Section 4.2)
    load_balance: np.ndarray
    #: x = n(m(C_orig)): applications on the makespan-determining machine
    group_x: np.ndarray
    #: the largest per-machine application count of each mapping
    max_count: np.ndarray

    @property
    def in_s1(self) -> np.ndarray:
        """Mask of mappings in ``S1(x)`` (makespan machine has the most apps)."""
        return self.group_x == self.max_count

    @property
    def n_mappings(self) -> int:
        return self.assignments.shape[0]


def run_experiment_one(
    *,
    n_tasks: int = 20,
    n_machines: int = 5,
    n_mappings: int = 1000,
    tau: float = 1.2,
    mean_task: float = 10.0,
    task_het: float = 0.7,
    machine_het: float = 0.7,
    seed=None,
    backend=None,
) -> ExperimentOneResult:
    """Run the Section 4.2 experiment with the paper's default parameters.

    ``backend`` selects the engine's execution backend (see
    :func:`repro.engine.backends.resolve_backend`); the allocation metric is
    closed-form, so it only matters for engines extended with numeric solves.
    """
    n_tasks = check_positive_int(n_tasks, "n_tasks")
    n_machines = check_positive_int(n_machines, "n_machines")
    n_mappings = check_positive_int(n_mappings, "n_mappings")
    tau = check_positive(tau, "tau")
    rng_etc, rng_maps = spawn_rngs(seed, 2)

    etc = cvb_etc_matrix(
        n_tasks,
        n_machines,
        mean_task=mean_task,
        task_het=task_het,
        machine_het=machine_het,
        seed=rng_etc,
    )
    assignments = random_assignments(n_mappings, n_tasks, n_machines, seed=rng_maps)

    f = batch_finishing_times(assignments, etc)
    makespans = f.max(axis=1)
    rho = RobustnessEngine(backend=backend).evaluate_allocation(assignments, etc, tau).values
    lbi = batch_load_balance_index(assignments, etc)

    counts = np.zeros_like(f)
    np.add.at(
        counts,
        (np.repeat(np.arange(n_mappings), n_tasks), assignments.ravel()),
        1.0,
    )
    makespan_machine = f.argmax(axis=1)
    group_x = counts[np.arange(n_mappings), makespan_machine].astype(np.int64)
    max_count = counts.max(axis=1).astype(np.int64)

    return ExperimentOneResult(
        etc=etc,
        assignments=assignments,
        tau=tau,
        makespans=makespans,
        robustness=rho,
        load_balance=lbi,
        group_x=group_x,
        max_count=max_count,
    )


@dataclass(frozen=True)
class ClusterAnalysis:
    """Verification of the Figure 3 linear-cluster structure."""

    #: distinct x values observed
    xs: np.ndarray
    #: number of S1(x) mappings per x
    s1_sizes: np.ndarray
    #: max |rho - (tau-1) M / sqrt(x)| over S1(x), per x (should be ~0)
    s1_max_residual: np.ndarray
    #: number of outliers (S2(x) - S1(x)) per x
    outlier_sizes: np.ndarray
    #: True when every outlier sits strictly below its S1(x) line
    outliers_below_line: bool


def cluster_analysis(result: ExperimentOneResult) -> ClusterAnalysis:
    """Check the paper's explanation of the Figure 3 clusters (Section 4.2)."""
    slope_base = result.tau - 1.0
    line = slope_base * result.makespans / np.sqrt(result.group_x)
    in_s1 = result.in_s1

    xs = np.unique(result.group_x)
    s1_sizes = np.empty(xs.size, dtype=np.int64)
    outlier_sizes = np.empty(xs.size, dtype=np.int64)
    s1_max_residual = np.zeros(xs.size)
    below = True
    for k, x in enumerate(xs):
        sel = result.group_x == x
        s1 = sel & in_s1
        out = sel & ~in_s1
        s1_sizes[k] = int(s1.sum())
        outlier_sizes[k] = int(out.sum())
        if s1.any():
            s1_max_residual[k] = float(
                np.max(np.abs(result.robustness[s1] - line[s1]))
            )
        if out.any():
            # Outliers are bounded above by their own x-line and strictly
            # below it (another machine binds), modulo float tolerance.
            below = below and bool(
                np.all(result.robustness[out] <= line[out] + 1e-9)
            )
    return ClusterAnalysis(
        xs=xs,
        s1_sizes=s1_sizes,
        s1_max_residual=s1_max_residual,
        outlier_sizes=outlier_sizes,
        outliers_below_line=below,
    )
