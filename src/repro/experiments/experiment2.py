"""Experiment 2 (paper Section 4.3 / Figure 4 / Table 2): HiPer-D.

A generated Section-4.3 system (19 paths, 3 sensors, 20 applications, 5
machines), 1000 random mappings, each evaluated for robustness (Eq. 11) and
system-wide percentage slack at the initial loads (962, 380, 240).

Helpers reproduce the paper's two headline observations:

- :func:`find_ab_pair` — the Table-2 phenomenon: two mappings with nearly
  equal slack whose robustness differs by a large factor;
- :func:`find_flat_band` — the Figure-4 phenomenon: a set of mappings with a
  wide range of slack values but (nearly) the same robustness, i.e. slack
  cannot distinguish them while the metric pins them to one binding
  constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import RobustnessEngine
from repro.hiperd.generators import (
    PAPER_INITIAL_LOAD,
    generate_system,
    random_hiperd_mappings,
)
from repro.hiperd.model import HiperDSystem
from repro.utils.rng import spawn_rngs
from repro.utils.validation import check_positive_int

__all__ = [
    "ExperimentTwoResult",
    "run_experiment_two",
    "find_ab_pair",
    "find_flat_band",
]


@dataclass(frozen=True)
class ExperimentTwoResult:
    """All per-mapping measurements of the Figure 4 experiment."""

    system: HiperDSystem
    assignments: np.ndarray
    initial_load: np.ndarray
    #: robustness metric (Eq. 11, floored) per mapping
    robustness: np.ndarray
    #: system-wide percentage slack per mapping
    slack: np.ndarray
    #: name of each mapping's binding constraint
    binding_names: tuple[str, ...]
    #: kind of each mapping's binding constraint ("comp"/"comm"/"latency")
    binding_kinds: tuple[str, ...]

    @property
    def feasible(self) -> np.ndarray:
        """Mask of mappings satisfying all QoS constraints at the initial load."""
        return self.slack > 0

    @property
    def n_mappings(self) -> int:
        return self.assignments.shape[0]


def run_experiment_two(
    *,
    n_mappings: int = 1000,
    initial_load=PAPER_INITIAL_LOAD,
    seed=None,
    backend=None,
    **system_kwargs,
) -> ExperimentTwoResult:
    """Run the Section 4.3 experiment.

    ``backend`` selects the engine's execution backend (closed-form HiPer-D
    evaluation never fans out, so it is a forward-compatibility hook).
    Extra keyword arguments are forwarded to
    :func:`repro.hiperd.generators.generate_system` (e.g. ``n_paths``,
    ``target_fraction``).
    """
    n_mappings = check_positive_int(n_mappings, "n_mappings")
    rng_sys, rng_maps = spawn_rngs(seed, 2)
    system = generate_system(seed=rng_sys, **system_kwargs)
    mappings = random_hiperd_mappings(system, n_mappings, seed=rng_maps)
    load = np.asarray(initial_load, dtype=float)

    batch = RobustnessEngine(backend=backend).evaluate_hiperd(system, mappings, load)

    return ExperimentTwoResult(
        system=system,
        assignments=np.array([m.assignment for m in mappings]),
        initial_load=load,
        robustness=batch.values,
        slack=batch.slacks,
        binding_names=batch.binding_names,
        binding_kinds=batch.binding_kinds,
    )


@dataclass(frozen=True)
class ABPair:
    """A Table-2-style pair: similar slack, very different robustness."""

    index_a: int
    index_b: int
    robustness_a: float
    robustness_b: float
    slack_a: float
    slack_b: float

    @property
    def ratio(self) -> float:
        return self.robustness_b / self.robustness_a


def find_ab_pair(
    result: ExperimentTwoResult,
    *,
    slack_tolerance: float = 0.01,
    min_robustness: float = 1.0,
) -> ABPair:
    """Find the feasible pair with the largest robustness ratio among pairs
    whose slacks differ by at most ``slack_tolerance`` (B is the more robust
    of the pair, as in the paper's Table 2)."""
    feas = np.flatnonzero(result.feasible & (result.robustness >= min_robustness))
    if feas.size < 2:
        raise ValueError("not enough feasible mappings to form a pair")
    order = feas[np.argsort(result.slack[feas])]
    best: ABPair | None = None
    sl = result.slack
    rho = result.robustness
    # Sorted sweep: for each mapping, scan forward while slack stays within
    # tolerance (O(n k) with k the window size).
    for ii in range(order.size):
        i = order[ii]
        jj = ii + 1
        while jj < order.size and sl[order[jj]] - sl[i] <= slack_tolerance:
            j = order[jj]
            lo, hi = (i, j) if rho[i] <= rho[j] else (j, i)
            pair = ABPair(
                index_a=int(lo),
                index_b=int(hi),
                robustness_a=float(rho[lo]),
                robustness_b=float(rho[hi]),
                slack_a=float(sl[lo]),
                slack_b=float(sl[hi]),
            )
            if best is None or pair.ratio > best.ratio:
                best = pair
            jj += 1
    assert best is not None
    return best


@dataclass(frozen=True)
class FlatBand:
    """A set of mappings with (nearly) equal robustness across a slack range."""

    indices: np.ndarray
    robustness: float
    slack_min: float
    slack_max: float
    binding_name: str

    @property
    def size(self) -> int:
        return self.indices.size

    @property
    def slack_range(self) -> float:
        return self.slack_max - self.slack_min


def find_flat_band(
    result: ExperimentTwoResult,
    *,
    min_size: int = 5,
) -> FlatBand:
    """Find the Figure-4 flat band: the group of feasible mappings with
    *identical* robustness (Eq. 11 is floored, so ties are exact) spanning
    the widest slack range.

    This is the paper's "set of mappings with slack values ranging from
    approximately 0.2 to approximately 0.5, but ... the same robustness
    value": the binding constraint pins the metric while the rest of the
    mapping — and hence the slack — varies.
    """
    feas = np.flatnonzero(result.feasible)
    if feas.size == 0:
        raise ValueError("no feasible mappings to form a band")
    groups: dict[float, list[int]] = {}
    for k in feas:
        groups.setdefault(float(result.robustness[k]), []).append(int(k))
    best: FlatBand | None = None
    for rho, idxs in groups.items():
        if len(idxs) < min_size:
            continue
        idx = np.asarray(idxs)
        names = [result.binding_names[k] for k in idxs]
        dominant = max(set(names), key=names.count)
        band = FlatBand(
            indices=idx,
            robustness=rho,
            slack_min=float(result.slack[idx].min()),
            slack_max=float(result.slack[idx].max()),
            binding_name=dominant,
        )
        if best is None or band.slack_range > best.slack_range:
            best = band
    if best is None:
        raise ValueError(f"no robustness group of size >= {min_size}")
    return best
