"""Experiment pipelines regenerating the paper's Section 4 results.

- :mod:`~repro.experiments.experiment1` — E1/E1b: the independent-allocation
  study (Figure 3: robustness vs makespan; the load-balance-index view; the
  ``S1(x)`` linear-cluster structure).
- :mod:`~repro.experiments.experiment2` — E2/E3: the HiPer-D study (Figure 4:
  robustness vs slack; Table 2: the A/B pair).
- :mod:`~repro.experiments.reporting` — plain-text rendering of the figures
  (as series + ASCII scatter) and tables.
"""

from repro.experiments.experiment1 import (
    ExperimentOneResult,
    cluster_analysis,
    run_experiment_one,
)
from repro.experiments.experiment2 import (
    ExperimentTwoResult,
    find_ab_pair,
    find_flat_band,
    run_experiment_two,
)
from repro.experiments.reporting import (
    report_figure3,
    report_figure4,
    report_table2,
)

__all__ = [
    "ExperimentOneResult",
    "run_experiment_one",
    "cluster_analysis",
    "ExperimentTwoResult",
    "run_experiment_two",
    "find_ab_pair",
    "find_flat_band",
    "report_figure3",
    "report_figure4",
    "report_table2",
]
