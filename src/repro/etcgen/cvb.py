"""Coefficient-of-Variation-Based (CVB) ETC matrix generation.

The two-stage method of Ali et al. 2000 ([3] in the paper), used by both
experiments in Section 4 ("mean ... 10, task heterogeneity ... 0.7, machine
heterogeneity ... 0.7"):

1. Sample a *task vector* ``q`` of length ``n_tasks``: ``q_i ~
   Gamma(mean=mean_task, cov=task_het)`` — how different the tasks are from
   each other.
2. For each task ``i``, fill row ``i`` of the ETC matrix with
   ``C[i, j] ~ Gamma(mean=q_i, cov=machine_het)`` — how differently the
   machines execute a given task.

The resulting ``C[i, j]`` is the estimated time to compute application
``a_i`` on machine ``m_j``.
"""

from __future__ import annotations

import numpy as np

from repro.etcgen.gamma import gamma_mean_cov
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["cvb_etc_matrix"]


def cvb_etc_matrix(
    n_tasks: int,
    n_machines: int,
    *,
    mean_task: float = 10.0,
    task_het: float = 0.7,
    machine_het: float = 0.7,
    seed: int | None | np.random.Generator = None,
) -> np.ndarray:
    """Generate an ``(n_tasks, n_machines)`` ETC matrix with the CVB method.

    Defaults match the paper's Section 4.2 experiment (mean 10,
    heterogeneities 0.7).

    Returns
    -------
    ndarray of shape ``(n_tasks, n_machines)`` with strictly positive entries.
    """
    n_tasks = check_positive_int(n_tasks, "n_tasks")
    n_machines = check_positive_int(n_machines, "n_machines")
    mean_task = check_positive(mean_task, "mean_task")
    if task_het < 0 or machine_het < 0:
        raise ValueError("heterogeneities must be >= 0")
    rng = ensure_rng(seed)
    q = np.atleast_1d(gamma_mean_cov(mean_task, task_het, size=n_tasks, seed=rng))
    # Guard against the (measure-zero but numerically possible) q_i == 0.
    tiny = np.finfo(float).tiny
    q = np.maximum(q, tiny)
    etc = np.empty((n_tasks, n_machines), dtype=float)
    if machine_het == 0.0:
        etc[:] = q[:, None]
        return etc
    alpha = 1.0 / (machine_het * machine_het)
    # Vectorized second stage: Gamma(shape=alpha, scale=q_i * machine_het^2)
    scales = q * machine_het * machine_het
    etc[:] = rng.gamma(shape=alpha, size=(n_tasks, n_machines)) * scales[:, None]
    np.maximum(etc, tiny, out=etc)
    return etc
