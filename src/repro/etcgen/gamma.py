"""Gamma sampling parameterized by mean and coefficient of variation.

The heterogeneity of a set of numbers is defined in the paper (Section 4.2)
as "the standard deviation divided by the mean" — the coefficient of
variation (COV).  A Gamma distribution with shape ``alpha`` and scale
``theta`` has mean ``alpha * theta`` and COV ``1/sqrt(alpha)``; inverting,

    alpha = 1 / cov**2,        theta = mean * cov**2

yields a Gamma with exactly the requested mean and COV.  This is the
primitive of the CVB generation method of Ali et al. 2000 ([3] in the
paper).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = ["gamma_mean_cov"]


def gamma_mean_cov(
    mean: float,
    cov: float,
    size=None,
    seed: int | None | np.random.Generator = None,
):
    """Sample Gamma variates with the given mean and coefficient of variation.

    Parameters
    ----------
    mean:
        Target mean (> 0).
    cov:
        Target coefficient of variation (>= 0); ``cov == 0`` returns the
        constant ``mean`` (the degenerate limit of the Gamma family).
    size:
        Numpy-style output shape (``None`` for a scalar).
    seed:
        Seed or generator.

    Returns
    -------
    float or ndarray of the requested shape.
    """
    mean = check_positive(mean, "mean")
    cov = float(cov)
    if cov < 0 or not np.isfinite(cov):
        raise ValueError(f"cov must be finite and >= 0, got {cov}")
    if cov == 0.0:
        if size is None:
            return float(mean)
        return np.full(size, float(mean))
    rng = ensure_rng(seed)
    alpha = 1.0 / (cov * cov)
    theta = mean * cov * cov
    out = rng.gamma(shape=alpha, scale=theta, size=size)
    if size is None:
        return float(out)
    return out
