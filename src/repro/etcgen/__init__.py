"""Heterogeneous workload (ETC / coefficient) generation.

The paper's experiments sample estimated-time-to-compute (ETC) values and
HiPer-D complexity coefficients "from a Gamma distribution" with given mean
and *heterogeneity* (standard deviation over mean), "see [3] for a
description" — Ali et al., *Representing task and machine heterogeneities
for heterogeneous computing systems*, 2000.  This package implements:

- :func:`~repro.etcgen.gamma.gamma_mean_cov` — Gamma sampling parameterized
  by (mean, coefficient of variation);
- :func:`~repro.etcgen.cvb.cvb_etc_matrix` — the Coefficient-of-Variation-
  Based (CVB) two-stage ETC generation of [3];
- :func:`~repro.etcgen.range_based.range_based_etc_matrix` — the older
  range-based method (Braun et al. [7]) as a baseline;
- :mod:`~repro.etcgen.consistency` — consistent / semi-consistent /
  inconsistent ETC shaping, and heterogeneity measurement.
"""

from repro.etcgen.gamma import gamma_mean_cov
from repro.etcgen.cvb import cvb_etc_matrix
from repro.etcgen.range_based import range_based_etc_matrix
from repro.etcgen.consistency import (
    heterogeneity,
    make_consistent,
    make_semi_consistent,
    task_machine_heterogeneity,
)

__all__ = [
    "gamma_mean_cov",
    "cvb_etc_matrix",
    "range_based_etc_matrix",
    "heterogeneity",
    "make_consistent",
    "make_semi_consistent",
    "task_machine_heterogeneity",
]
