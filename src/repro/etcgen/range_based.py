"""Range-based ETC matrix generation (Braun et al. [7] style).

The older alternative to the CVB method: task magnitudes are drawn uniformly
from ``[1, r_task]`` and each row is scaled by uniform machine multipliers
from ``[1, r_machine]``.  Provided as a baseline workload generator so
mapping heuristics and robustness studies can be exercised on both
generation models.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["range_based_etc_matrix"]


def range_based_etc_matrix(
    n_tasks: int,
    n_machines: int,
    *,
    r_task: float = 100.0,
    r_machine: float = 10.0,
    seed: int | None | np.random.Generator = None,
) -> np.ndarray:
    """Generate an ``(n_tasks, n_machines)`` ETC matrix with the range method.

    ``C[i, j] = tau_i * u_ij`` with ``tau_i ~ U[1, r_task]`` and
    ``u_ij ~ U[1, r_machine]``.
    """
    n_tasks = check_positive_int(n_tasks, "n_tasks")
    n_machines = check_positive_int(n_machines, "n_machines")
    if r_task < 1 or r_machine < 1:
        raise ValueError("r_task and r_machine must be >= 1")
    rng = ensure_rng(seed)
    tau = rng.uniform(1.0, r_task, size=n_tasks)
    u = rng.uniform(1.0, r_machine, size=(n_tasks, n_machines))
    return tau[:, None] * u
