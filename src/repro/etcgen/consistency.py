"""ETC consistency shaping and heterogeneity measurement.

Heterogeneous-computing studies distinguish *consistent* ETC matrices (if
machine A is faster than B for one task it is faster for all), *inconsistent*
ones (no such order) and *semi-consistent* ones (a consistent sub-matrix).
The paper's experiments use inconsistent matrices (raw CVB output); the
shaping helpers here let users reproduce the other standard regimes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import as_2d_float_array, check_probability

__all__ = [
    "heterogeneity",
    "task_machine_heterogeneity",
    "make_consistent",
    "make_semi_consistent",
]


def heterogeneity(values) -> float:
    """Coefficient of variation (sigma / mean) of a set of numbers.

    The paper (Section 4.2): "the heterogeneity of a set of numbers is the
    standard deviation divided by the mean".  Uses the population standard
    deviation.  Returns ``nan`` for an empty set and ``inf`` when the mean is
    zero but values are not.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        return float("nan")
    mean = float(arr.mean())
    std = float(arr.std())
    if mean == 0.0:
        return 0.0 if std == 0.0 else float("inf")
    return std / abs(mean)


def task_machine_heterogeneity(etc) -> tuple[float, float]:
    """Measure (task heterogeneity, machine heterogeneity) of an ETC matrix.

    Task heterogeneity is the COV of the per-task row means; machine
    heterogeneity is the mean over tasks of each row's COV — the empirical
    counterparts of the two CVB generation stages.
    """
    etc = as_2d_float_array(etc, "etc")
    row_means = etc.mean(axis=1)
    task_het = heterogeneity(row_means)
    with np.errstate(invalid="ignore", divide="ignore"):
        row_cov = etc.std(axis=1) / np.where(row_means != 0, row_means, np.nan)
    machine_het = float(np.nanmean(row_cov))
    return task_het, machine_het


def make_consistent(etc) -> np.ndarray:
    """Return a consistent copy of ``etc``: every row sorted ascending.

    After sorting, machine 0 is uniformly the fastest and machine ``m-1`` the
    slowest for every task.
    """
    etc = as_2d_float_array(etc, "etc")
    return np.sort(etc, axis=1)


def make_semi_consistent(etc, fraction: float = 0.5, seed=None) -> np.ndarray:
    """Return a semi-consistent copy: a random ``fraction`` of the columns is
    made mutually consistent (sorted as a block), the rest left inconsistent.
    """
    etc = as_2d_float_array(etc, "etc").copy()
    fraction = check_probability(fraction, "fraction")
    rng = ensure_rng(seed)
    m = etc.shape[1]
    k = int(round(fraction * m))
    if k <= 1:
        return etc
    cols = np.sort(rng.choice(m, size=k, replace=False))
    block = etc[:, cols]
    etc[:, cols] = np.sort(block, axis=1)
    return etc
