"""Dynamic load drift, online monitoring and adaptive remapping.

The paper's motivation is *dynamic* distributed systems: loads drift away
from the assumed operating point, and the robustness metric quantifies how
much drift a mapping absorbs before a QoS violation.  This module closes the
loop:

- :func:`random_walk_loads` — a seeded sensor-load trajectory (random walk
  with optional drift, clipped non-negative);
- :func:`monitor` — evaluate robustness and slack along the trajectory and
  locate the first violation.  The defining guarantee holds pointwise: no
  violation can occur while the Euclidean displacement from the anchor stays
  below the anchor's (unfloored) robustness;
- :func:`adaptive_remap` — a threshold policy: whenever the current
  mapping's remaining robustness (re-anchored at the live load) falls below
  a threshold, search a batch of candidate mappings and switch to the most
  robust one.  The E2-style systems show the policy sustaining QoS far
  longer than a static mapping (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.hiperd.constraints import build_constraints
from repro.hiperd.model import HiperDSystem
from repro.hiperd.robustness import robustness
from repro.hiperd.slack import slack_from_constraints
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_1d_float_array, check_positive_int

__all__ = [
    "random_walk_loads",
    "MonitorResult",
    "monitor",
    "RemapEvent",
    "AdaptiveRunResult",
    "adaptive_remap",
]


def random_walk_loads(
    load0,
    n_steps: int,
    *,
    step_scale: float = 10.0,
    drift=None,
    seed=None,
) -> np.ndarray:
    """A sensor-load trajectory: Gaussian random walk plus optional drift.

    Returns an ``(n_steps + 1, n_sensors)`` array whose first row is
    ``load0``; loads are clipped at zero (objects per data set cannot be
    negative).
    """
    load0 = as_1d_float_array(load0, "load0")
    n_steps = check_positive_int(n_steps, "n_steps")
    rng = ensure_rng(seed)
    drift_vec = (
        np.zeros_like(load0) if drift is None else as_1d_float_array(drift, "drift")
    )
    if drift_vec.shape != load0.shape:
        raise ValueError("drift must have one entry per sensor")
    steps = rng.normal(scale=step_scale, size=(n_steps, load0.size)) + drift_vec
    traj = np.vstack([load0, load0 + np.cumsum(steps, axis=0)])
    return np.maximum(traj, 0.0)


@dataclass(frozen=True)
class MonitorResult:
    """Per-step telemetry of a mapping under a load trajectory."""

    loads: np.ndarray
    #: unfloored robustness re-anchored at each step's load
    robustness: np.ndarray
    #: system-wide slack at each step
    slack: np.ndarray
    #: per-step QoS violation flag
    violated: np.ndarray
    #: first violating step index, or -1 if none
    first_violation: int
    #: the anchor robustness (at loads[0])
    anchor_robustness: float


def monitor(system: HiperDSystem, mapping: Mapping, loads) -> MonitorResult:
    """Evaluate robustness/slack/violation along a load trajectory.

    The constraint set depends only on the mapping, so it is built once and
    evaluated vectorially over all steps.
    """
    loads = np.asarray(loads, dtype=float)
    if loads.ndim != 2 or loads.shape[1] != system.n_sensors:
        raise ValueError(f"loads must be (n_steps, {system.n_sensors})")
    cs = build_constraints(system, mapping)
    values = loads @ cs.coefficients.T  # (n_steps, n_constraints)
    frac = values / cs.limits
    slack = 1.0 - frac.max(axis=1)
    violated = slack < 0
    norms = np.linalg.norm(cs.coefficients, axis=1)
    gaps = cs.limits[None, :] - values
    with np.errstate(divide="ignore", invalid="ignore"):
        dists = np.where(
            norms[None, :] > 0,
            gaps / np.where(norms[None, :] > 0, norms[None, :], 1.0),
            np.where(gaps > 0, np.inf, np.where(gaps < 0, -np.inf, 0.0)),
        )
    rho = dists.min(axis=1)
    first = int(np.argmax(violated)) if violated.any() else -1
    return MonitorResult(
        loads=loads,
        robustness=rho,
        slack=slack,
        violated=violated,
        first_violation=first,
        anchor_robustness=float(rho[0]),
    )


@dataclass(frozen=True)
class RemapEvent:
    """One remapping decision."""

    step: int
    old_robustness: float
    new_robustness: float


@dataclass(frozen=True)
class AdaptiveRunResult:
    """Outcome of the threshold remapping policy over a trajectory."""

    robustness: np.ndarray
    violated: np.ndarray
    events: tuple[RemapEvent, ...]
    final_mapping: Mapping

    @property
    def violation_steps(self) -> int:
        return int(self.violated.sum())


def adaptive_remap(
    system: HiperDSystem,
    initial_mapping: Mapping,
    loads,
    *,
    threshold: float,
    n_candidates: int = 64,
    seed=None,
) -> AdaptiveRunResult:
    """Threshold policy: remap whenever remaining robustness drops below
    ``threshold``.

    Candidates are uniform random mappings (plus the incumbent); the most
    robust at the live load wins.  A production system would use the
    robustness-aware heuristics in :mod:`repro.alloc.heuristics`; random
    search keeps this policy self-contained and still demonstrates the
    value of monitoring the metric online.
    """
    loads = np.asarray(loads, dtype=float)
    rng = ensure_rng(seed)
    mapping = initial_mapping
    rho_t = np.empty(loads.shape[0])
    violated = np.empty(loads.shape[0], dtype=bool)
    events: list[RemapEvent] = []
    for t in range(loads.shape[0]):
        res = robustness(system, mapping, loads[t], apply_floor=False)
        rho_t[t] = res.raw_value
        violated[t] = not res.feasible_at_origin
        if res.raw_value < threshold:
            best_rho = res.raw_value
            best_map = mapping
            for _ in range(n_candidates):
                cand = Mapping(
                    rng.integers(0, system.n_machines, size=system.n_apps),
                    system.n_machines,
                )
                cand_res = robustness(system, cand, loads[t], apply_floor=False)
                if cand_res.raw_value > best_rho:
                    best_rho = cand_res.raw_value
                    best_map = cand
            if best_map is not mapping:
                events.append(
                    RemapEvent(
                        step=t,
                        old_robustness=float(res.raw_value),
                        new_robustness=float(best_rho),
                    )
                )
                mapping = best_map
                rho_t[t] = best_rho
                violated[t] = best_rho < 0
    return AdaptiveRunResult(
        robustness=rho_t,
        violated=violated,
        events=tuple(events),
        final_mapping=mapping,
    )
