"""A minimal discrete-event simulation core.

Deliberately small: a time-ordered priority queue of events with
deterministic FIFO tie-breaking at equal timestamps, and a run loop with an
optional time horizon.  The task simulator and any user-defined scenarios
(machine failures, arrival processes) build on this.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.exceptions import ValidationError

__all__ = ["Event", "Simulator"]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.  Ordering: time, then insertion sequence."""

    time: float
    seq: int
    action: Callable[["Simulator"], None] = field(compare=False)


class Simulator:
    """Event-driven simulator with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        #: current simulation time
        self.now: float = 0.0
        #: number of events executed so far
        self.executed: int = 0

    def schedule(self, delay: float, action: Callable[["Simulator"], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        delay = float(delay)
        if delay < 0:
            raise ValidationError(f"cannot schedule into the past (delay={delay})")
        ev = Event(self.now + delay, next(self._seq), action)
        heapq.heappush(self._queue, ev)
        return ev

    def schedule_at(self, time: float, action: Callable[["Simulator"], None]) -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        time = float(time)
        if time < self.now:
            raise ValidationError(
                f"cannot schedule into the past (t={time}, now={self.now})"
            )
        ev = Event(time, next(self._seq), action)
        heapq.heappush(self._queue, ev)
        return ev

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        ev = heapq.heappop(self._queue)
        self.now = ev.time
        ev.action(self)
        self.executed += 1
        return True

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains (or the clock passes ``until``)."""
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = float(until)
                return
            self.step()

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
