"""Empirical validation of the allocation robustness metric via simulation.

For a mapping with robustness ``rho`` (Eq. 7), the guarantee is: any actual
computation-time vector within Euclidean distance ``rho`` of the estimates
produces a makespan of at most ``tau * M_orig``.  This module samples error
vectors inside the ball (must all pass), simulates the boundary vector
``C*`` (must sit exactly on ``tau * M_orig``), and steps just beyond it
(must violate) — closing the loop between the closed-form geometry and an
actual execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.alloc.robustness import boundary_etc_vector, robustness
from repro.sim.tasksim import simulate_mapping
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["MakespanValidation", "validate_allocation_robustness"]


@dataclass(frozen=True)
class MakespanValidation:
    """Report of a simulation-based robustness validation."""

    robustness: float
    tau: float
    makespan_orig: float
    n_samples: int
    #: simulated makespans of the interior samples
    interior_makespans: np.ndarray
    #: count of interior samples that violated tau * M_orig (0 for soundness)
    interior_violations: int
    #: simulated makespan at the boundary vector C*
    boundary_makespan: float
    #: simulated makespan just beyond the boundary
    beyond_makespan: float
    sound: bool
    tight: bool


def validate_allocation_robustness(
    mapping: Mapping,
    etc,
    tau: float,
    *,
    n_samples: int = 200,
    seed: "int | None | np.random.Generator" = 0,
    slack: float = 1e-9,
) -> MakespanValidation:
    """Simulate perturbed executions to validate the Eq. 7 metric.

    Samples ``n_samples`` error vectors with l2 norm up to
    ``rho * (1 - slack)`` (negative errors clipped so actual times stay
    non-negative — clipping only shrinks the perturbation norm, preserving
    the guarantee), simulates each, and checks the makespan.  Then simulates
    the boundary vector and a point just beyond it.

    Every stochastic choice draws from the single ``seed``-derived
    generator, so the report is deterministic by default (``seed=0``); pass
    ``None`` explicitly to opt into fresh entropy.
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    rng = ensure_rng(seed)
    etc = np.asarray(etc, dtype=float)
    res = robustness(mapping, etc, tau)
    c_orig = mapping.executed_times(etc)
    limit = res.tau * res.makespan

    interior = np.empty(n_samples)
    violations = 0
    for k in range(n_samples):
        d = rng.standard_normal(mapping.n_tasks)
        d /= np.linalg.norm(d)
        mag = res.value * (1.0 - slack) * rng.uniform(0.0, 1.0) ** (
            1.0 / mapping.n_tasks
        )
        c = np.maximum(c_orig + mag * d, 0.0)
        sim = simulate_mapping(mapping, c)
        interior[k] = sim.makespan
        if sim.makespan > limit * (1 + 1e-12):
            violations += 1

    c_star = boundary_etc_vector(mapping, etc, tau)
    boundary_ms = simulate_mapping(mapping, np.maximum(c_star, 0.0)).makespan
    # Step slightly beyond the boundary along the binding direction.
    direction = c_star - c_orig
    nrm = np.linalg.norm(direction)
    if nrm > 0:
        beyond = np.maximum(c_orig + direction * (1.0 + 1e-6), 0.0)
    else:  # zero radius: any increase on the critical machine violates
        beyond = c_orig.copy()
        beyond[mapping.tasks_on(res.critical_machine)] += 1e-9
    beyond_ms = simulate_mapping(mapping, beyond).makespan

    sound = violations == 0
    tight = bool(
        np.isclose(boundary_ms, limit, rtol=1e-9) and beyond_ms > limit * (1 - 1e-12)
    )
    return MakespanValidation(
        robustness=res.value,
        tau=res.tau,
        makespan_orig=res.makespan,
        n_samples=n_samples,
        interior_makespans=interior,
        interior_violations=violations,
        boundary_makespan=float(boundary_ms),
        beyond_makespan=float(beyond_ms),
        sound=sound,
        tight=tight,
    )
