"""Machine-failure scenarios on top of the discrete-event core.

The robustness metric bounds *parameter* perturbations (actual computation
times drifting from their estimates); a machine failure is a much larger
disturbance — an entire feature disappears and its work must go elsewhere.
:func:`simulate_machine_failure` drives that scenario through
:mod:`repro.sim.engine`: machines execute their queues FIFO (the Section 3.1
model), one machine dies at a chosen time, and its unfinished work —
including the application it was executing, which restarts from scratch —
is reassigned to the surviving machine with the least remaining work.

The result quantifies the degradation (post-failure makespan vs. the
no-failure baseline) and, when a tolerance ``tau`` is given, whether the
degraded execution still meets the paper's makespan requirement
``M <= tau * M_orig`` — connecting the fault scenario back to the same
bound the robustness radius protects.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.exceptions import ValidationError
from repro.sim.engine import Simulator
from repro.utils.clock import Clock, get_clock
from repro.utils.validation import as_1d_float_array

__all__ = ["MachineFailureResult", "simulate_machine_failure"]


@dataclass(frozen=True)
class MachineFailureResult:
    """Outcome of one machine-failure simulation."""

    #: makespan of the degraded execution
    makespan: float
    #: makespan of the same actual times without the failure
    baseline_makespan: float
    #: ``makespan / baseline_makespan`` (1.0 = failure absorbed for free)
    degradation: float
    #: applications moved off the failed machine, in reassignment order
    reassigned: tuple[int, ...]
    #: per-application completion times (NaN for never-finished, none here)
    task_finish: np.ndarray
    #: the failed machine and when it died
    failed_machine: int
    fail_time: float
    #: ``makespan <= tau * baseline`` when ``tau`` was supplied, else None
    within_tolerance: bool | None
    #: wall-clock seconds the simulation took, measured on the caller's
    #: clock (deterministic under :class:`~repro.utils.clock.FakeClock`)
    wall_time: float = 0.0


def simulate_machine_failure(
    mapping: Mapping,
    etc: np.ndarray,
    fail_machine: int,
    fail_time: float,
    *,
    actual_times=None,
    tau: float | None = None,
    clock: Clock | None = None,
) -> MachineFailureResult:
    """Execute ``mapping``, kill one machine mid-run, reassign its work.

    Parameters
    ----------
    mapping:
        The application-to-machine assignment.
    etc:
        The ``(n_tasks, n_machines)`` estimate matrix; reassigned
        applications run with their ETC entry on the adopting machine.
    fail_machine:
        Machine that dies.
    fail_time:
        Absolute simulation time of the failure.  The application running on
        the machine at that instant is lost and restarts from scratch on its
        new machine (fail-stop semantics, no checkpointing).
    actual_times:
        Actual computation time of each application on its *originally
        assigned* machine (default: the unperturbed ``C_orig`` from ``etc``).
    tau:
        Optional makespan tolerance factor; fills ``within_tolerance``.
    clock:
        Monotonic clock used to measure ``wall_time`` (default: the active
        :func:`repro.utils.clock.get_clock`; inject a
        :class:`~repro.utils.clock.FakeClock` for deterministic timings).
    """
    clock = get_clock() if clock is None else clock
    t_start = clock.perf_counter()
    etc = np.asarray(etc, dtype=float)
    if etc.shape != (mapping.n_tasks, mapping.n_machines):
        raise ValidationError(
            f"etc must have shape ({mapping.n_tasks}, {mapping.n_machines}), "
            f"got {etc.shape}"
        )
    if not 0 <= int(fail_machine) < mapping.n_machines:
        raise ValidationError(f"fail_machine {fail_machine} out of range")
    if mapping.n_machines < 2:
        raise ValidationError("need a surviving machine to reassign work to")
    fail_machine = int(fail_machine)
    fail_time = float(fail_time)
    if fail_time < 0:
        raise ValidationError("fail_time must be >= 0")
    times = (
        mapping.executed_times(etc).astype(float)
        if actual_times is None
        else as_1d_float_array(actual_times, "actual_times")
    )
    if times.size != mapping.n_tasks:
        raise ValidationError(
            f"actual_times has {times.size} entries for {mapping.n_tasks} applications"
        )
    if np.any(times < 0):
        raise ValidationError("actual_times must be non-negative")

    n_machines = mapping.n_machines
    sim = Simulator()
    queues: list[deque[int]] = [deque(mapping.tasks_on(j)) for j in range(n_machines)]
    #: execution time each application will take on the machine queued for it
    run_time = times.copy()
    alive = [True] * n_machines
    current: list[tuple[int, int] | None] = [None] * n_machines  # (task, token)
    run_token = itertools.count()
    task_finish = np.zeros(mapping.n_tasks)
    machine_finish = np.zeros(n_machines)
    reassigned: list[int] = []

    def start_next(j: int):
        def _action(s: Simulator) -> None:
            if not alive[j] or current[j] is not None or not queues[j]:
                return
            i = queues[j].popleft()
            token = next(run_token)
            current[j] = (i, token)

            def _finish(s2: Simulator, i=i, j=j, token=token) -> None:
                # The machine may have died (or the task been reassigned)
                # since this completion was scheduled; a stale token means
                # the run it belonged to no longer exists.
                if not alive[j] or current[j] != (i, token):
                    return
                task_finish[i] = s2.now
                machine_finish[j] = s2.now
                current[j] = None
                _action(s2)

            s.schedule(run_time[i], _finish)

        return _action

    def _fail(s: Simulator) -> None:
        alive[fail_machine] = False
        orphans: list[int] = []
        if current[fail_machine] is not None:
            orphans.append(current[fail_machine][0])
            current[fail_machine] = None
        orphans.extend(queues[fail_machine])
        queues[fail_machine].clear()

        def remaining_work(j: int) -> float:
            work = sum(run_time[q] for q in queues[j])
            if current[j] is not None:
                work += run_time[current[j][0]]  # pessimistic: full restart cost
            return work

        for i in orphans:
            survivors = [j for j in range(n_machines) if alive[j]]
            target = min(survivors, key=remaining_work)
            run_time[i] = float(etc[i, target])
            queues[target].append(i)
            reassigned.append(i)
            s.schedule(0.0, start_next(target))

    for j in range(n_machines):
        sim.schedule_at(0.0, start_next(j))
    sim.schedule_at(fail_time, _fail)
    sim.run()

    makespan = float(machine_finish.max())
    f = np.zeros(n_machines)
    np.add.at(f, mapping.assignment, times)
    baseline = float(f.max())
    return MachineFailureResult(
        makespan=makespan,
        baseline_makespan=baseline,
        degradation=makespan / baseline if baseline > 0 else float("inf"),
        reassigned=tuple(reassigned),
        task_finish=task_finish,
        failed_machine=fail_machine,
        fail_time=fail_time,
        within_tolerance=None if tau is None else bool(makespan <= float(tau) * baseline),
        wall_time=clock.perf_counter() - t_start,
    )
