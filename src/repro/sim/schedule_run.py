"""Execute a mapping through a perturbation schedule; emit a time series.

The static robustness radius answers "how far is the failure boundary?";
the resilience metrics (:mod:`repro.resilience`) instead ask "what happens
*through* a disturbance?".  This module supplies the raw material: it
samples the performance feature (the mapping's predicted makespan under the
Section 3.1 serial-machine model) on a uniform grid of simulated time while
a :class:`~repro.faults.schedule.PerturbationSchedule` inflates computation
times and takes machines down, and records at every step whether the
paper's QoS requirement ``M(t) <= tau * M_orig`` still holds.

Semantics per sample time ``t``:

- the actual-time vector is ``C(t) = max(C_orig + schedule.deltas_at(t), 0)``;
- machines inside a ``burst_crash`` outage are down; their applications
  execute on the surviving machine with the least accumulated work (their
  ETC entry there — fail-stop reassignment, matching
  :mod:`repro.sim.failures`), in ascending application order;
- the feature value is the resulting makespan; with *every* machine down
  the value is ``inf`` (and violating).

Everything is a pure function of ``(mapping, etc, schedule, tau)`` plus the
sampling grid, so two runs are bit-for-bit identical — the reproducibility
contract the resilience experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.exceptions import ValidationError
from repro.faults.schedule import PerturbationSchedule
from repro.utils.clock import Clock, get_clock
from repro.utils.serialization import decode_array, encode_array, encode_float, decode_float
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["OutageRecord", "ScheduleRunResult", "run_schedule", "VIOLATION_RTOL"]

#: relative float tolerance above the limit before a step counts as a
#: violation (guards round-off on values constructed to sit on the bound);
#: shared with the resilience metrics so "violating step" means one thing
VIOLATION_RTOL = 1e-12


@dataclass(frozen=True)
class OutageRecord:
    """One machine outage observed during a schedule run."""

    #: the machine that was down
    machine: int
    #: outage interval in simulated time
    start: float
    end: float
    #: applications displaced onto surviving machines during the outage
    displaced: tuple[int, ...]

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict."""
        return {
            "machine": int(self.machine),
            "start": float(self.start),
            "end": float(self.end),
            "displaced": [int(i) for i in self.displaced],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OutageRecord":
        """Decode a payload written by :meth:`to_dict`."""
        return cls(
            machine=int(data["machine"]),
            start=float(data["start"]),
            end=float(data["end"]),
            displaced=tuple(int(i) for i in data["displaced"]),
        )


@dataclass(frozen=True)
class ScheduleRunResult:
    """Performance-feature time series of one schedule run."""

    #: sample times, shape ``(n_steps,)``
    times: np.ndarray
    #: predicted makespan at each sample time (``inf`` = total outage)
    values: np.ndarray
    #: per-step QoS violation flags (``values > tau * M_orig``)
    violations: np.ndarray
    #: l2 norm of the actual-time perturbation at each step
    perturbation_norms: np.ndarray
    #: the unperturbed makespan ``M_orig``
    baseline: float
    #: the acceptable-region limit ``tau * M_orig``
    limit: float
    #: the tolerance factor the run was evaluated against
    tau: float
    #: one record per machine outage the schedule contained
    outages: tuple[OutageRecord, ...]
    #: wall-clock seconds the run took on the caller's clock
    wall_time: float = 0.0

    @property
    def n_steps(self) -> int:
        """Number of samples in the series."""
        return int(self.times.size)

    @property
    def n_violations(self) -> int:
        """Number of violating samples."""
        return int(np.count_nonzero(self.violations))

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "ScheduleRunResult",
            "version": 1,
            "times": encode_array(self.times),
            "values": encode_array(self.values),
            "violations": [bool(v) for v in self.violations],
            "perturbation_norms": encode_array(self.perturbation_norms),
            "baseline": encode_float(self.baseline),
            "limit": encode_float(self.limit),
            "tau": float(self.tau),
            "outages": [o.to_dict() for o in self.outages],
            "wall_time": float(self.wall_time),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleRunResult":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "ScheduleRunResult":
            raise ValidationError(
                f"expected type 'ScheduleRunResult', got {data.get('type')!r}"
            )
        return cls(
            times=decode_array(data["times"]),
            values=decode_array(data["values"]),
            violations=np.asarray(data["violations"], dtype=bool),
            perturbation_norms=decode_array(data["perturbation_norms"]),
            baseline=decode_float(data["baseline"]),
            limit=decode_float(data["limit"]),
            tau=float(data["tau"]),
            outages=tuple(OutageRecord.from_dict(o) for o in data["outages"]),
            wall_time=float(data.get("wall_time", 0.0)),
        )


def _makespan_with_outages(
    c: np.ndarray,
    assignment: np.ndarray,
    etc: np.ndarray,
    down: tuple[int, ...],
    n_machines: int,
) -> tuple[float, tuple[int, ...]]:
    """Makespan under fail-stop reassignment; also the displaced app set."""
    finish = np.zeros(n_machines)
    np.add.at(finish, assignment, c)
    if not down:
        return float(finish.max()), ()
    down_set = set(down)
    up = [j for j in range(n_machines) if j not in down_set]
    if not up:
        return float("inf"), tuple(int(i) for i in np.flatnonzero(np.isin(assignment, list(down_set))))
    finish[list(down_set)] = 0.0
    displaced = np.flatnonzero(np.isin(assignment, list(down_set)))
    for i in displaced:
        # least-loaded surviving machine adopts, at its own ETC entry
        target = min(up, key=lambda j: (finish[j], j))
        finish[target] += float(etc[i, target])
    return float(finish.max()), tuple(int(i) for i in displaced)


def run_schedule(
    mapping: Mapping,
    etc: np.ndarray,
    schedule: PerturbationSchedule,
    tau: float,
    *,
    n_steps: int = 200,
    clock: Clock | None = None,
) -> ScheduleRunResult:
    """Sample the makespan of ``mapping`` through ``schedule``.

    Parameters
    ----------
    mapping:
        The application-to-machine assignment under test.
    etc:
        The ``(n_tasks, n_machines)`` estimate matrix; displaced
        applications run with their ETC entry on the adopting machine.
    schedule:
        The disturbance to execute (see
        :class:`~repro.faults.schedule.PerturbationSchedule`).
    tau:
        Makespan tolerance factor of the acceptable region
        ``M(t) <= tau * M_orig``.
    n_steps:
        Number of uniformly spaced samples over ``[0, horizon]``.
    clock:
        Monotonic clock measuring ``wall_time`` (default the active
        :func:`repro.utils.clock.get_clock`).
    """
    clock = get_clock() if clock is None else clock
    t_start = clock.perf_counter()
    etc = np.asarray(etc, dtype=float)
    if etc.shape != (mapping.n_tasks, mapping.n_machines):
        raise ValidationError(
            f"etc must have shape ({mapping.n_tasks}, {mapping.n_machines}), "
            f"got {etc.shape}"
        )
    tau = check_positive(tau, "tau")
    n_steps = check_positive_int(n_steps, "n_steps")

    c_orig = mapping.executed_times(etc).astype(float)
    baseline_finish = np.zeros(mapping.n_machines)
    np.add.at(baseline_finish, mapping.assignment, c_orig)
    baseline = float(baseline_finish.max())
    limit = tau * baseline

    times = np.linspace(0.0, schedule.horizon, n_steps)
    values = np.empty(n_steps)
    norms = np.empty(n_steps)
    violations = np.zeros(n_steps, dtype=bool)
    outage_displaced: dict[tuple[int, float, float], set[int]] = {
        (ev.target, ev.time, ev.time + ev.duration): set()
        for ev in schedule.outages()
    }

    for k, t in enumerate(times):
        delta = schedule.deltas_at(float(t), c_orig)
        c = np.maximum(c_orig + delta, 0.0)
        norms[k] = float(np.linalg.norm(c - c_orig))
        down = schedule.down_machines_at(float(t))
        value, displaced = _makespan_with_outages(
            c, mapping.assignment, etc, down, mapping.n_machines
        )
        values[k] = value
        violations[k] = value > limit * (1.0 + VIOLATION_RTOL)
        if displaced:
            for key, seen in outage_displaced.items():
                machine, start, end = key
                if machine in down and start <= t < end:
                    seen.update(
                        int(i) for i in displaced if mapping.assignment[i] == machine
                    )

    outages = tuple(
        OutageRecord(
            machine=machine,
            start=start,
            end=end,
            displaced=tuple(sorted(seen)),
        )
        for (machine, start, end), seen in sorted(outage_displaced.items(), key=lambda kv: (kv[0][1], kv[0][0]))
    )
    return ScheduleRunResult(
        times=times,
        values=values,
        violations=violations,
        perturbation_norms=norms,
        baseline=baseline,
        limit=limit,
        tau=tau,
        outages=outages,
        wall_time=clock.perf_counter() - t_start,
    )
