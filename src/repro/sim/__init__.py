"""Discrete-event execution simulation.

The robustness metric makes an *operational* promise: as long as the actual
perturbation stays inside the radius, the running system never violates its
QoS requirement.  This package provides the machinery to check that promise
by actually executing mappings:

- :mod:`~repro.sim.engine` — a minimal event-driven simulation core
  (time-ordered event queue, deterministic tie-breaking);
- :mod:`~repro.sim.tasksim` — execution of an independent-application
  mapping on serial machines under *actual* (perturbed) computation times,
  with optional release times and machine ready times;
- :mod:`~repro.sim.validate` — end-to-end empirical validation: sample ETC
  error vectors inside/outside the robustness radius, simulate, and check
  the makespan against ``tau * M_orig``;
- :mod:`~repro.sim.failures` — fail-stop machine-failure scenarios: a
  machine dies mid-run, its unfinished work is reassigned, and the degraded
  makespan is reported against the same tolerance bound;
- :mod:`~repro.sim.schedule_run` — execution of a mapping *through* a
  :class:`~repro.faults.schedule.PerturbationSchedule`: per-step
  performance-feature values, violation flags and outage records, feeding
  the temporal resilience metrics in :mod:`repro.resilience`.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.failures import MachineFailureResult, simulate_machine_failure
from repro.sim.schedule_run import OutageRecord, ScheduleRunResult, run_schedule
from repro.sim.tasksim import TaskSimResult, simulate_mapping
from repro.sim.validate import MakespanValidation, validate_allocation_robustness

__all__ = [
    "Event",
    "Simulator",
    "TaskSimResult",
    "simulate_mapping",
    "MakespanValidation",
    "validate_allocation_robustness",
    "MachineFailureResult",
    "simulate_machine_failure",
    "OutageRecord",
    "ScheduleRunResult",
    "run_schedule",
]
