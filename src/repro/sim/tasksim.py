"""Event-driven execution of an independent-application mapping.

Machines execute their assigned applications serially in assignment order
(the Section 3.1 model: "each machine executes a single application at a
time, in the order in which the applications are assigned").  The *actual*
computation times may differ from the ETC estimates — that difference is
precisely the perturbation the robustness metric reasons about.

Although the no-release-time case reduces to per-machine sums (Eq. 4), the
simulator runs the full event loop so extensions (release times, initial
machine ready times, observers) behave like a real execution — and the test
suite uses the analytic sums as an oracle for it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.exceptions import ValidationError
from repro.sim.engine import Simulator
from repro.utils.validation import as_1d_float_array

__all__ = ["TaskSimResult", "simulate_mapping"]


@dataclass(frozen=True)
class TaskSimResult:
    """Outcome of one simulated execution."""

    #: completion time of each application
    task_finish: np.ndarray
    #: finishing time of each machine (0 for machines with no work)
    machine_finish: np.ndarray
    #: the makespan (max over machine finish times)
    makespan: float
    #: execution order actually observed, per machine
    order: tuple[tuple[int, ...], ...]


def simulate_mapping(
    mapping: Mapping,
    actual_times,
    *,
    release_times=None,
    machine_ready=None,
) -> TaskSimResult:
    """Simulate the execution of ``mapping`` with the given actual times.

    Parameters
    ----------
    mapping:
        The application-to-machine assignment.
    actual_times:
        Actual computation time of each application on its assigned machine
        (the perturbed ``C`` vector; use ``mapping.executed_times(etc)`` for
        the unperturbed ``C_orig``).
    release_times:
        Optional per-application earliest-start times (default all 0).
    machine_ready:
        Optional per-machine initial ready times (default all 0).
    """
    times = as_1d_float_array(actual_times, "actual_times")
    if times.size != mapping.n_tasks:
        raise ValidationError(
            f"actual_times has {times.size} entries for {mapping.n_tasks} applications"
        )
    if np.any(times < 0):
        raise ValidationError("actual_times must be non-negative")
    release = (
        np.zeros(mapping.n_tasks)
        if release_times is None
        else as_1d_float_array(release_times, "release_times")
    )
    if release.size != mapping.n_tasks or np.any(release < 0):
        raise ValidationError("release_times must be non-negative, one per application")
    ready0 = (
        np.zeros(mapping.n_machines)
        if machine_ready is None
        else as_1d_float_array(machine_ready, "machine_ready")
    )
    if ready0.size != mapping.n_machines or np.any(ready0 < 0):
        raise ValidationError("machine_ready must be non-negative, one per machine")

    sim = Simulator()
    queues: list[list[int]] = [list(mapping.tasks_on(j)) for j in range(mapping.n_machines)]
    task_finish = np.zeros(mapping.n_tasks)
    machine_finish = ready0.copy()
    order: list[list[int]] = [[] for _ in range(mapping.n_machines)]

    def start_next(j: int):
        def _action(s: Simulator) -> None:
            if not queues[j]:
                return
            i = queues[j][0]
            if s.now < release[i]:
                s.schedule_at(release[i], _action)
                return
            queues[j].pop(0)
            order[j].append(i)

            def _finish(s2: Simulator, i=i, j=j) -> None:
                task_finish[i] = s2.now
                machine_finish[j] = s2.now
                start_next(j)(s2)

            s.schedule(times[i], _finish)

        return _action

    for j in range(mapping.n_machines):
        sim.schedule_at(ready0[j], start_next(j))
    sim.run()

    return TaskSimResult(
        task_finish=task_finish,
        machine_finish=machine_finish,
        makespan=float(machine_finish.max()),
        order=tuple(tuple(o) for o in order),
    )
