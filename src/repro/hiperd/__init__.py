"""HiPer-D-like distributed real-time system (paper Section 3.2 / 4.3).

The second example system: continuously executing, communicating
applications on multitasking machines, fed by periodic sensors; the
robustness requirement bounds per-application throughput and per-path
end-to-end latency against unforeseen increases in the sensor loads
``lambda``.

Public surface:

- :class:`~repro.hiperd.model.HiperDSystem`, :class:`~repro.hiperd.model.Sensor`,
  :class:`~repro.hiperd.model.Path`;
- :func:`~repro.hiperd.dag.enumerate_paths_from_edges` (Figure 2 semantics);
- :func:`~repro.hiperd.timing.computation_times`,
  :func:`~repro.hiperd.timing.latencies`;
- :func:`~repro.hiperd.constraints.build_constraints` (the Eq. 9 feature set);
- :func:`~repro.hiperd.slack.slack` (Section 4.3);
- :func:`~repro.hiperd.robustness.robustness` (Eqs. 10-11),
  :func:`~repro.hiperd.robustness.fepia_analysis`;
- :func:`~repro.hiperd.generators.generate_system` (Section 4.3 instances);
- :func:`~repro.hiperd.table2.build_table2_system` (the published Table 2).
"""

from repro.hiperd.constraints import ConstraintSet, build_constraints
from repro.hiperd.dag import build_graph, enumerate_paths_from_edges, validate_dag
from repro.hiperd.generators import (
    PAPER_INITIAL_LOAD,
    PAPER_RATES,
    generate_system,
    random_hiperd_mappings,
)
from repro.hiperd.model import HiperDSystem, Path, Sensor, multitasking_factors
from repro.hiperd.robustness import (
    HiperdRobustness,
    boundary_load,
    fepia_analysis,
    robustness,
)
from repro.hiperd.nonlinear import power_law_analysis, power_law_robustness
from repro.hiperd.sensitivity import app_criticality, load_gradient, move_improvements
from repro.hiperd.slack import slack, slack_breakdown, slack_from_constraints
from repro.hiperd.table2 import PAPER_TABLE2, Table2Instance, build_table2_system
from repro.hiperd.timing import (
    communication_coefficients,
    computation_coefficients,
    computation_times,
    latencies,
    latency_coefficients,
)

__all__ = [
    "HiperDSystem",
    "Path",
    "Sensor",
    "multitasking_factors",
    "ConstraintSet",
    "build_constraints",
    "build_graph",
    "enumerate_paths_from_edges",
    "validate_dag",
    "generate_system",
    "random_hiperd_mappings",
    "PAPER_RATES",
    "PAPER_INITIAL_LOAD",
    "HiperdRobustness",
    "robustness",
    "boundary_load",
    "fepia_analysis",
    "slack",
    "slack_breakdown",
    "slack_from_constraints",
    "power_law_analysis",
    "power_law_robustness",
    "app_criticality",
    "load_gradient",
    "move_improvements",
    "PAPER_TABLE2",
    "Table2Instance",
    "build_table2_system",
    "computation_coefficients",
    "communication_coefficients",
    "computation_times",
    "latencies",
    "latency_coefficients",
]
