"""Robustness of a HiPer-D mapping against sensor-load increases (Eqs. 10-11).

With the linear time model every boundary relationship is a hyperplane in
load space, so each radius in Eq. 10 is a point-to-hyperplane distance from
``lambda_orig`` and the metric (Eq. 11) is their minimum — floored, because
the load is a discrete quantity (objects per data set) treated continuously
(Section 3.2's closing discussion).

Note: Equation 10c in the paper prints a ``max`` operator; the surrounding
text ("the robustness radii in Equations 10b and 10c are the similar
values") and Eq. 1 both define the radius as the *minimum* boundary distance,
so this implementation uses ``min`` (the ``max`` is a typo).

All radii are signed: negative when the mapping already violates a QoS
constraint at ``lambda_orig`` (possible for random mappings), which keeps the
experiment pipelines total.  Use ``require_feasible=True`` to raise instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.core.config import SolverConfig, resolve_config
from repro.core.fepia import FePIAAnalysis
from repro.core.metric import MetricResult
from repro.core.norms import L2Norm, Norm, get_norm
from repro.core.solvers.analytic import batch_hyperplane_distances
from repro.core.solvers.discrete import floor_radius
from repro.exceptions import InfeasibleAtOriginError, ValidationError
from repro.hiperd.constraints import ConstraintSet, build_constraints
from repro.hiperd.model import HiperDSystem
from repro.obs import trace as obs_trace
from repro.utils.serialization import decode_array, decode_float, encode_array, encode_float

__all__ = ["HiperdRobustness", "robustness", "boundary_load", "fepia_analysis"]


@dataclass(frozen=True)
class HiperdRobustness:
    """Result of a sensor-load robustness analysis for one mapping."""

    #: floored metric ``rho_mu(Phi, lambda)`` (Eq. 11), objects per data set
    value: float
    #: unfloored minimum radius
    raw_value: float
    #: signed radius per constraint row
    radii: np.ndarray
    #: index (into the constraint set) of the binding constraint
    binding_index: int
    #: name and kind of the binding constraint
    binding_name: str
    binding_kind: str
    #: the constraint set the radii refer to
    constraints: ConstraintSet
    #: boundary load vector ``lambda*`` of the binding constraint
    boundary: np.ndarray
    #: True when all constraints hold at ``lambda_orig``
    feasible_at_origin: bool

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return {
            "type": "HiperdRobustness",
            "version": 1,
            "value": encode_float(self.value),
            "raw_value": encode_float(self.raw_value),
            "radii": encode_array(self.radii),
            "binding_index": int(self.binding_index),
            "binding_name": self.binding_name,
            "binding_kind": self.binding_kind,
            "constraints": self.constraints.to_dict(),
            "boundary": encode_array(self.boundary),
            "feasible_at_origin": bool(self.feasible_at_origin),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HiperdRobustness":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        if data.get("type") != "HiperdRobustness":
            raise ValidationError(
                f"expected type 'HiperdRobustness', got {data.get('type')!r}"
            )
        return cls(
            value=decode_float(data["value"]),
            raw_value=decode_float(data["raw_value"]),
            radii=decode_array(data["radii"]),
            binding_index=int(data["binding_index"]),
            binding_name=str(data["binding_name"]),
            binding_kind=str(data["binding_kind"]),
            constraints=ConstraintSet.from_dict(data["constraints"]),
            boundary=decode_array(data["boundary"]),
            feasible_at_origin=bool(data["feasible_at_origin"]),
        )


def robustness(
    system: HiperDSystem,
    mapping: Mapping,
    load_orig,
    *,
    apply_floor: bool = True,
    require_feasible: bool = False,
    norm: Norm | str | None = None,
    config: SolverConfig | dict | None = None,
    solver_options: dict | None = None,
) -> HiperdRobustness:
    """Compute ``rho_mu(Phi, lambda)`` for ``mapping`` anchored at ``load_orig``.

    Shares the unified keyword signature of
    :func:`repro.alloc.robustness.robustness` (``norm=``, ``config=``,
    ``require_feasible=``) so the batched engine can dispatch uniformly.

    Parameters
    ----------
    apply_floor:
        Floor the final metric (the paper's Section 3.2 treatment of the
        discrete load); per-constraint radii stay unfloored.
    require_feasible:
        Raise :class:`InfeasibleAtOriginError` when a constraint is violated
        at ``load_orig`` instead of returning a negative value.
    norm:
        Perturbation norm on load space (default l2, the paper's choice);
        non-l2 norms generalize each hyperplane distance via the dual norm.
    config:
        :class:`~repro.core.config.SolverConfig`; accepted for signature
        uniformity (the linear model needs no solver knobs).  A plain dict is
        accepted with a ``DeprecationWarning``.
    solver_options:
        Removed after its deprecation cycle; any value raises
        :class:`~repro.exceptions.ValidationError`.
    """
    with obs_trace.maybe_span("hiperd.robustness", n_sensors=system.n_sensors):
        return _robustness_impl(
            system,
            mapping,
            load_orig,
            apply_floor=apply_floor,
            require_feasible=require_feasible,
            norm=norm,
            config=config,
            solver_options=solver_options,  # repro: noqa[R009] - shim forwards to the validating resolver
        )


def _robustness_impl(
    system: HiperDSystem,
    mapping: Mapping,
    load_orig,
    *,
    apply_floor: bool,
    require_feasible: bool,
    norm: Norm | str | None,
    config: SolverConfig | dict | None,
    solver_options: dict | None,
) -> HiperdRobustness:
    resolve_config(config, solver_options)  # dict shim + validation
    norm = get_norm(norm)
    load_orig = np.asarray(load_orig, dtype=float)
    if load_orig.shape != (system.n_sensors,):
        raise ValidationError(
            f"load_orig must have shape ({system.n_sensors},), got {load_orig.shape}"
        )
    cs = build_constraints(system, mapping)
    feasible = cs.satisfied_at(load_orig)
    if require_feasible and not feasible:
        frac = cs.fractional_values_at(load_orig)
        worst = int(np.argmax(frac))
        raise InfeasibleAtOriginError(
            f"constraint {cs.names[worst]} violated at lambda_orig "
            f"(fractional value {frac[worst]:.3f})"
        )
    if isinstance(norm, L2Norm):
        radii = batch_hyperplane_distances(cs.coefficients, cs.limits, load_orig)
    else:
        gaps = cs.limits - cs.coefficients @ load_orig
        duals = np.array([norm.dual(row) for row in cs.coefficients])
        with np.errstate(divide="ignore", invalid="ignore"):
            radii = np.where(duals > 0, gaps / np.maximum(duals, 1e-300), np.inf)
    k = int(np.argmin(radii))
    raw = float(radii[k])
    c = cs.coefficients[k]
    cc = float(c @ c)
    if not isinstance(norm, L2Norm) and np.any(c != 0):
        boundary = norm.closest_point_on_hyperplane(c, float(cs.limits[k]), load_orig)
    elif cc > 0:
        boundary = load_orig + ((cs.limits[k] - c @ load_orig) / cc) * c
    else:  # all constraints unreachable (degenerate system)
        boundary = load_orig.copy()
    return HiperdRobustness(
        value=floor_radius(raw) if apply_floor else raw,
        raw_value=raw,
        radii=radii,
        binding_index=k,
        binding_name=cs.names[k],
        binding_kind=cs.kinds[k],
        constraints=cs,
        boundary=boundary,
        feasible_at_origin=feasible,
    )


def boundary_load(system: HiperDSystem, mapping: Mapping, load_orig) -> np.ndarray:
    """The binding boundary load vector ``lambda*`` (Table 2's
    ``lambda_1*, lambda_2*, lambda_3*`` row)."""
    return robustness(system, mapping, load_orig, apply_floor=False).boundary


def fepia_analysis(
    system: HiperDSystem, mapping: Mapping, load_orig
) -> MetricResult:
    """Derive the same metric through the generic FePIA framework.

    Builds one affine feature per constraint row of Eq. 9 and analyzes; used
    as a cross-check of the vectorized fast path (and the extension point
    for nonlinear complexity functions — swap the affine impacts for
    :class:`~repro.core.impact.CallableImpact` and the numeric solver takes
    over).
    """
    cs = build_constraints(system, mapping)
    analysis = FePIAAnalysis("hiperd").with_perturbation(
        "lambda",
        np.asarray(load_orig, dtype=float),
        discrete=True,
        component_names=[s.name for s in system.sensors],
    )
    for name, coeff, limit, kind in zip(cs.names, cs.coefficients, cs.limits, cs.kinds):
        analysis.add_feature(name, impact=coeff, upper=float(limit), meta={"kind": kind})
    return analysis.analyze()
