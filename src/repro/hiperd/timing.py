"""Computation / communication / latency time functions of the load vector.

With the linear model of Section 4.3 every time quantity is an affine (in
fact linear) function of the sensor-load vector ``lambda``; this module
builds their coefficient vectors for a given mapping:

- ``T^c_i(lambda)  = mtf(m(i)) * (b[i, m(i)] . lambda)``  (computation),
- ``T^n_ip(lambda) = d[i, p] . lambda``                    (communication),
- ``L_k(lambda)    = sum over the chain of the above``      (Eq. 8).

The coefficient matrices returned here are consumed by
:mod:`repro.hiperd.constraints` (boundary hyperplanes) and
:mod:`repro.hiperd.slack` (values at ``lambda_orig``).
"""

from __future__ import annotations

import numpy as np

from repro.alloc.mapping import Mapping
from repro.exceptions import ValidationError
from repro.hiperd.model import HiperDSystem, multitasking_factors

__all__ = [
    "computation_coefficients",
    "communication_coefficients",
    "latency_coefficients",
    "computation_times",
    "latencies",
]


def _check_mapping(system: HiperDSystem, mapping: Mapping) -> None:
    if mapping.n_tasks != system.n_apps or mapping.n_machines != system.n_machines:
        raise ValidationError(
            f"mapping is {mapping.n_tasks} apps x {mapping.n_machines} machines; "
            f"system has {system.n_apps} x {system.n_machines}"
        )


def computation_coefficients(system: HiperDSystem, mapping: Mapping) -> np.ndarray:
    """``(n_apps, n_sensors)`` matrix: row ``i`` holds the coefficients of
    ``T^c_i(lambda)`` under ``mapping`` (multitasking factor included)."""
    _check_mapping(system, mapping)
    mtf = multitasking_factors(mapping.counts())  # per machine
    b = system.comp_coeffs[np.arange(system.n_apps), mapping.assignment, :]
    return mtf[mapping.assignment][:, None] * b


def communication_coefficients(system: HiperDSystem) -> dict[tuple[int, int], np.ndarray]:
    """Coefficient vectors of the app-to-app transfer times ``T^n_ip``.

    Mapping-independent in this model (network multitasking is not load-
    dependent here); edges without declared coefficients are zero —
    returned lazily as the declared dict (missing = zero vector).
    """
    return dict(system.comm_coeffs)


def latency_coefficients(system: HiperDSystem, mapping: Mapping) -> np.ndarray:
    """``(n_paths, n_sensors)`` matrix of the coefficients of ``L_k(lambda)``
    (Eq. 8): the sum of the member applications' computation coefficients
    plus the chain's communication coefficients."""
    comp = computation_coefficients(system, mapping)
    out = np.zeros((len(system.paths), system.n_sensors))
    for k, path in enumerate(system.paths):
        for a in path.apps:
            out[k] += comp[a]
        for edge in path.edges():
            vec = system.comm_coeffs.get(edge)
            if vec is not None:
                out[k] += vec
        # Final hop into an update path's terminal application, if declared.
        kind, idx = path.terminal
        if kind == "app" and path.apps:
            vec = system.comm_coeffs.get((path.apps[-1], idx))
            if vec is not None:
                out[k] += vec
    return out


def computation_times(system: HiperDSystem, mapping: Mapping, load) -> np.ndarray:
    """``T^c_i(lambda)`` for every application at load vector ``load``."""
    load = np.asarray(load, dtype=float)
    if load.shape != (system.n_sensors,):
        raise ValidationError(f"load must have shape ({system.n_sensors},)")
    return computation_coefficients(system, mapping) @ load


def latencies(system: HiperDSystem, mapping: Mapping, load) -> np.ndarray:
    """``L_k(lambda)`` for every path at load vector ``load``."""
    load = np.asarray(load, dtype=float)
    if load.shape != (system.n_sensors,):
        raise ValidationError(f"load must have shape ({system.n_sensors},)")
    return latency_coefficients(system, mapping) @ load
