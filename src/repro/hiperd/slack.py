"""System-wide percentage slack (paper Section 4.3).

"Let the fractional value of a given QoS attribute be the value of the
attribute as a percentage of the maximum allowed value.  Then the percentage
slack for a given QoS attribute is the fractional value subtracted from 1.
The system-wide percentage slack is the minimum value of percentage slack
taken over all QoS constraints."

For an application the relevant attribute is the *worse* of its computation
time and its outgoing communication times against ``1/R(a_i)``; for a path
it is the latency against ``L_k^max`` — which is exactly ``1 - fractional
value`` over the rows of the :class:`~repro.hiperd.constraints.ConstraintSet`
(zero-coefficient communication rows contribute slack 1 and never bind).
"""

from __future__ import annotations

import numpy as np

from repro.alloc.mapping import Mapping
from repro.hiperd.constraints import ConstraintSet, build_constraints
from repro.hiperd.model import HiperDSystem

__all__ = ["slack", "slack_from_constraints", "slack_breakdown"]


def slack_from_constraints(constraints: ConstraintSet, load) -> float:
    """System-wide percentage slack at ``load`` given a prebuilt constraint set.

    Negative when some constraint is already violated.
    """
    frac = constraints.fractional_values_at(load)
    return float(np.min(1.0 - frac))


def slack(system: HiperDSystem, mapping: Mapping, load) -> float:
    """System-wide percentage slack of ``mapping`` at load vector ``load``."""
    return slack_from_constraints(build_constraints(system, mapping), load)


def slack_breakdown(system: HiperDSystem, mapping: Mapping, load) -> dict[str, float]:
    """Per-kind minimum slack (``"comp"``, ``"comm"``, ``"latency"``) plus the
    system-wide value under ``"overall"`` — handy when diagnosing which QoS
    class limits a mapping."""
    cs = build_constraints(system, mapping)
    out: dict[str, float] = {}
    for kind in ("comp", "comm", "latency"):
        sub = cs.select(kind)
        out[kind] = slack_from_constraints(sub, load) if len(sub) else float("inf")
    out["overall"] = slack_from_constraints(cs, load)
    return out
