"""Nonlinear (convex) complexity functions for HiPer-D systems.

Section 3.2 is explicit that the linear model of the experiments is *not*
part of the metric's formulation: "the computation times of different
applications ... are likely to be of different complexities with respect to
lambda", and the analysis only needs each boundary minimization to be a
convex program (``x^p`` for ``p >= 1`` is among the paper's examples of
convex complexity functions).

This module generalizes the linear model to per-(application, sensor) power
laws:

    T^c_i(lambda) = mtf(m(i)) * sum_z b[i, m(i), z] * |lambda_z|^{p[i, z]}

with exponents ``p >= 1`` (convex; the absolute value extends the model
evenly to negative loads, which keeps the numeric solver's exploration
domain-safe without changing values on the physical domain
``lambda >= 0``).  Path latencies are the corresponding sums along the
chain (communication still linear, as declared on the system).  The metric
is computed through the generic FePIA framework with the SLSQP boundary
solver; for ``p == 1`` everywhere it reproduces the linear fast path
exactly (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.alloc.mapping import Mapping
from repro.core.fepia import FePIAAnalysis
from repro.core.impact import CallableImpact
from repro.core.metric import MetricResult
from repro.exceptions import ValidationError
from repro.hiperd.model import HiperDSystem
from repro.hiperd.timing import computation_coefficients

__all__ = ["power_law_analysis", "power_law_robustness"]


def _power_impact(coeff: np.ndarray, exps: np.ndarray, name: str) -> CallableImpact:
    """``f(lam) = sum_z coeff_z |lam_z|^{exps_z}`` with its gradient."""

    def f(lam: np.ndarray) -> float:
        return float(np.sum(coeff * np.abs(lam) ** exps))

    def grad(lam: np.ndarray) -> np.ndarray:
        a = np.abs(lam)
        # d/dlam |lam|^p = p |lam|^{p-1} sign(lam); guard 0^{p-1} for p=1.
        with np.errstate(divide="ignore", invalid="ignore"):
            base = np.where(
                a > 0,
                a ** (exps - 1.0),
                # exps holds caller-specified exponents, so the linear case
                # really is the exact literal 1.0, not a computed value
                np.where(exps == 1.0, 1.0, 0.0),  # repro: noqa[R003]
            )
        return coeff * exps * base * np.where(lam >= 0, 1.0, -1.0)

    return CallableImpact(f, grad=grad, name=name, convex=True)


def power_law_analysis(
    system: HiperDSystem,
    mapping: Mapping,
    load_orig,
    exponents,
) -> FePIAAnalysis:
    """Build the FePIA analysis for power-law complexity functions.

    Parameters
    ----------
    exponents:
        ``(n_apps, n_sensors)`` array of per-term exponents, all >= 1.
        Entries for sensors without a route are ignored (their coefficients
        are zero).
    """
    load_orig = np.asarray(load_orig, dtype=float)
    if load_orig.shape != (system.n_sensors,):
        raise ValidationError(f"load_orig must have shape ({system.n_sensors},)")
    exps = np.asarray(exponents, dtype=float)
    if exps.shape != (system.n_apps, system.n_sensors):
        raise ValidationError(
            f"exponents must have shape ({system.n_apps}, {system.n_sensors})"
        )
    if np.any(exps < 1.0):
        raise ValidationError("exponents must be >= 1 (convexity, Section 3.2)")

    comp = computation_coefficients(system, mapping)  # mtf folded in
    rates = system.effective_rates()

    analysis = FePIAAnalysis("hiperd-power-law").with_perturbation(
        "lambda", load_orig, discrete=True
    )

    on_paths = set(map(int, system.apps_on_paths()))
    for i in sorted(on_paths):
        analysis.add_feature(
            f"T_c[a{i}]",
            impact=_power_impact(comp[i], exps[i], f"T_c[a{i}]"),
            upper=1.0 / rates[i],
            meta={"kind": "comp", "app": i},
        )

    # Communication constraints stay linear (affine impacts).
    seen: set[tuple[int, int]] = set()
    for path in system.paths:
        edges = path.edges()
        kind, idx = path.terminal
        if kind == "app" and path.apps:
            edges.append((path.apps[-1], idx))
        for i, p in edges:
            if (i, p) in seen:
                continue
            seen.add((i, p))
            vec = system.comm_coeffs.get((i, p))
            if vec is None:
                continue  # zero transfer time: never binds
            analysis.add_feature(
                f"T_n[a{i}->a{p}]",
                impact=np.asarray(vec, dtype=float),
                upper=1.0 / rates[i],
                meta={"kind": "comm"},
            )

    for k, path in enumerate(system.paths):
        apps = list(path.apps)

        def latency(lam, _apps=tuple(apps)):
            return float(
                sum(np.sum(comp[a] * np.abs(lam) ** exps[a]) for a in _apps)
            )

        def latency_grad(lam, _apps=tuple(apps)):
            a_ = np.abs(lam)
            g = np.zeros_like(lam)
            for a in _apps:
                with np.errstate(divide="ignore", invalid="ignore"):
                    base = np.where(
                        a_ > 0,
                        a_ ** (exps[a] - 1.0),
                        # same exact-literal dispatch as _power_impact above
                        np.where(exps[a] == 1.0, 1.0, 0.0),  # repro: noqa[R003]
                    )
                g = g + comp[a] * exps[a] * base
            return g * np.where(lam >= 0, 1.0, -1.0)

        # Fold linear comm terms of the chain into the latency.
        comm_vec = np.zeros(system.n_sensors)
        edges = path.edges()
        kind, idx = path.terminal
        if kind == "app" and apps:
            edges.append((apps[-1], idx))
        for e in edges:
            vec = system.comm_coeffs.get(e)
            if vec is not None:
                comm_vec = comm_vec + vec
        if np.any(comm_vec != 0):
            base_latency = latency
            base_grad = latency_grad

            def latency(lam, _b=base_latency, _c=comm_vec):
                return _b(lam) + float(_c @ lam)

            def latency_grad(lam, _g=base_grad, _c=comm_vec):
                return _g(lam) + _c

        analysis.add_feature(
            f"L[{k}]",
            impact=CallableImpact(latency, grad=latency_grad, name=f"L[{k}]", convex=True),
            upper=float(system.latency_limits[k]),
            meta={"kind": "latency", "path": k},
        )
    return analysis


def power_law_robustness(
    system: HiperDSystem,
    mapping: Mapping,
    load_orig,
    exponents,
    *,
    config: "SolverConfig | dict | None" = None,
    solver_options: dict | None = None,
) -> MetricResult:
    """The robustness metric under power-law complexity functions.

    Floored (the load is discrete), computed with the numeric convex solver;
    with all exponents 1 this equals the linear closed form.  ``config``
    takes a :class:`~repro.core.config.SolverConfig`; the removed
    ``solver_options`` keyword raises ``ValidationError``.
    """
    from repro.core.config import resolve_config

    cfg = resolve_config(config, solver_options)
    analysis = power_law_analysis(system, mapping, load_orig, exponents)
    return analysis.analyze(config=cfg)
