"""DAG validation and path enumeration for HiPer-D systems (Figure 2).

The application/data-transfer graph is a DAG whose sources are sensors and
whose sinks are actuators (or multiple-input applications for update paths).
:func:`enumerate_paths_from_edges` walks it exactly per the paper's
definition: a path starts at a sensor (the driving sensor) and follows
single-input applications until it reaches an actuator (**trigger path**) or
an application with more than one input (**update path**).  Branching
(out-degree > 1) spawns one path per branch, so "an application may be
present in multiple paths".
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import ModelError
from repro.hiperd.model import Path

__all__ = ["build_graph", "validate_dag", "enumerate_paths_from_edges"]


def build_graph(n_apps, sensor_edges, app_edges, actuator_edges) -> nx.DiGraph:
    """Build the heterogeneous DAG with namespaced node labels.

    Sensors are ``("s", z)``, applications ``("a", i)``, actuators
    ``("t", t)``.
    """
    g = nx.DiGraph()
    g.add_nodes_from(("a", i) for i in range(n_apps))
    for z, i in sensor_edges:
        g.add_edge(("s", int(z)), ("a", int(i)))
    for i, p in app_edges:
        g.add_edge(("a", int(i)), ("a", int(p)))
    for i, t in actuator_edges:
        g.add_edge(("a", int(i)), ("t", int(t)))
    return g


def validate_dag(
    *,
    n_apps,
    n_sensors,
    n_actuators,
    sensor_edges,
    app_edges,
    actuator_edges,
) -> None:
    """Structural validation; raises :class:`ModelError` on problems.

    Checks index ranges, acyclicity of the application subgraph, and that
    every application is reachable from some sensor (otherwise it can never
    receive data and its load-dependent computation time is meaningless).
    """
    for z, i in sensor_edges:
        if not (0 <= z < n_sensors and 0 <= i < n_apps):
            raise ModelError(f"sensor edge ({z}, {i}) out of range")
    for i, p in app_edges:
        if not (0 <= i < n_apps and 0 <= p < n_apps):
            raise ModelError(f"application edge ({i}, {p}) out of range")
        if i == p:
            raise ModelError(f"application self-loop on {i}")
    for i, t in actuator_edges:
        if not (0 <= i < n_apps and 0 <= t < n_actuators):
            raise ModelError(f"actuator edge ({i}, {t}) out of range")

    g = build_graph(n_apps, sensor_edges, app_edges, actuator_edges)
    app_sub = g.subgraph([("a", i) for i in range(n_apps)])
    if not nx.is_directed_acyclic_graph(app_sub):
        cycle = nx.find_cycle(app_sub)
        raise ModelError(f"application graph contains a cycle: {cycle}")

    reachable: set = set()
    for z in range(n_sensors):
        node = ("s", z)
        if node in g:
            reachable |= nx.descendants(g, node)
    unreachable = [i for i in range(n_apps) if ("a", i) not in reachable]
    if unreachable:
        raise ModelError(
            f"applications not reachable from any sensor: {unreachable}"
        )


def enumerate_paths_from_edges(
    *,
    n_apps,
    sensor_edges,
    app_edges,
    actuator_edges,
) -> list[Path]:
    """Enumerate the path set ``P`` of the DAG per the Section 3.2 definition.

    Deterministic order: by sensor index, then depth-first following sorted
    successor lists — so a system built twice yields the same path indexing.
    """
    in_degree = [0] * n_apps
    for _, i in sensor_edges:
        in_degree[int(i)] += 1
    succ_apps: dict[int, list[int]] = {i: [] for i in range(n_apps)}
    for i, p in app_edges:
        in_degree[int(p)] += 1
        succ_apps[int(i)].append(int(p))
    succ_acts: dict[int, list[int]] = {i: [] for i in range(n_apps)}
    for i, t in actuator_edges:
        succ_acts[int(i)].append(int(t))
    for i in range(n_apps):
        succ_apps[i].sort()
        succ_acts[i].sort()

    paths: list[Path] = []

    def walk(sensor: int, chain: list[int], app: int) -> None:
        if in_degree[app] > 1:
            # Update path: ends at (does not include) the multi-input app.
            paths.append(Path(sensor, tuple(chain), ("app", app)))
            return
        chain = chain + [app]
        extended = False
        for t in succ_acts[app]:
            paths.append(Path(sensor, tuple(chain), ("actuator", t)))
            extended = True
        for p in succ_apps[app]:
            walk(sensor, chain, p)
            extended = True
        if not extended:
            raise ModelError(
                f"application {app} is a dead end: no actuator or successor "
                f"application (every chain must terminate per Section 3.2)"
            )

    by_sensor = sorted((int(z), int(i)) for z, i in sensor_edges)
    for z, first in by_sensor:
        walk(z, [], first)
    if not paths:
        raise ModelError("no paths found: no sensor edges?")
    return paths
