"""Random HiPer-D scenario generation (paper Section 4.3).

The experiment generates "a system that consisted of 19 paths", three sensors
(rates 4e-5, 3e-5, 8e-6), three actuators, 20 applications and five machines;
``T^c_ij(lambda) = sum_z b_ijz lambda_z`` with ``b_ijz ~ Gamma(mean 10, task
and machine heterogeneity 0.7)`` for routed sensors (0 otherwise); latency
limits uniform over [750, 1250]; communication times zero; initial loads
``lambda_orig = (962, 380, 240)``.

**Calibration note** (documented in DESIGN.md / EXPERIMENTS.md): taken
literally, those constants are mutually inconsistent — at the stated loads a
typical computation time is tens of thousands of time units, far above both
the latency cap ~1000 and most throughput caps ``1/R``; *every* random
mapping would be infeasible, while the paper's Figure 4 shows positive slack
up to ~0.65.  The generator therefore keeps the paper's *relative* rates and
the uniform [750, 1250] latency shape, but rescales both families so that a
typical constraint sits at a configurable fraction of its limit
(``target_fraction``, default 0.5) for an average mapping.  This preserves
everything the experiment measures (the robustness/slack relationship is
scale-covariant) while making the instance realizable.
"""

from __future__ import annotations

import numpy as np

from repro.alloc.mapping import Mapping
from repro.etcgen.gamma import gamma_mean_cov
from repro.exceptions import ValidationError
from repro.hiperd.model import MULTITASK_COEFF, HiperDSystem, Path, Sensor
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["PAPER_RATES", "PAPER_INITIAL_LOAD", "generate_system", "random_hiperd_mappings"]

#: sensor output data rates from Section 4.3
PAPER_RATES = (4e-5, 3e-5, 8e-6)
#: initial sensor loads from Table 2
PAPER_INITIAL_LOAD = (962.0, 380.0, 240.0)


def _generate_paths(
    rng: np.random.Generator,
    n_paths: int,
    n_apps: int,
    n_sensors: int,
    n_actuators: int,
    length_range: tuple[int, int],
) -> list[Path]:
    """Sample a path set covering every application at least once.

    Paths are trigger paths (sensor -> chain of applications -> actuator)
    with lengths uniform in ``length_range``; applications are shared across
    paths (the paper: "an application may be present in multiple paths").
    Every sensor drives at least one path and every application appears on at
    least one path so that all throughput constraints are defined.
    """
    lo, hi = length_range
    if not (1 <= lo <= hi <= n_apps):
        raise ValidationError(f"bad path length range {length_range}")
    if n_paths < n_sensors:
        raise ValidationError("need at least one path per sensor")
    lengths = rng.integers(lo, hi + 1, size=n_paths)
    # Deal every application into the pool first so each occurs somewhere,
    # then pad with uniform draws.
    total_slots = int(lengths.sum())
    if total_slots < n_apps:
        # Stretch the last paths until every app can appear.
        deficit = n_apps - total_slots
        for k in range(n_paths):
            room = n_apps - lengths[k]
            take = min(room, deficit)
            lengths[k] += take
            deficit -= take
            if deficit == 0:
                break
        total_slots = int(lengths.sum())
    pool = list(rng.permutation(n_apps))
    pool += list(rng.integers(0, n_apps, size=total_slots - n_apps))
    rng.shuffle(pool)

    # Driving sensors: each sensor at least once, rest uniform.
    drivers = list(range(n_sensors)) + list(
        rng.integers(0, n_sensors, size=n_paths - n_sensors)
    )
    rng.shuffle(drivers)

    paths: list[Path] = []
    cursor = 0
    for k in range(n_paths):
        want = int(lengths[k])
        chain: list[int] = []
        seen: set[int] = set()
        while len(chain) < want and cursor < len(pool):
            a = int(pool[cursor])
            cursor += 1
            if a not in seen:
                chain.append(a)
                seen.add(a)
        while len(chain) < want:  # top up if duplicates exhausted the pool
            a = int(rng.integers(0, n_apps))
            if a not in seen:
                chain.append(a)
                seen.add(a)
        paths.append(
            Path(int(drivers[k]), tuple(chain), ("actuator", int(rng.integers(0, n_actuators))))
        )
    return paths


def generate_system(
    *,
    n_apps: int = 20,
    n_machines: int = 5,
    n_sensors: int = 3,
    n_actuators: int = 3,
    n_paths: int = 19,
    rates=PAPER_RATES,
    initial_load=PAPER_INITIAL_LOAD,
    latency_range: tuple[float, float] = (750.0, 1250.0),
    mean_coeff: float = 10.0,
    task_het: float = 0.7,
    machine_het: float = 0.7,
    path_length_range: tuple[int, int] = (2, 5),
    target_fraction: float = 0.5,
    calibrate: bool = True,
    comm_mean: float = 0.0,
    comm_het: float = 0.7,
    seed=None,
) -> HiperDSystem:
    """Generate a random Section-4.3 system instance.

    With ``calibrate=True`` (default) the sensor rates and latency limits are
    rescaled as described in the module docstring; with ``calibrate=False``
    the literal paper constants are used (virtually always infeasible at the
    paper's initial loads — provided for inspection).

    ``comm_mean = 0`` (default) reproduces the paper's zero-communication
    experiments; a positive value draws linear communication-time
    coefficients ``T^n_ip(lambda) = d_ip . lambda`` for every app-to-app
    transfer on a path, with ``d ~ Gamma(comm_mean, comm_het)`` on the
    sending application's routed sensors (data volumes scale with the loads
    that reach the sender).
    """
    n_apps = check_positive_int(n_apps, "n_apps")
    n_machines = check_positive_int(n_machines, "n_machines")
    n_sensors = check_positive_int(n_sensors, "n_sensors")
    n_paths = check_positive_int(n_paths, "n_paths")
    check_positive(target_fraction, "target_fraction")
    rates = np.asarray(rates, dtype=float)
    initial_load = np.asarray(initial_load, dtype=float)
    if rates.shape != (n_sensors,) or initial_load.shape != (n_sensors,):
        raise ValidationError("rates and initial_load must have one entry per sensor")
    rng = ensure_rng(seed)

    paths = _generate_paths(rng, n_paths, n_apps, n_sensors, n_actuators, path_length_range)

    # Routed-sensor masks from the path set.
    routed = np.zeros((n_apps, n_sensors), dtype=bool)
    for p in paths:
        for a in p.apps:
            routed[a, p.driving_sensor] = True

    # CVB-style coefficients: a per-application magnitude q_i, then
    # per-(machine, sensor) variation — zeroed where no route exists.
    q = np.atleast_1d(gamma_mean_cov(mean_coeff, task_het, size=n_apps, seed=rng))
    coeffs = np.zeros((n_apps, n_machines, n_sensors))
    for i in range(n_apps):
        if machine_het == 0.0:
            draw = np.full((n_machines, n_sensors), q[i])
        else:
            alpha = 1.0 / (machine_het**2)
            draw = rng.gamma(shape=alpha, size=(n_machines, n_sensors)) * (
                q[i] * machine_het**2
            )
        coeffs[i] = np.where(routed[i][None, :], draw, 0.0)

    raw_latency = rng.uniform(latency_range[0], latency_range[1], size=n_paths)

    # Optional linear communication coefficients on the path edges.
    comm_coeffs: dict[tuple[int, int], np.ndarray] = {}
    if comm_mean > 0.0:
        edges: set[tuple[int, int]] = set()
        for p in paths:
            edges.update(p.edges())
        for i, pdst in sorted(edges):
            mask = routed[i]
            draw = np.where(
                mask,
                np.atleast_1d(
                    gamma_mean_cov(comm_mean, comm_het, size=n_sensors, seed=rng)
                ),
                0.0,
            )
            comm_coeffs[(i, pdst)] = draw

    if not calibrate:
        return HiperDSystem.from_paths(
            sensors=[Sensor(f"s{z}", float(rates[z])) for z in range(n_sensors)],
            n_apps=n_apps,
            n_machines=n_machines,
            n_actuators=n_actuators,
            paths=paths,
            comp_coeffs=coeffs,
            latency_limits=raw_latency,
            comm_coeffs=comm_coeffs,
        )

    # --- calibration -----------------------------------------------------
    # The slack of a mapping is set by its *worst* constraint, so each limit
    # family (throughput via rates, latency via L_max) is scaled so that the
    # median random mapping's worst fraction within the family equals
    # ``target_fraction``.  Sample a small batch of random mappings and
    # measure directly.
    from repro.hiperd.constraints import build_constraints  # local: avoid cycle

    probe = HiperDSystem.from_paths(
        sensors=[Sensor(f"s{z}", float(rates[z])) for z in range(n_sensors)],
        n_apps=n_apps,
        n_machines=n_machines,
        n_actuators=n_actuators,
        paths=paths,
        comp_coeffs=coeffs,
        latency_limits=raw_latency,
        comm_coeffs=comm_coeffs,
    )
    n_probe = 40
    worst_comp = np.empty(n_probe)
    worst_lat = np.empty(n_probe)
    for k in range(n_probe):
        m = Mapping(rng.integers(0, n_machines, size=n_apps), n_machines)
        cs = build_constraints(probe, m)
        frac = cs.fractional_values_at(initial_load)
        kinds = np.asarray(cs.kinds)
        # Both computation and communication throughput limits scale with
        # the rates, so calibrate them together.
        worst_comp[k] = frac[(kinds == "comp") | (kinds == "comm")].max()
        worst_lat[k] = frac[kinds == "latency"].max()
    # Throughput: fraction scales with the rate, so divide rates by the
    # needed limit inflation.
    phi = target_fraction / float(np.median(worst_comp))
    rates_cal = rates * phi
    # Latency: inflate the limits directly.
    psi = float(np.median(worst_lat)) / target_fraction
    latency_cal = raw_latency * psi

    return HiperDSystem.from_paths(
        sensors=[Sensor(f"s{z}", float(rates_cal[z])) for z in range(n_sensors)],
        n_apps=n_apps,
        n_machines=n_machines,
        n_actuators=n_actuators,
        paths=paths,
        comp_coeffs=coeffs,
        latency_limits=latency_cal,
        comm_coeffs=comm_coeffs,
    )


def random_hiperd_mappings(
    system: HiperDSystem,
    n_mappings: int,
    seed=None,
) -> list[Mapping]:
    """Uniformly random app-to-machine mappings for a HiPer-D system."""
    rng = ensure_rng(seed)
    rows = rng.integers(0, system.n_machines, size=(n_mappings, system.n_apps))
    return [Mapping(row, system.n_machines) for row in rows]
