"""Sensitivity analysis for HiPer-D robustness (library extension).

Mirror of :mod:`repro.alloc.sensitivity` for the second example system:

- :func:`load_gradient` — exact a.e. gradient of the (unfloored) Eq. 11
  metric with respect to the initial loads.  With binding affine constraint
  ``c . lambda <= beta``, ``rho = (beta - c . lambda_0) / ||c||`` so

      d rho / d lambda_0 = -c / ||c||_2

  — the unit inward normal of the binding hyperplane (valid while the
  binding constraint is unique; finite-difference-verified in tests);
- :func:`move_improvements` — every single-application reassignment ranked
  by the robustness it yields (a remapping search primitive);
- :func:`app_criticality` — per-application best available improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.hiperd.model import HiperDSystem
from repro.hiperd.robustness import robustness

__all__ = ["load_gradient", "MoveImprovement", "move_improvements", "app_criticality"]


def load_gradient(system: HiperDSystem, mapping: Mapping, load_orig) -> np.ndarray:
    """``d rho / d lambda_0`` — the unit inward normal of the binding
    constraint (all entries <= 0: any load growth weakly reduces rho)."""
    res = robustness(system, mapping, load_orig, apply_floor=False)
    c = res.constraints.coefficients[res.binding_index]
    n = float(np.linalg.norm(c))
    if n == 0.0:
        return np.zeros(system.n_sensors)
    return -c / n


@dataclass(frozen=True)
class MoveImprovement:
    """One candidate application reassignment and the robustness it yields."""

    app: int
    machine: int
    new_robustness: float
    delta: float


def move_improvements(
    system: HiperDSystem,
    mapping: Mapping,
    load_orig,
    *,
    top: int | None = None,
) -> list[MoveImprovement]:
    """All single-application reassignments ranked by resulting (unfloored)
    robustness.  Unlike the allocation system there is no batch closed form
    (the multitasking factor recouples every constraint), so the candidates
    are evaluated as one population through the batched engine (a single
    stacked constraint pass instead of one pipeline call per move)."""
    from repro.engine import RobustnessEngine  # local: engine imports hiperd

    base = robustness(system, mapping, load_orig, apply_floor=False).raw_value
    candidates: list[Mapping] = []
    labels: list[tuple[int, int]] = []
    for app in range(system.n_apps):
        current = mapping.machine_of(app)
        for machine in range(system.n_machines):
            if machine == current:
                continue
            candidates.append(mapping.move(app, machine))
            labels.append((app, machine))
    batch = RobustnessEngine().evaluate_hiperd(
        system, candidates, load_orig, apply_floor=False
    )
    moves = [
        MoveImprovement(
            app=app,
            machine=machine,
            new_robustness=float(rho),
            delta=float(rho - base),
        )
        for (app, machine), rho in zip(labels, batch.raw_values)
    ]
    moves.sort(key=lambda mv: -mv.new_robustness)
    return moves[:top] if top is not None else moves


def app_criticality(system: HiperDSystem, mapping: Mapping, load_orig) -> np.ndarray:
    """Per-application best available robustness gain from moving it alone."""
    out = np.zeros(system.n_apps)
    for mv in move_improvements(system, mapping, load_orig):
        if mv.delta > out[mv.app]:
            out[mv.app] = mv.delta
    return out
