"""The QoS constraint set of a mapped HiPer-D system (FePIA steps 1+3).

Assembles the feature set ``Phi`` of Eq. 9 with its bounds as a flat list of
affine constraints ``coeff . lambda <= limit``:

- **throughput (computation)** — for every application on a path:
  ``T^c_i(lambda) <= 1 / R(a_i)``;
- **throughput (communication)** — for every app-to-app transfer on a path:
  ``T^n_ip(lambda) <= 1 / R(a_i)``;
- **latency** — for every path: ``L_k(lambda) <= L_k^max``.

Transfers with zero communication coefficients are constant (never violate)
and are kept with zero rows so indices stay aligned; the radius machinery
reports them as infinitely robust.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.hiperd.model import HiperDSystem
from repro.hiperd.timing import computation_coefficients, latency_coefficients

__all__ = ["ConstraintSet", "build_constraints"]


@dataclass(frozen=True)
class ConstraintSet:
    """All QoS constraints of a mapped system, in matrix form.

    ``coefficients[r] . lambda <= limits[r]`` for every row ``r``; ``names``
    and ``kinds`` (``"comp"`` / ``"comm"`` / ``"latency"``) describe the rows.
    """

    coefficients: np.ndarray  # (n_constraints, n_sensors)
    limits: np.ndarray  # (n_constraints,)
    names: tuple[str, ...]
    kinds: tuple[str, ...]

    def __len__(self) -> int:
        return self.limits.size

    def values_at(self, load) -> np.ndarray:
        """Left-hand sides at a given load vector."""
        return self.coefficients @ np.asarray(load, dtype=float)

    def satisfied_at(self, load, *, tol: float = 0.0) -> bool:
        """True when every constraint holds at ``load``."""
        return bool(np.all(self.values_at(load) <= self.limits + tol))

    def fractional_values_at(self, load) -> np.ndarray:
        """Per-constraint value as a fraction of its limit (Section 4.3's
        'fractional value of a QoS attribute')."""
        return self.values_at(load) / self.limits

    def select(self, kind: str) -> "ConstraintSet":
        """Sub-set of one kind (``"comp"``, ``"comm"`` or ``"latency"``)."""
        mask = np.array([k == kind for k in self.kinds], dtype=bool)
        return ConstraintSet(
            coefficients=self.coefficients[mask],
            limits=self.limits[mask],
            names=tuple(n for n, m in zip(self.names, mask) if m),
            kinds=tuple(k for k, m in zip(self.kinds, mask) if m),
        )

    def to_dict(self) -> dict:
        """Encode as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        from repro.utils.serialization import encode_array

        return {
            "type": "ConstraintSet",
            "version": 1,
            "coefficients": encode_array(self.coefficients),
            "limits": encode_array(self.limits),
            "names": list(self.names),
            "kinds": list(self.kinds),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConstraintSet":
        """Decode a payload written by :meth:`to_dict`; validates the type tag."""
        from repro.exceptions import ValidationError
        from repro.utils.serialization import decode_array

        if data.get("type") != "ConstraintSet":
            raise ValidationError(
                f"expected type 'ConstraintSet', got {data.get('type')!r}"
            )
        return cls(
            coefficients=decode_array(data["coefficients"]),
            limits=decode_array(data["limits"]),
            names=tuple(data["names"]),
            kinds=tuple(data["kinds"]),
        )


def build_constraints(system: HiperDSystem, mapping: Mapping) -> ConstraintSet:
    """Assemble the full constraint set for ``mapping`` (Eq. 9 + step 4 bounds)."""
    comp = computation_coefficients(system, mapping)
    lat = latency_coefficients(system, mapping)
    rates = system.effective_rates()

    rows: list[np.ndarray] = []
    limits: list[float] = []
    names: list[str] = []
    kinds: list[str] = []

    # Computation throughput constraints for applications on paths.
    for i in map(int, system.apps_on_paths()):
        rows.append(comp[i])
        limits.append(1.0 / rates[i])
        names.append(f"T_c[a{i}]")
        kinds.append("comp")

    # Communication throughput constraints for transfers on paths (the
    # sending application's rate applies).
    seen_edges: set[tuple[int, int]] = set()
    for path in system.paths:
        edges = path.edges()
        kind, idx = path.terminal
        if kind == "app" and path.apps:
            edges.append((path.apps[-1], idx))
        for i, p in edges:
            if (i, p) in seen_edges:
                continue
            seen_edges.add((i, p))
            vec = system.comm_coeffs.get((i, p))
            rows.append(
                np.zeros(system.n_sensors) if vec is None else np.asarray(vec, float)
            )
            limits.append(1.0 / rates[i])
            names.append(f"T_n[a{i}->a{p}]")
            kinds.append("comm")

    # Latency constraints, one per path.
    for k in range(len(system.paths)):
        rows.append(lat[k])
        limits.append(float(system.latency_limits[k]))
        names.append(f"L[{k}]")
        kinds.append("latency")

    return ConstraintSet(
        coefficients=np.array(rows, dtype=float),
        limits=np.array(limits, dtype=float),
        names=tuple(names),
        kinds=tuple(kinds),
    )
