"""The paper's Table 2: mappings A and B, encoded and reconstructed.

Table 2 publishes, for one generated HiPer-D instance, two mappings with
nearly equal slack but a 3.3x robustness gap:

==============  ===========  ===========
quantity        mapping A    mapping B
==============  ===========  ===========
robustness      353          1166
slack           0.5961       0.5914
lambda*         962,380,593  962,1546,240
==============  ===========  ===========

plus the initial loads (962, 380, 240), the application-to-machine
assignments and every application's computation-time function
``mtf * (inner . lambda)``.  The underlying DAG, sensor rates in force and
latency limits were *not* published, so this module reconstructs a
consistent instance:

- The published multitasking factors imply exactly the paper's
  ``mtf = 1.3 n(m_j)`` rule (verified in tests).
- The binding boundary for A moves only ``lambda_3`` (to 593): a pure-
  ``lambda_3`` constraint; with the published functions the only candidate
  coefficients are those of a1/a6/a9, and a9 (the largest) yields the
  published radius exactly when its path's latency limit is
  ``130 * (240 + 353) = 77090``.  Likewise B's binding constraint is a16's
  with limit ``36.4 * (380 + 1166)``.
- Two more limits are calibrated so the published slacks emerge: B's slack
  0.5914 is matched exactly (via a3's path); A's slack is *forced* to
  ``1 - 240/593 = 0.5953`` by the published ``lambda_3* = 593`` (the paper's
  0.5961 differs by 0.0008 — an internal rounding inconsistency in the
  published table, documented in EXPERIMENTS.md).
- Sensor rates are scaled down so throughput constraints never bind (with
  the published functions and the literal Section 4.3 rates every mapping
  would be infeasible; see the generator's calibration note).

``build_table2_system()`` returns the reconstructed instance plus the two
mappings; the E3 benchmark evaluates both and prints paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alloc.mapping import Mapping
from repro.exceptions import ValidationError
from repro.hiperd.model import HiperDSystem, Path, Sensor

__all__ = [
    "PAPER_TABLE2",
    "INNER_COEFFS_A",
    "INNER_COEFFS_B",
    "ASSIGNMENT_A",
    "ASSIGNMENT_B",
    "INITIAL_LOAD",
    "build_table2_system",
    "published_computation_functions",
]

#: initial sensor loads (lambda_1, lambda_2, lambda_3)
INITIAL_LOAD = np.array([962.0, 380.0, 240.0])

#: published headline numbers
PAPER_TABLE2 = {
    "A": {"robustness": 353.0, "slack": 0.5961, "lambda_star": (962.0, 380.0, 593.0)},
    "B": {"robustness": 1166.0, "slack": 0.5914, "lambda_star": (962.0, 1546.0, 240.0)},
}

# Inner complexity coefficients (lambda_1, lambda_2, lambda_3) per
# application — the integers inside the parentheses of Table 2.
INNER_COEFFS_A = np.array(
    [
        [0, 0, 4],  # a1
        [0, 5, 0],  # a2
        [6, 0, 0],  # a3
        [1, 0, 0],  # a4
        [3, 0, 1],  # a5
        [0, 0, 1],  # a6
        [0, 5, 0],  # a7
        [0, 6, 0],  # a8
        [0, 0, 20],  # a9
        [0, 5, 7],  # a10
        [10, 8, 6],  # a11
        [26, 0, 0],  # a12
        [19, 8, 0],  # a13
        [11, 0, 0],  # a14
        [13, 17, 9],  # a15
        [0, 2, 0],  # a16
        [3, 0, 5],  # a17
        [3, 19, 11],  # a18
        [9, 13, 0],  # a19
        [3, 14, 18],  # a20
    ],
    dtype=float,
)

INNER_COEFFS_B = np.array(
    [
        [0, 0, 4],  # a1
        [0, 2, 0],  # a2
        [11, 0, 0],  # a3
        [4, 2, 0],  # a4
        [3, 0, 1],  # a5
        [0, 0, 1],  # a6
        [0, 5, 0],  # a7
        [0, 6, 0],  # a8
        [0, 0, 3],  # a9
        [0, 3, 3],  # a10
        [10, 4, 8],  # a11
        [24, 0, 0],  # a12
        [23, 6, 0],  # a13
        [7, 0, 0],  # a14
        [13, 17, 9],  # a15
        [0, 7, 0],  # a16
        [3, 0, 5],  # a17
        [6, 2, 10],  # a18
        [4, 8, 0],  # a19
        [3, 14, 18],  # a20
    ],
    dtype=float,
)

# Application assignments (machine index per application, 0-based; machines
# m1..m5 -> 0..4, applications a1..a20 -> 0..19), transcribed from Table 2.
ASSIGNMENT_A = np.array([2, 3, 2, 3, 0, 1, 2, 4, 0, 3, 4, 0, 3, 4, 3, 1, 0, 4, 3, 0])
ASSIGNMENT_B = np.array([2, 1, 0, 0, 0, 4, 2, 4, 3, 4, 1, 3, 2, 1, 3, 4, 0, 0, 1, 0])

#: published multitasking factors, implied by the assignments and the
#: ``1.3 n(m_j)`` rule (verified against the table in tests)
_MTF_A = np.array([6.5, 2.6, 3.9, 7.8, 5.2])
_MTF_B = np.array([7.8, 5.2, 3.9, 3.9, 5.2])

# Per-application path-limit groups derived in the reconstruction analysis:
# which sensor's singleton-path family the application belongs to for the
# calibrated latency limit (1-based sensor labels in comments).
_GROUP = {
    # lambda_3 family (limit tied to a9's binding boundary)
    0: 3, 4: 3, 5: 3, 8: 3, 9: 3,
    # lambda_2 family (limit tied to a16's binding boundary)
    1: 2, 6: 2, 7: 2, 15: 2,
    # lambda_1 family (limit tied to the slack calibration)
    2: 1, 3: 1, 10: 1, 11: 1, 12: 1, 13: 1, 14: 1, 16: 1, 17: 1, 18: 1, 19: 1,
}


def published_computation_functions(which: str) -> np.ndarray:
    """The full coefficient vectors ``mtf * inner`` (one row per application)
    exactly as printed in Table 2 for mapping ``which`` ("A" or "B")."""
    if which == "A":
        return _MTF_A[ASSIGNMENT_A][:, None] * INNER_COEFFS_A
    if which == "B":
        return _MTF_B[ASSIGNMENT_B][:, None] * INNER_COEFFS_B
    raise ValidationError(f"which must be 'A' or 'B', got {which!r}")


@dataclass(frozen=True)
class Table2Instance:
    """The reconstructed system with the two published mappings."""

    system: HiperDSystem
    mapping_a: Mapping
    mapping_b: Mapping
    initial_load: np.ndarray


def build_table2_system() -> Table2Instance:
    """Reconstruct a HiPer-D instance consistent with Table 2.

    See the module docstring for the derivation.  The returned system has
    one singleton trigger path per (application, routed sensor) pair; the
    calibrated latency limits place the binding constraints exactly where
    the published ``lambda*`` vectors say they are.
    """
    n_apps, n_machines, n_sensors, n_actuators = 20, 5, 3, 3

    # b tensor: the published coefficients on each mapping's machine; other
    # machines inherit the A-pattern (their values never matter for the two
    # published mappings but must respect the route masks).
    routed = (INNER_COEFFS_A != 0) | (INNER_COEFFS_B != 0)
    coeffs = np.zeros((n_apps, n_machines, n_sensors))
    coeffs[:] = INNER_COEFFS_A[:, None, :]
    coeffs[np.arange(n_apps), ASSIGNMENT_A, :] = INNER_COEFFS_A
    coeffs[np.arange(n_apps), ASSIGNMENT_B, :] = INNER_COEFFS_B
    # Zero non-routed sensors everywhere (they already are, by construction).
    coeffs *= routed[:, None, :]

    # Shared-machine consistency check (a1, a5, a7, a8, a15, a17, a20 are on
    # the same machine in both mappings; Table 2's functions must agree).
    same = ASSIGNMENT_A == ASSIGNMENT_B
    if not np.allclose(INNER_COEFFS_A[same], INNER_COEFFS_B[same]):
        raise ValidationError("Table 2 transcription error: shared-machine rows differ")

    # --- calibrated latency limits ------------------------------------
    # A's binding boundary: a9's constraint crosses at lambda_3 = 593.
    c9_a = float(_MTF_A[ASSIGNMENT_A[8]] * INNER_COEFFS_A[8, 2])  # 6.5 * 20 = 130
    p3 = c9_a * PAPER_TABLE2["A"]["lambda_star"][2]  # 130 * 593 = 77090
    # B's binding boundary: a16's constraint crosses at lambda_2 = 1546.
    c16_b = float(_MTF_B[ASSIGNMENT_B[15]] * INNER_COEFFS_B[15, 1])  # 5.2 * 7 = 36.4
    p2 = c16_b * PAPER_TABLE2["B"]["lambda_star"][1]
    # lambda_1 family limit: sets A's runner-up slack (a13 at fractional
    # 1 - 0.5961) without ever binding either mapping's robustness.
    lat_a13 = float((_MTF_A[ASSIGNMENT_A[12]] * INNER_COEFFS_A[12]) @ INITIAL_LOAD)
    p1 = lat_a13 / (1.0 - PAPER_TABLE2["A"]["slack"])
    # a3's own limit: sets B's slack to exactly 0.5914.
    lat_a3_b = float((_MTF_B[ASSIGNMENT_B[2]] * INNER_COEFFS_B[2]) @ INITIAL_LOAD)
    p_a3 = lat_a3_b / (1.0 - PAPER_TABLE2["B"]["slack"])

    group_limit = {1: p1, 2: p2, 3: p3}

    paths: list[Path] = []
    limits: list[float] = []
    for i in range(n_apps):
        limit = p_a3 if i == 2 else group_limit[_GROUP[i]]
        for z in range(n_sensors):
            if routed[i, z]:
                paths.append(Path(z, (i,), ("actuator", i % n_actuators)))
                limits.append(limit)

    # Sensor rates: paper's relative rates scaled down so that throughput
    # constraints never bind (see module docstring).
    rates = np.array([4e-5, 3e-5, 8e-6]) * 1e-4

    system = HiperDSystem.from_paths(
        sensors=[Sensor(f"s{z + 1}", float(rates[z])) for z in range(n_sensors)],
        n_apps=n_apps,
        n_machines=n_machines,
        n_actuators=n_actuators,
        paths=paths,
        comp_coeffs=coeffs,
        latency_limits=np.array(limits),
    )
    return Table2Instance(
        system=system,
        mapping_a=Mapping(ASSIGNMENT_A, n_machines),
        mapping_b=Mapping(ASSIGNMENT_B, n_machines),
        initial_load=INITIAL_LOAD.copy(),
    )
