"""HiPer-D system model (paper Section 3.2).

The system consists of heterogeneous sets of **sensors**, **applications**,
**machines** and **actuators**.  Sensors emit data streams periodically;
applications (mapped to multitasking machines) process them and feed other
applications or actuators.  Applications and data transfers form a directed
acyclic graph; **paths** are producer-consumer chains that start at a sensor
(the *driving sensor*) and end at an actuator ("trigger path") or at a
multiple-input application ("update path").

The perturbation parameter is the sensor-load vector ``lambda`` (objects per
data set, one entry per sensor).  Computation times are modeled as functions
of ``lambda``; in the paper's experiments (and the default here) they are
linear, ``T^c_ij(lambda) = mtf * (b_ij . lambda)``, where ``b_ijz = 0`` when
no route exists from sensor ``z`` to application ``a_i`` and ``mtf`` is the
multitasking factor ``1.3 n(m_j)`` for machines running ``n >= 2``
applications (Table 2's caption).  Communication times may carry their own
linear coefficients (the experiments set them to zero).

Two construction styles are supported:

- declare the DAG edges and let :func:`repro.hiperd.dag.enumerate_paths`
  derive the path set (hand-built systems, Figure 2 style);
- declare the paths directly (:meth:`HiperDSystem.from_paths`), the style of
  the Section 4.3 experiments ("a system that consisted of 19 paths").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError, ValidationError
from repro.utils.validation import as_1d_float_array

__all__ = ["Sensor", "Path", "HiperDSystem", "multitasking_factors"]

#: multitasking coefficient from Table 2's caption: mtf = 1.3 n(m_j), n >= 2
MULTITASK_COEFF = 1.3


@dataclass(frozen=True)
class Sensor:
    """A sensor with its maximum periodic output data rate ``R`` (Hz)."""

    name: str
    rate: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("sensor name must be non-empty")
        if not (self.rate > 0 and np.isfinite(self.rate)):
            raise ValidationError(f"sensor rate must be positive, got {self.rate}")


@dataclass(frozen=True)
class Path:
    """One producer-consumer chain ``P_k``.

    ``apps`` lists the applications in chain order (single-input apps only —
    an update path's terminal multiple-input application receives the result
    but is not part of the chain, matching the latency definition "until ...
    the multiple-input application fed by the path *receives* the result").

    ``terminal`` is ``("actuator", t)`` for a trigger path or ``("app", i)``
    for an update path.
    """

    driving_sensor: int
    apps: tuple[int, ...]
    terminal: tuple[str, int]

    def __post_init__(self) -> None:
        if self.driving_sensor < 0:
            raise ValidationError("driving_sensor must be a valid sensor index")
        apps = tuple(int(a) for a in self.apps)
        if len(set(apps)) != len(apps):
            raise ValidationError(f"path visits an application twice: {apps}")
        object.__setattr__(self, "apps", apps)
        kind, idx = self.terminal
        if kind not in ("actuator", "app"):
            raise ValidationError(f"terminal kind must be 'actuator' or 'app', got {kind!r}")
        object.__setattr__(self, "terminal", (kind, int(idx)))

    @property
    def kind(self) -> str:
        """``"trigger"`` (ends at an actuator) or ``"update"`` (ends at a
        multiple-input application)."""
        return "trigger" if self.terminal[0] == "actuator" else "update"

    def edges(self) -> list[tuple[int, int]]:
        """The app-to-app transfer edges along the chain (excluding the
        sensor-to-first and last-to-terminal hops)."""
        return list(zip(self.apps[:-1], self.apps[1:]))


class HiperDSystem:
    """A HiPer-D-like system instance.

    Parameters
    ----------
    sensors:
        The sensor set (rates included).
    n_apps, n_machines, n_actuators:
        Set sizes; applications, machines and actuators are index-identified.
    paths:
        The path set ``P`` (see :class:`Path`).  Build from a DAG with
        :meth:`from_dag` when you have edges instead.
    comp_coeffs:
        ``(n_apps, n_machines, n_sensors)`` array of the linear
        computation-time coefficients ``b_ijz`` (before the multitasking
        factor).  Entry ``[i, j, z]`` must be 0 when sensor ``z`` has no
        route to ``a_i``.
    latency_limits:
        ``L_k^max`` per path, aligned with ``paths``.
    comm_coeffs:
        Optional ``{(i, p): vector}`` linear communication-time coefficients
        for app-to-app transfers (zero = instantaneous, the experiments'
        setting).
    """

    def __init__(
        self,
        *,
        sensors: list[Sensor],
        n_apps: int,
        n_machines: int,
        n_actuators: int,
        paths: list[Path],
        comp_coeffs: np.ndarray,
        latency_limits,
        comm_coeffs: dict[tuple[int, int], np.ndarray] | None = None,
    ) -> None:
        if not sensors:
            raise ValidationError("at least one sensor is required")
        self.sensors = list(sensors)
        self.n_apps = int(n_apps)
        self.n_machines = int(n_machines)
        self.n_actuators = int(n_actuators)
        if min(self.n_apps, self.n_machines) <= 0 or self.n_actuators < 0:
            raise ValidationError("n_apps/n_machines must be >= 1, n_actuators >= 0")

        self.paths = list(paths)
        if not self.paths:
            raise ValidationError("at least one path is required")
        for p in self.paths:
            if p.driving_sensor >= self.n_sensors:
                raise ModelError(f"path driving sensor {p.driving_sensor} out of range")
            for a in p.apps:
                if not (0 <= a < self.n_apps):
                    raise ModelError(f"path application index {a} out of range")
            kind, idx = p.terminal
            bound = self.n_actuators if kind == "actuator" else self.n_apps
            if not (0 <= idx < bound):
                raise ModelError(f"path terminal {p.terminal} out of range")

        coeffs = np.asarray(comp_coeffs, dtype=float)
        want = (self.n_apps, self.n_machines, self.n_sensors)
        if coeffs.shape != want:
            raise ValidationError(f"comp_coeffs shape {coeffs.shape}, expected {want}")
        if np.any(~np.isfinite(coeffs)) or np.any(coeffs < 0):
            raise ValidationError("comp_coeffs must be finite and non-negative")
        self.comp_coeffs = coeffs

        self.latency_limits = as_1d_float_array(latency_limits, "latency_limits")
        if self.latency_limits.size != len(self.paths):
            raise ValidationError(
                f"{self.latency_limits.size} latency limits for {len(self.paths)} paths"
            )
        if np.any(self.latency_limits <= 0):
            raise ValidationError("latency limits must be positive")

        self.comm_coeffs: dict[tuple[int, int], np.ndarray] = {}
        for edge, vec in (comm_coeffs or {}).items():
            i, p = int(edge[0]), int(edge[1])
            v = as_1d_float_array(vec, f"comm_coeffs[{edge}]")
            if v.size != self.n_sensors:
                raise ValidationError(
                    f"comm coefficient vector for edge {edge} has size {v.size}, "
                    f"expected {self.n_sensors}"
                )
            if np.any(v < 0):
                raise ValidationError("comm coefficients must be non-negative")
            self.comm_coeffs[(i, p)] = v

        self._check_route_consistency()

    # ------------------------------------------------------------------
    @property
    def n_sensors(self) -> int:
        return len(self.sensors)

    @property
    def rates(self) -> np.ndarray:
        """Sensor output data rates as an array."""
        return np.array([s.rate for s in self.sensors], dtype=float)

    def apps_on_paths(self) -> np.ndarray:
        """Sorted indices of applications that belong to at least one path."""
        seen: set[int] = set()
        for p in self.paths:
            seen.update(p.apps)
        return np.array(sorted(seen), dtype=np.int64)

    def paths_of_app(self, app: int) -> list[int]:
        """Indices of the paths containing application ``app``."""
        return [k for k, p in enumerate(self.paths) if app in p.apps]

    def effective_rates(self) -> np.ndarray:
        """``R(a_i)`` per application: the *highest* driving-sensor rate over
        the paths containing it (the binding throughput requirement when an
        application serves several paths); 0 for apps on no path (no
        throughput constraint)."""
        rates = self.rates
        out = np.zeros(self.n_apps)
        for p in self.paths:
            r = rates[p.driving_sensor]
            for a in p.apps:
                out[a] = max(out[a], r)
        return out

    def routed_sensors(self, app: int) -> np.ndarray:
        """Boolean mask of sensors with a route to ``app`` (via the paths)."""
        mask = np.zeros(self.n_sensors, dtype=bool)
        for p in self.paths:
            if app in p.apps:
                mask[p.driving_sensor] = True
        return mask

    def _check_route_consistency(self) -> None:
        """``b_ijz`` must vanish for sensors with no route to ``a_i``
        (Section 4.3); apps on no path may still have coefficients (they are
        modeled but unconstrained)."""
        for i in map(int, self.apps_on_paths()):
            mask = self.routed_sensors(i)
            bad = self.comp_coeffs[i][:, ~mask]
            if np.any(bad != 0):
                raise ModelError(
                    f"application {i} has nonzero computation coefficients for "
                    f"sensors without a route to it"
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_paths(
        cls,
        *,
        sensors,
        n_apps,
        n_machines,
        n_actuators,
        paths,
        comp_coeffs,
        latency_limits,
        comm_coeffs=None,
    ) -> "HiperDSystem":
        """Construct directly from a declared path set (Section 4.3 style)."""
        return cls(
            sensors=sensors,
            n_apps=n_apps,
            n_machines=n_machines,
            n_actuators=n_actuators,
            paths=paths,
            comp_coeffs=comp_coeffs,
            latency_limits=latency_limits,
            comm_coeffs=comm_coeffs,
        )

    @classmethod
    def from_dag(
        cls,
        *,
        sensors,
        n_apps,
        n_machines,
        n_actuators,
        sensor_edges,
        app_edges,
        actuator_edges,
        comp_coeffs,
        latency_limits,
        comm_coeffs=None,
    ) -> "HiperDSystem":
        """Construct from DAG edges; the path set is derived by enumeration
        (see :func:`repro.hiperd.dag.enumerate_paths`).  ``latency_limits``
        must align with the enumeration order."""
        from repro.hiperd.dag import enumerate_paths_from_edges, validate_dag

        validate_dag(
            n_apps=n_apps,
            n_sensors=len(sensors),
            n_actuators=n_actuators,
            sensor_edges=sensor_edges,
            app_edges=app_edges,
            actuator_edges=actuator_edges,
        )
        paths = enumerate_paths_from_edges(
            n_apps=n_apps,
            sensor_edges=sensor_edges,
            app_edges=app_edges,
            actuator_edges=actuator_edges,
        )
        return cls(
            sensors=sensors,
            n_apps=n_apps,
            n_machines=n_machines,
            n_actuators=n_actuators,
            paths=paths,
            comp_coeffs=comp_coeffs,
            latency_limits=latency_limits,
            comm_coeffs=comm_coeffs,
        )


def multitasking_factors(counts: np.ndarray) -> np.ndarray:
    """Per-machine multitasking factor: ``1.3 n(m_j)`` when ``n(m_j) >= 2``,
    1 otherwise (a machine running a single application is not slowed)."""
    counts = np.asarray(counts)
    return np.where(counts >= 2, MULTITASK_COEFF * counts, 1.0)
