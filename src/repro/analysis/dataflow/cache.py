"""Content-addressed incremental analysis cache.

A :class:`SummaryStore` persists, per analysed file, everything the runner
needs to skip re-parsing it on the next run:

- the :class:`~repro.analysis.dataflow.summaries.ModuleSummary`,
- the raw (pre-suppression) local findings,
- the suppression-marker map and test-ness flag,
- the codes of the rules that actually ran on the file.

Entries are keyed by resolved path and validated against a sha256 of the
source bytes, so editing a file invalidates exactly that file.  The whole
store is additionally stamped with a *fingerprint* (cache format version +
the registered rule codes): adding, removing or renaming a rule discards
the store wholesale rather than serving findings from a stale rule set.

The store is a single JSON document written atomically (tmp + rename); a
corrupt or unreadable store degrades to an empty cache, never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.analysis.dataflow.summaries import ModuleSummary
from repro.analysis.findings import Finding

__all__ = ["SummaryStore", "CACHE_VERSION", "DEFAULT_CACHE_PATH", "content_hash"]

#: bump when the summary or entry schema changes incompatibly
#: (v3: concurrency facts — async/await boundaries, lock regions, task
#: spawns, blocking calls, obs-context flags — for R110–R114;
#: v4: performance facts — ndarray-typed locals, loop regions, element
#: loops, loop-invariant calls, accumulation sites — for R120–R124, plus
#: fix payloads on cached raw findings)
CACHE_VERSION = 4

#: default store location used by ``repro lint`` (cwd-relative)
DEFAULT_CACHE_PATH = Path(".repro-lint-cache.json")


def content_hash(data: bytes) -> str:
    """sha256 hex digest of a file's raw bytes."""
    return hashlib.sha256(data).hexdigest()


class SummaryStore:
    """JSON-backed per-file cache of summaries + raw findings."""

    def __init__(self, path: Path | str = DEFAULT_CACHE_PATH) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict[str, Any]] = {}
        self._fingerprint = ""
        self._dirty = False
        self._loaded = False

    # -- lifecycle ---------------------------------------------------------

    def load(self, fingerprint: str) -> None:
        """Read the store from disk, discarding it on any mismatch."""
        self._loaded = True
        self._fingerprint = fingerprint
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._entries = {}
            return
        if (
            not isinstance(doc, dict)
            or doc.get("fingerprint") != fingerprint
            or not isinstance(doc.get("entries"), dict)
        ):
            self._entries = {}
            self._dirty = True
            return
        self._entries = doc["entries"]

    def save(self) -> None:
        """Atomically persist the store (no-op when nothing changed)."""
        if not self._dirty:
            return
        doc = {"fingerprint": self._fingerprint, "entries": self._entries}
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(doc), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            return
        self._dirty = False

    def __len__(self) -> int:
        return len(self._entries)

    # -- entries -----------------------------------------------------------

    def get(self, file_key: str, digest: str) -> dict[str, Any] | None:
        """Cached entry for *file_key* when its content hash still matches."""
        entry = self._entries.get(file_key)
        if entry is None or entry.get("hash") != digest:
            return None
        return entry

    def put(
        self,
        file_key: str,
        digest: str,
        *,
        raw_findings: list[Finding],
        markers: dict[int, frozenset[str]],
        is_test: bool,
        ran_codes: list[str],
        summary: ModuleSummary,
    ) -> None:
        """Record one freshly-analysed file."""
        self._entries[file_key] = {
            "hash": digest,
            "raw": [f.to_dict() for f in raw_findings],
            "markers": {str(line): sorted(codes) for line, codes in markers.items()},
            "is_test": is_test,
            "ran_codes": sorted(ran_codes),
            "summary": summary.to_dict(),
        }
        self._dirty = True

    @staticmethod
    def entry_findings(entry: dict[str, Any]) -> list[Finding]:
        """Deserialize the raw findings of a cache entry."""
        return [Finding.from_dict(d) for d in entry["raw"]]

    @staticmethod
    def entry_markers(entry: dict[str, Any]) -> dict[int, frozenset[str]]:
        """Deserialize the suppression-marker map of a cache entry."""
        return {
            int(line): frozenset(codes)
            for line, codes in entry["markers"].items()
        }

    @staticmethod
    def entry_summary(entry: dict[str, Any]) -> ModuleSummary:
        """Deserialize the module summary of a cache entry."""
        return ModuleSummary.from_dict(entry["summary"])
