"""Interprocedural dataflow layer of :mod:`repro.analysis`.

The syntactic rules (R001–R008) look at one statement at a time.  This
subpackage adds a project-wide view in two phases:

1. **Summary phase** (:mod:`repro.analysis.dataflow.summaries`) — each
   module is reduced to a serializable :class:`ModuleSummary`: per-function
   facts about parameters, RNG creation sites and their seed provenance,
   call records, in-place mutation effects, captured globals / ``self``
   attributes, pool submissions and except-handler shapes.
2. **Propagation phase** (:mod:`repro.analysis.dataflow.project`) — a
   :class:`ProjectContext` indexes every summary, builds the call graph and
   runs small monotone fixpoints (seed derivation of return values,
   transitive parameter mutation, transitive ``FailureRecord`` creation,
   transitive global capture) that power the cross-function rules
   R101–R104 in :mod:`repro.analysis.checks.interproc`.

Summaries are content-addressed: :class:`~repro.analysis.dataflow.cache.
SummaryStore` persists them (plus each file's raw local findings) keyed by
a sha256 of the source, so an unchanged file is never re-parsed — only the
cheap propagation phase re-runs.
"""

from __future__ import annotations

from repro.analysis.dataflow.cache import SummaryStore
from repro.analysis.dataflow.project import ProjectContext
from repro.analysis.dataflow.summaries import (
    FunctionSummary,
    ModuleSummary,
    module_name_for_path,
    summarize_module,
)

__all__ = [
    "FunctionSummary",
    "ModuleSummary",
    "ProjectContext",
    "SummaryStore",
    "module_name_for_path",
    "summarize_module",
]
