"""Propagation phase: project-wide fixpoints over module summaries.

A :class:`ProjectContext` indexes every :class:`~repro.analysis.dataflow.
summaries.FunctionSummary` by its fully-qualified name and runs four small
monotone fixpoints on the call graph:

- :attr:`returns_derived` — which functions provably return seed-derived
  values (pessimistic start: a function is underived until every project
  dependency of its return expressions is derived);
- :meth:`mutates_param` — transitive closure of pre-rebind in-place
  parameter mutation (``f`` passing its ``pi`` to ``g`` which mutates the
  receiving parameter taints ``f``'s parameter too);
- :meth:`creates_failure_record` — whether a function can (transitively)
  construct a ``FailureRecord``;
- :meth:`transitive_global_reads` — mutable module globals captured
  directly or through callees (bounded BFS).

The concurrency family (R110–R114) adds three more:

- :attr:`blocking_roots` — sync functions that (transitively) perform a
  blocking call, with a human-readable chain for the finding message;
- :meth:`transitive_locks` — lock identities a function may acquire,
  directly or through callees (bounded BFS, feeds the R112 lock graph);
- :attr:`uses_obs_context` — whether a function (transitively) consumes
  ambient obs/contextvar state (R114).

The performance family (R120–R124) adds one:

- :attr:`consults_radius_store` — whether a function (transitively) probes
  a radius store / LRU cache (``<store>.get`` / ``<cache>.get``) before
  computing, which is what clears a raw-solver call under R124.

All fixpoints are computed lazily on first use and cached for the lifetime
of the context, which is one lint run.
"""

from __future__ import annotations

from repro.analysis.dataflow.summaries import FunctionSummary, ModuleSummary

__all__ = ["ProjectContext"]

#: call-graph BFS depth bound (defence against pathological cycles; the
#: fixpoints themselves are iteration-capped as well)
_MAX_DEPTH = 12


class ProjectContext:
    """Cross-file view over every module summarized in one lint run."""

    def __init__(self, modules: list[ModuleSummary]) -> None:
        self.modules: list[ModuleSummary] = modules
        #: fully-qualified function name -> summary
        self.functions: dict[str, FunctionSummary] = {}
        #: fully-qualified function name -> owning module summary
        self.owner: dict[str, ModuleSummary] = {}
        for mod in modules:
            for fname, fsum in mod.functions.items():
                qual = f"{mod.module}.{fname}"
                self.functions[qual] = fsum
                self.owner[qual] = mod
        self._returns_derived: dict[str, bool] | None = None
        self._mutated_closure: dict[str, frozenset[str]] | None = None
        self._creates_fr: dict[str, bool] | None = None
        self._global_reads: dict[str, frozenset[str]] = {}
        self._blocking_roots: dict[str, str] | None = None
        self._locks: dict[str, frozenset[str]] = {}
        self._uses_context: dict[str, bool] | None = None
        self._consults_store: dict[str, bool] | None = None

    # -- resolution --------------------------------------------------------

    def function(self, qualname: str) -> FunctionSummary | None:
        """Summary for a fully-qualified name, or None when unknown."""
        return self.functions.get(qualname)

    def callee_param(self, callee: FunctionSummary, position: int) -> str | None:
        """Name of the parameter receiving positional argument *position*
        (``self`` skipped for methods, assuming a bound call)."""
        params = callee.params
        if callee.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        if 0 <= position < len(params):
            return params[position]
        return None

    # -- fixpoint: seed derivation of return values ------------------------

    @property
    def returns_derived(self) -> dict[str, bool]:
        """Function qualname -> "its return value is seed-derived"."""
        if self._returns_derived is None:
            status = {q: False for q in self.functions}
            for _ in range(_MAX_DEPTH):
                changed = False
                for qual, f in self.functions.items():
                    if status[qual] or not f.returns_derived:
                        continue
                    if all(status.get(dep, False) for dep in f.returns_depends):
                        status[qual] = True
                        changed = True
                if not changed:
                    break
            self._returns_derived = status
        return self._returns_derived

    def rng_site_tainted(self, site_depends: tuple[str, ...]) -> bool:
        """True when any dependency of an RNG site fails to derive."""
        table = self.returns_derived
        return any(not table.get(dep, False) for dep in site_depends)

    # -- fixpoint: transitive parameter mutation ---------------------------

    @property
    def mutated_params(self) -> dict[str, frozenset[str]]:
        """Function qualname -> parameters mutated locally or via callees."""
        if self._mutated_closure is None:
            closure: dict[str, set[str]] = {
                q: {p for p, _ in f.mutated_params}
                for q, f in self.functions.items()
            }
            for _ in range(_MAX_DEPTH):
                changed = False
                for qual, f in self.functions.items():
                    for rec in f.calls:
                        callee = self.functions.get(rec.callee)
                        if callee is None:
                            continue
                        for pos, caller_param in rec.pi_positions:
                            cp = self.callee_param(callee, pos)
                            if cp is not None and cp in closure[rec.callee]:
                                if caller_param not in closure[qual]:
                                    closure[qual].add(caller_param)
                                    changed = True
                        for kw, caller_param in rec.pi_keywords:
                            if kw in callee.params and kw in closure[rec.callee]:
                                if caller_param not in closure[qual]:
                                    closure[qual].add(caller_param)
                                    changed = True
                if not changed:
                    break
            self._mutated_closure = {q: frozenset(s) for q, s in closure.items()}
        return self._mutated_closure

    def mutates_param(self, qualname: str, param: str) -> bool:
        """Does *qualname* mutate *param* in place, possibly via callees?"""
        return param in self.mutated_params.get(qualname, frozenset())

    # -- fixpoint: transitive FailureRecord creation -----------------------

    @property
    def creates_failure_record(self) -> dict[str, bool]:
        """Function qualname -> "can construct a FailureRecord"."""
        if self._creates_fr is None:
            status: dict[str, bool] = {}
            for qual, f in self.functions.items():
                status[qual] = any(
                    name.rsplit(".", 1)[-1] == "FailureRecord"
                    for name in f.call_names
                )
            for _ in range(_MAX_DEPTH):
                changed = False
                for qual, f in self.functions.items():
                    if status[qual]:
                        continue
                    if any(status.get(c, False) for c in f.call_names):
                        status[qual] = True
                        changed = True
                if not changed:
                    break
            self._creates_fr = status
        return self._creates_fr

    def call_creates_failure_record(self, call_names: tuple[str, ...]) -> bool:
        """True when any of *call_names* is (or transitively reaches) a
        ``FailureRecord`` constructor."""
        table = self.creates_failure_record
        for name in call_names:
            if name.rsplit(".", 1)[-1] == "FailureRecord":
                return True
            if table.get(name, False):
                return True
        return False

    # -- bounded BFS: transitive mutable-global capture --------------------

    def transitive_global_reads(self, qualname: str) -> frozenset[str]:
        """Mutable module globals read by *qualname* or any callee."""
        cached = self._global_reads.get(qualname)
        if cached is not None:
            return cached
        seen: set[str] = set()
        reads: set[str] = set()
        frontier = [qualname]
        for _ in range(_MAX_DEPTH):
            if not frontier:
                break
            next_frontier: list[str] = []
            for name in frontier:
                if name in seen:
                    continue
                seen.add(name)
                f = self.functions.get(name)
                if f is None:
                    continue
                reads.update(f.global_reads)
                next_frontier.extend(f.call_names)
            frontier = next_frontier
        result = frozenset(reads)
        self._global_reads[qualname] = result
        return result

    # -- fixpoint: transitively-blocking sync functions (R110) -------------

    @property
    def blocking_roots(self) -> dict[str, str]:
        """Sync function qualname -> description of the blocking call it
        performs, directly or through sync callees.  Async functions are
        excluded: their own blocking sites are reported where they occur,
        and an ``await``-ed async callee never blocks the loop."""
        if self._blocking_roots is None:
            roots: dict[str, str] = {}
            for qual, f in self.functions.items():
                if f.is_async or not f.blocking_calls:
                    continue
                bc = f.blocking_calls[0]
                roots[qual] = f"{bc.api} (line {bc.line})"
            for _ in range(_MAX_DEPTH):
                changed = False
                for qual, f in self.functions.items():
                    if qual in roots or f.is_async:
                        continue
                    for rec in f.calls:
                        desc = roots.get(rec.callee)
                        callee = self.functions.get(rec.callee)
                        if desc is None or callee is None or callee.is_async:
                            continue
                        short = rec.callee.rsplit(".", 1)[-1]
                        roots[qual] = f"{short}() -> {desc}"
                        changed = True
                        break
                if not changed:
                    break
            self._blocking_roots = roots
        return self._blocking_roots

    # -- bounded BFS: transitive lock acquisition (R112) -------------------

    def transitive_locks(self, qualname: str) -> frozenset[str]:
        """Lock identities *qualname* may acquire, directly or via callees."""
        cached = self._locks.get(qualname)
        if cached is not None:
            return cached
        seen: set[str] = set()
        locks: set[str] = set()
        frontier = [qualname]
        for _ in range(_MAX_DEPTH):
            if not frontier:
                break
            next_frontier: list[str] = []
            for name in frontier:
                if name in seen:
                    continue
                seen.add(name)
                f = self.functions.get(name)
                if f is None:
                    continue
                locks.update(r.name for r in f.lock_regions)
                next_frontier.extend(f.call_names)
            frontier = next_frontier
        result = frozenset(locks)
        self._locks[qualname] = result
        return result

    # -- fixpoint: transitive obs-context consumption (R114) ---------------

    @property
    def uses_obs_context(self) -> dict[str, bool]:
        """Function qualname -> "consumes ambient obs/contextvar state"."""
        if self._uses_context is None:
            status = {q: f.uses_context for q, f in self.functions.items()}
            for _ in range(_MAX_DEPTH):
                changed = False
                for qual, f in self.functions.items():
                    if status[qual]:
                        continue
                    if any(status.get(c, False) for c in f.call_names):
                        status[qual] = True
                        changed = True
                if not changed:
                    break
            self._uses_context = status
        return self._uses_context

    # -- fixpoint: transitive radius-store consultation (R124) -------------

    @property
    def consults_radius_store(self) -> dict[str, bool]:
        """Function qualname -> "probes a radius store / cache first".

        The local seed is any ``<receiver>.get(...)`` call whose receiver
        chain names a store or cache (``store.get``, ``self.cache.get``,
        ``RadiusStore.get``); the closure propagates backwards through the
        call graph so a helper that does the lookup clears its callers.
        """
        if self._consults_store is None:
            status = {
                q: any(_is_store_lookup(name) for name in f.call_names)
                for q, f in self.functions.items()
            }
            for _ in range(_MAX_DEPTH):
                changed = False
                for qual, f in self.functions.items():
                    if status[qual]:
                        continue
                    if any(status.get(c, False) for c in f.call_names):
                        status[qual] = True
                        changed = True
                if not changed:
                    break
            self._consults_store = status
        return self._consults_store


def _is_store_lookup(call_name: str) -> bool:
    """``<...store/cache>.get`` — the shape of an LRU / RadiusStore probe."""
    parts = call_name.split(".")
    if len(parts) < 2 or parts[-1] != "get":
        return False
    receiver = parts[-2].lower()
    return "store" in receiver or "cache" in receiver
