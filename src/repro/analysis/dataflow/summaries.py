"""Module-summary phase of the interprocedural dataflow engine.

:func:`summarize_module` reduces one parsed module to a
:class:`ModuleSummary`: a serializable bundle of per-function facts that the
propagation phase (:mod:`repro.analysis.dataflow.project`) can combine
across files without re-reading any source.  The facts are deliberately
coarse — this is a linter, not a verifier — and every approximation leans
toward *fewer false positives*:

- **Seed derivation** is an optimistic local lattice: a value is *derived*
  when it flows from a constant, a parameter (or attribute of one — config
  objects travel as parameters), a module-level constant, a whitelisted
  pure builtin, a known seed conduit (``numpy.random.default_rng``,
  ``repro.utils.rng.ensure_rng``/``spawn_rngs``), a method call on a derived
  receiver (``root.spawn(n)``) or a call to a *project* function whose own
  return value is derived (resolved later by the project fixpoint).  Any
  other external call taints.
- **Mutation effects** reuse the R006 notion of an in-place write to a
  parameter before it is rebound (``pi = pi.copy()`` clears the hazard).
- **Handler shapes** record, for every ``except`` clause, what it catches
  and whether it locally raises / stores the bound exception / calls out —
  enough for R104 to decide if a failure can vanish.
- **Concurrency facts** (the R110–R114 family) are shape-based: lock
  acquisition is a ``with``/``async with`` on a receiver whose name reads
  as a lock, a blocking call is a known-blocking API or a ``.result()``/
  ``.join()``-style wait on a future-ish receiver, and obs-context use is
  a call into the :mod:`repro.obs.trace` ambient-context helpers or a
  ``.get()``/``.set()`` on a module-level ``ContextVar``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Any

from repro.analysis.context import FileContext

__all__ = [
    "RngSite",
    "CallRecord",
    "SubmitSite",
    "HandlerInfo",
    "LockRegion",
    "TaskSpawn",
    "BlockingCall",
    "FunctionSummary",
    "ModuleSummary",
    "summarize_module",
    "module_name_for_path",
    "SEED_CONDUITS",
    "RNG_FACTORIES",
    "BLOCKING_CALLS",
]

#: calls that *produce* seeded randomness from their argument — a derived
#: argument makes the produced generator derived as well
SEED_CONDUITS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "repro.utils.rng.ensure_rng",
        "repro.utils.rng.spawn_rngs",
    }
)

#: RNG creation sites checked by R101 (resolved name -> api label)
RNG_FACTORIES = {
    "numpy.random.default_rng": "default_rng",
    "numpy.random.SeedSequence": "SeedSequence",
    "repro.utils.rng.ensure_rng": "ensure_rng",
    "repro.utils.rng.spawn_rngs": "spawn_rngs",
}

#: pure builtins through which a seed may flow without losing provenance
_SEED_BUILTINS = frozenset(
    {"abs", "int", "float", "hash", "round", "min", "max", "sum", "len", "tuple", "sorted"}
)

#: in-place ndarray/list mutator method names (mirrors the R006 checker)
_MUTATORS = frozenset(
    {"fill", "sort", "partition", "put", "itemset", "setfield", "resize",
     "append", "extend", "insert", "pop", "remove", "clear", "update"}
)

#: perturbation-parameter names covered by the aliasing rule R103
PI_PARAMS = frozenset({"pi", "pi_orig"})

#: resolved call names that block the calling thread (R110); a call that is
#: directly awaited is never counted — ``await`` hands the loop back
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.wait",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.delete",
        "requests.request",
        "concurrent.futures.wait",
        "concurrent.futures.as_completed",
        "open",
        "builtins.open",
        "input",
        "builtins.input",
    }
)

#: blocking *method* names, gated on a receiver whose name reads as the
#: matching kind of object — ``fut.result()`` blocks, ``row.result()`` is
#: just a method that happens to share the name
_BLOCKING_METHODS: dict[str, tuple[str, ...]] = {
    "result": ("fut", "future", "promise"),
    "join": ("thread", "proc", "process", "pool", "worker"),
    "acquire": ("lock", "mutex", "sem"),
    "get": ("queue",),
}

#: receiver-name fragments that read as a lock (regions for R111/R112)
_LOCK_HINTS = ("lock", "mutex")

#: obs ambient-context consumers / producers (tails of resolved call names)
_CONTEXT_USE_TAILS = frozenset({"current_context", "get_tracer", "activate"})
_CONTEXT_CAPTURE_TAILS = frozenset({"current_context", "copy_context"})


def module_name_for_path(path: str) -> str:
    """Dotted module name for *path*: joined from the ``repro`` component
    when present (``src/repro/engine/fault.py`` -> ``repro.engine.fault``),
    otherwise the bare stem.  ``__init__`` maps to its package."""
    p = PurePath(path)
    parts = list(p.parts)
    stem = p.stem if p.suffix == ".py" else p.name
    if stem in ("", "<string>"):
        stem = "_module"
    if "repro" in parts[:-1]:
        i = parts.index("repro")
        dotted = [*parts[i:-1], stem]
        if dotted[-1] == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)
    return stem


@dataclass(frozen=True)
class RngSite:
    """One RNG creation call and the provenance of its seed argument."""

    line: int
    col: int
    #: factory label (``default_rng`` / ``ensure_rng`` / ...)
    api: str
    #: seed expression is locally derived (possibly conditional on *depends*)
    derived: bool
    #: project functions whose return value must be derived for this site
    #: to stay derived
    depends: tuple[str, ...] = ()
    #: rendering of the seed expression for the finding message
    seed_repr: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line, "col": self.col, "api": self.api,
            "derived": self.derived, "depends": list(self.depends),
            "seed_repr": self.seed_repr,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RngSite":
        return cls(
            line=d["line"], col=d["col"], api=d["api"], derived=d["derived"],
            depends=tuple(d["depends"]), seed_repr=d.get("seed_repr", ""),
        )


@dataclass(frozen=True)
class CallRecord:
    """One resolved call site, with positions where the caller passes its
    own perturbation parameter (``pi``/``pi_orig``) before any rebind."""

    #: qualified callee (``repro.engine.fault.solve_one`` or ``mod.Class.m``)
    callee: str
    line: int
    col: int
    #: (positional index, caller parameter name) pairs
    pi_positions: tuple[tuple[int, str], ...] = ()
    #: (keyword name, caller parameter name) pairs
    pi_keywords: tuple[tuple[str, str], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "callee": self.callee, "line": self.line, "col": self.col,
            "pi_positions": [list(p) for p in self.pi_positions],
            "pi_keywords": [list(p) for p in self.pi_keywords],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CallRecord":
        return cls(
            callee=d["callee"], line=d["line"], col=d["col"],
            pi_positions=tuple((int(a), str(b)) for a, b in d["pi_positions"]),
            pi_keywords=tuple((str(a), str(b)) for a, b in d["pi_keywords"]),
        )


@dataclass(frozen=True)
class SubmitSite:
    """One ``executor.submit(fn, ...)``-style call."""

    line: int
    col: int
    #: qualified name of the submitted callable, or None when unresolvable
    target: str | None
    #: ``"func"`` for a module function / method name, ``"self_attr"`` for
    #: ``self.method`` passed as the callable
    target_kind: str | None
    #: known-ndarray locals passed as task arguments (pickled per task)
    ndarray_args: tuple[str, ...] = ()
    #: the submit executes inside a loop (per-task fan-out)
    in_loop: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line, "col": self.col,
            "target": self.target, "target_kind": self.target_kind,
            "ndarray_args": list(self.ndarray_args),
            "in_loop": self.in_loop,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "SubmitSite":
        return cls(
            line=d["line"], col=d["col"],
            target=d["target"], target_kind=d["target_kind"],
            ndarray_args=tuple(d.get("ndarray_args", ())),
            in_loop=d.get("in_loop", False),
        )


@dataclass(frozen=True)
class HandlerInfo:
    """Shape of one ``except`` clause (for the R104 unrecorded-failure rule)."""

    line: int
    col: int
    #: resolved names of the caught exception types; ``("*bare*",)`` for a
    #: bare ``except:``
    catches: tuple[str, ...]
    #: the handler re-raises, or stores / forwards the bound exception —
    #: locally provably not a silent drop
    safe_local: bool
    #: qualified names called from the handler body (for the transitive
    #: FailureRecord-creation check)
    calls: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line, "col": self.col, "catches": list(self.catches),
            "safe_local": self.safe_local, "calls": list(self.calls),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "HandlerInfo":
        return cls(
            line=d["line"], col=d["col"], catches=tuple(d["catches"]),
            safe_local=d["safe_local"], calls=tuple(d["calls"]),
        )


@dataclass(frozen=True)
class LockRegion:
    """One ``with <lock>:`` / ``async with <lock>:`` block."""

    #: qualified lock identity (``mod.Class._lock`` / ``mod.GLOBAL_LOCK``)
    name: str
    line: int
    col: int
    end_line: int
    is_async: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "line": self.line, "col": self.col,
            "end_line": self.end_line, "is_async": self.is_async,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "LockRegion":
        return cls(
            name=d["name"], line=d["line"], col=d["col"],
            end_line=d["end_line"], is_async=d["is_async"],
        )

    def covers(self, line: int) -> bool:
        return self.line <= line <= self.end_line


@dataclass(frozen=True)
class TaskSpawn:
    """One ``asyncio.create_task``/``ensure_future`` call."""

    line: int
    col: int
    #: ``"create_task"`` or ``"ensure_future"``
    api: str
    #: qualified coroutine function when resolvable
    target: str | None
    #: the returned handle is dropped (bare expression statement)
    discarded: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line, "col": self.col, "api": self.api,
            "target": self.target, "discarded": self.discarded,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TaskSpawn":
        return cls(
            line=d["line"], col=d["col"], api=d["api"],
            target=d["target"], discarded=d["discarded"],
        )


@dataclass(frozen=True)
class BlockingCall:
    """One call that blocks the calling thread (R110)."""

    line: int
    col: int
    #: human-readable api label (``time.sleep`` / ``<fut>.result``)
    api: str

    def to_dict(self) -> dict[str, Any]:
        return {"line": self.line, "col": self.col, "api": self.api}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "BlockingCall":
        return cls(line=d["line"], col=d["col"], api=d["api"])


@dataclass(frozen=True)
class LoopRegion:
    """One ``for``/``while`` loop in a function body (nested loops get their
    own region).  ``bound_names`` are the names assigned anywhere inside the
    region — the loop-variance test for R122."""

    line: int
    end_line: int
    bound_names: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line, "end_line": self.end_line,
            "bound_names": list(self.bound_names),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "LoopRegion":
        return cls(
            line=d["line"], end_line=d["end_line"],
            bound_names=tuple(d.get("bound_names", ())),
        )

    def covers(self, line: int) -> bool:
        return self.line <= line <= self.end_line


@dataclass(frozen=True)
class ElementLoop:
    """One per-element Python loop over a known-ndarray local (R120)."""

    line: int
    col: int
    #: name of the ndarray iterated element by element
    array: str
    #: how the loop walks it (``range(len(xs))`` / ``iterates xs directly``)
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line, "col": self.col,
            "array": self.array, "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ElementLoop":
        return cls(
            line=d["line"], col=d["col"],
            array=d["array"], detail=d["detail"],
        )


@dataclass(frozen=True)
class LoopCall:
    """One expensive call inside a loop whose arguments are all
    loop-invariant (R122)."""

    line: int
    col: int
    #: resolved callee (``numpy.linalg.inv`` / ``...ensure_rng``)
    callee: str
    #: header line of the innermost enclosing loop
    loop_line: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line, "col": self.col,
            "callee": self.callee, "loop_line": self.loop_line,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "LoopCall":
        return cls(
            line=d["line"], col=d["col"],
            callee=d["callee"], loop_line=d["loop_line"],
        )


@dataclass(frozen=True)
class AccumSite:
    """One ``acc = np.concatenate([acc, ...])``-style reallocation inside a
    loop (R123)."""

    line: int
    col: int
    #: numpy function tail (``concatenate`` / ``append`` / ``vstack`` ...)
    func: str
    #: the accumulator rebound to its own extension
    name: str
    #: header line of the innermost enclosing loop
    loop_line: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line, "col": self.col, "func": self.func,
            "name": self.name, "loop_line": self.loop_line,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "AccumSite":
        return cls(
            line=d["line"], col=d["col"], func=d["func"],
            name=d["name"], loop_line=d["loop_line"],
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Per-function facts feeding the project-level propagation phase."""

    #: qualname within the module (``func`` or ``Class.meth``)
    name: str
    #: declared parameter names, in order (``self`` included for methods)
    params: tuple[str, ...]
    is_method: bool
    line: int
    rng_sites: tuple[RngSite, ...] = ()
    calls: tuple[CallRecord, ...] = ()
    #: unique qualified callee names (superset of ``calls`` callees)
    call_names: tuple[str, ...] = ()
    #: parameter -> line of its first pre-rebind in-place mutation
    mutated_params: tuple[tuple[str, int], ...] = ()
    #: (param, line) for ``return <param>`` of a pre-rebind parameter
    returned_params: tuple[tuple[str, int], ...] = ()
    #: (param, line) for stores of a pre-rebind parameter into an attribute,
    #: subscript or container
    stored_params: tuple[tuple[str, int], ...] = ()
    #: mutable module globals this function reads / writes
    global_reads: tuple[str, ...] = ()
    global_writes: tuple[str, ...] = ()
    #: ``self`` attributes this function reads / writes
    self_reads: tuple[str, ...] = ()
    self_writes: tuple[str, ...] = ()
    submit_sites: tuple[SubmitSite, ...] = ()
    handlers: tuple[HandlerInfo, ...] = ()
    #: takes an ``on_error`` parameter, or is a method of a class that
    #: assigns ``self.on_error`` (scope of R104)
    has_on_error: bool = False
    #: every ``return`` expression is locally seed-derived ...
    returns_derived: bool = False
    #: ... conditional on these project functions also being derived
    returns_depends: tuple[str, ...] = ()
    #: declared ``async def``
    is_async: bool = False
    #: lines of suspension points (``await`` / ``async with`` / ``async for``)
    await_lines: tuple[int, ...] = ()
    blocking_calls: tuple[BlockingCall, ...] = ()
    lock_regions: tuple[LockRegion, ...] = ()
    task_spawns: tuple[TaskSpawn, ...] = ()
    #: (name, line, kind) accesses of shared state — ``self.attr`` or
    #: mutable module globals — recorded only for async functions (R111)
    shared_accesses: tuple[tuple[str, int, str], ...] = ()
    #: consumes ambient obs/contextvar state (``current_context``,
    #: ``get_tracer``, ``activate``, ``ContextVar.get/set``)
    uses_context: bool = False
    #: snapshots ambient context before handing work off
    #: (``current_context()`` / ``copy_context()``)
    captures_context: bool = False
    #: locals known to hold numpy ndarrays (factory calls, annotations,
    #: array-method chains) — the type lattice under R120/R121
    ndarray_locals: tuple[str, ...] = ()
    #: every for/while region with the names it binds (R122 variance test)
    loop_regions: tuple[LoopRegion, ...] = ()
    element_loops: tuple[ElementLoop, ...] = ()
    loop_calls: tuple[LoopCall, ...] = ()
    accum_sites: tuple[AccumSite, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "params": list(self.params),
            "is_method": self.is_method,
            "line": self.line,
            "rng_sites": [s.to_dict() for s in self.rng_sites],
            "calls": [c.to_dict() for c in self.calls],
            "call_names": list(self.call_names),
            "mutated_params": [list(p) for p in self.mutated_params],
            "returned_params": [list(p) for p in self.returned_params],
            "stored_params": [list(p) for p in self.stored_params],
            "global_reads": list(self.global_reads),
            "global_writes": list(self.global_writes),
            "self_reads": list(self.self_reads),
            "self_writes": list(self.self_writes),
            "submit_sites": [s.to_dict() for s in self.submit_sites],
            "handlers": [h.to_dict() for h in self.handlers],
            "has_on_error": self.has_on_error,
            "returns_derived": self.returns_derived,
            "returns_depends": list(self.returns_depends),
            "is_async": self.is_async,
            "await_lines": list(self.await_lines),
            "blocking_calls": [b.to_dict() for b in self.blocking_calls],
            "lock_regions": [r.to_dict() for r in self.lock_regions],
            "task_spawns": [t.to_dict() for t in self.task_spawns],
            "shared_accesses": [list(a) for a in self.shared_accesses],
            "uses_context": self.uses_context,
            "captures_context": self.captures_context,
            "ndarray_locals": list(self.ndarray_locals),
            "loop_regions": [r.to_dict() for r in self.loop_regions],
            "element_loops": [e.to_dict() for e in self.element_loops],
            "loop_calls": [c.to_dict() for c in self.loop_calls],
            "accum_sites": [a.to_dict() for a in self.accum_sites],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FunctionSummary":
        return cls(
            name=d["name"],
            params=tuple(d["params"]),
            is_method=d["is_method"],
            line=d["line"],
            rng_sites=tuple(RngSite.from_dict(s) for s in d["rng_sites"]),
            calls=tuple(CallRecord.from_dict(c) for c in d["calls"]),
            call_names=tuple(d["call_names"]),
            mutated_params=tuple((str(a), int(b)) for a, b in d["mutated_params"]),
            returned_params=tuple((str(a), int(b)) for a, b in d["returned_params"]),
            stored_params=tuple((str(a), int(b)) for a, b in d["stored_params"]),
            global_reads=tuple(d["global_reads"]),
            global_writes=tuple(d["global_writes"]),
            self_reads=tuple(d["self_reads"]),
            self_writes=tuple(d["self_writes"]),
            submit_sites=tuple(SubmitSite.from_dict(s) for s in d["submit_sites"]),
            handlers=tuple(HandlerInfo.from_dict(h) for h in d["handlers"]),
            has_on_error=d["has_on_error"],
            returns_derived=d["returns_derived"],
            returns_depends=tuple(d["returns_depends"]),
            is_async=d.get("is_async", False),
            await_lines=tuple(int(x) for x in d.get("await_lines", ())),
            blocking_calls=tuple(
                BlockingCall.from_dict(b) for b in d.get("blocking_calls", ())
            ),
            lock_regions=tuple(
                LockRegion.from_dict(r) for r in d.get("lock_regions", ())
            ),
            task_spawns=tuple(
                TaskSpawn.from_dict(t) for t in d.get("task_spawns", ())
            ),
            shared_accesses=tuple(
                (str(a), int(b), str(c)) for a, b, c in d.get("shared_accesses", ())
            ),
            uses_context=d.get("uses_context", False),
            captures_context=d.get("captures_context", False),
            ndarray_locals=tuple(d.get("ndarray_locals", ())),
            loop_regions=tuple(
                LoopRegion.from_dict(r) for r in d.get("loop_regions", ())
            ),
            element_loops=tuple(
                ElementLoop.from_dict(e) for e in d.get("element_loops", ())
            ),
            loop_calls=tuple(
                LoopCall.from_dict(c) for c in d.get("loop_calls", ())
            ),
            accum_sites=tuple(
                AccumSite.from_dict(a) for a in d.get("accum_sites", ())
            ),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the propagation phase needs to know about one module."""

    path: str
    module: str
    is_test: bool
    #: module-level names bound to mutable values (lists, dicts, sets, ...)
    mutable_globals: tuple[str, ...] = ()
    #: module-level names bound to constants (usable as seed roots)
    constant_globals: tuple[str, ...] = ()
    #: classes that assign ``self.on_error`` somewhere (R104 scope)
    classes_with_on_error: tuple[str, ...] = ()
    #: module-level names bound to ``ContextVar(...)`` instances
    contextvar_globals: tuple[str, ...] = ()
    functions: dict[str, FunctionSummary] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "is_test": self.is_test,
            "mutable_globals": list(self.mutable_globals),
            "constant_globals": list(self.constant_globals),
            "classes_with_on_error": list(self.classes_with_on_error),
            "contextvar_globals": list(self.contextvar_globals),
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=d["path"],
            module=d["module"],
            is_test=d["is_test"],
            mutable_globals=tuple(d["mutable_globals"]),
            constant_globals=tuple(d["constant_globals"]),
            classes_with_on_error=tuple(d["classes_with_on_error"]),
            contextvar_globals=tuple(d.get("contextvar_globals", ())),
            functions={
                k: FunctionSummary.from_dict(f) for k, f in d["functions"].items()
            },
        )


# --------------------------------------------------------------------------
# extraction helpers
# --------------------------------------------------------------------------

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)
_Scoped = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _own_walk(func: ast.AST) -> list[ast.AST]:
    """Walk *func* without descending into nested function/class scopes."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _Scoped):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _param_names(args: ast.arguments) -> tuple[str, ...]:
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return tuple(names)


def _root_name(node: ast.expr) -> str | None:
    """Leftmost ``Name`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _qualify(resolved: str, ctx: FileContext, module: str, class_name: str | None) -> str:
    """Qualify a resolved call name against the defining module.

    Bare local names become ``module.name``; ``self.x``/``cls.x`` inside a
    class become ``module.Class.x``; already-dotted names (imports resolved
    by :meth:`FileContext.resolve`) pass through.
    """
    head, _, rest = resolved.partition(".")
    if head in ("self", "cls") and class_name is not None and rest:
        return f"{module}.{class_name}.{rest}"
    if "." not in resolved:
        return f"{module}.{resolved}"
    return resolved


class _SeedScope:
    """Optimistic local seed-derivation environment for one function.

    ``env`` maps a derived name to the set of project functions its
    derivation is conditional on; a name absent from ``env`` is tainted.
    """

    def __init__(
        self,
        ctx: FileContext,
        module: str,
        class_name: str | None,
        params: tuple[str, ...],
        module_constants: frozenset[str],
    ) -> None:
        self.ctx = ctx
        self.module = module
        self.class_name = class_name
        self.env: dict[str, frozenset[str]] = {p: frozenset() for p in params}
        for name in module_constants:
            self.env.setdefault(name, frozenset())

    def derive(self, expr: ast.expr) -> tuple[bool, frozenset[str]]:
        """(is-derived, project functions the verdict is conditional on)."""
        if isinstance(expr, ast.Constant):
            return True, frozenset()
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return True, self.env[expr.id]
            return False, frozenset()
        if isinstance(expr, ast.Attribute):
            if expr.attr == "seed":
                return True, frozenset()
            root = _root_name(expr)
            if root is not None and root in self.env:
                return True, self.env[root]
            return False, frozenset()
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return self._conjunction(expr.elts)
        if isinstance(expr, ast.BinOp):
            return self._conjunction([expr.left, expr.right])
        if isinstance(expr, ast.UnaryOp):
            return self.derive(expr.operand)
        if isinstance(expr, ast.IfExp):
            return self._conjunction([expr.body, expr.orelse])
        if isinstance(expr, ast.Subscript):
            return self.derive(expr.value)
        if isinstance(expr, ast.Starred):
            return self.derive(expr.value)
        if isinstance(expr, ast.NamedExpr):
            return self.derive(expr.value)
        if isinstance(expr, ast.Call):
            return self._derive_call(expr)
        return False, frozenset()

    def _conjunction(self, exprs: list[ast.expr]) -> tuple[bool, frozenset[str]]:
        deps: frozenset[str] = frozenset()
        for e in exprs:
            ok, d = self.derive(e)
            if not ok:
                return False, frozenset()
            deps |= d
        return True, deps

    def _derive_call(self, call: ast.Call) -> tuple[bool, frozenset[str]]:
        arg_exprs = list(call.args) + [kw.value for kw in call.keywords]
        resolved = self.ctx.resolve(call.func)
        if resolved in _SEED_BUILTINS or resolved in SEED_CONDUITS:
            return self._conjunction(arg_exprs)
        # method call on a derived receiver: root.spawn(n), rng.integers(...)
        if isinstance(call.func, ast.Attribute):
            r_ok, r_deps = self.derive(call.func.value)
            if r_ok:
                ok, deps = self._conjunction(arg_exprs)
                return (True, deps | r_deps) if ok else (False, frozenset())
        if resolved is None:
            return False, frozenset()
        ok, deps = self._conjunction(arg_exprs)
        if not ok:
            return False, frozenset()
        qual = _qualify(resolved, self.ctx, self.module, self.class_name)
        return True, deps | {qual}

    def fixpoint(self, body: list[ast.AST]) -> None:
        """Iterate assignments until the derived-name set stabilizes."""
        bindings: list[tuple[tuple[str, ...], ast.expr]] = []
        for node in body:
            if isinstance(node, ast.Assign):
                names = tuple(
                    n for t in node.targets for n in _target_names(t)
                )
                if names:
                    bindings.append((names, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                names = tuple(_target_names(node.target))
                if names:
                    bindings.append((names, node.value))
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                bindings.append(((node.target.id,), node.value))
            elif isinstance(node, ast.For):
                names = tuple(_target_names(node.target))
                if names:
                    bindings.append((names, node.iter))
            elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
                bindings.append(((node.target.id,), node.value))
            elif isinstance(node, ast.comprehension):
                names = tuple(_target_names(node.target))
                if names:
                    bindings.append((names, node.iter))
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                names = tuple(_target_names(node.optional_vars))
                if names:
                    bindings.append((names, node.context_expr))
        for _ in range(10):
            changed = False
            for names, value in bindings:
                ok, deps = self.derive(value)
                if not ok:
                    continue
                for name in names:
                    old = self.env.get(name)
                    new = deps if old is None else old & deps
                    if old is None or new != old:
                        self.env[name] = new
                        changed = True
            if not changed:
                break


def _target_names(target: ast.expr) -> list[str]:
    """Plain names bound by an assignment/loop target (nested tuples ok)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _module_globals(tree: ast.Module) -> tuple[frozenset[str], frozenset[str]]:
    """(mutable, constant) module-level names, judged by their bound value."""
    mutable: set[str] = set()
    constant: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        names = [n for t in targets for n in _target_names(t)]
        names = [n for n in names if not n.startswith("__")]
        if not names:
            continue
        if _is_constant_value(value):
            constant.update(names)
        elif _is_mutable_value(value):
            mutable.update(names)
    return frozenset(mutable), frozenset(constant)


def _is_constant_value(value: ast.expr) -> bool:
    if isinstance(value, ast.Constant):
        return True
    if isinstance(value, ast.UnaryOp):
        return _is_constant_value(value.operand)
    if isinstance(value, ast.Tuple):
        return all(_is_constant_value(e) for e in value.elts)
    if isinstance(value, ast.Call):
        fn = value.func
        return isinstance(fn, ast.Name) and fn.id == "frozenset"
    return False


def _is_mutable_value(value: ast.expr) -> bool:
    return isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    )


def _first_rebind_lines(body: list[ast.AST], params: tuple[str, ...]) -> dict[str, int]:
    """Line of the first plain-name rebind of each parameter (``p = ...``)."""
    rebind: dict[str, int] = {}
    for node in body:
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name) and t.id in params:
                    line = node.lineno
                    if t.id not in rebind or line < rebind[t.id]:
                        rebind[t.id] = line
    return rebind


def _pre_rebind(name: str, line: int, rebind: dict[str, int]) -> bool:
    return name not in rebind or line < rebind[name]


def _mutations(
    body: list[ast.AST], params: tuple[str, ...], rebind: dict[str, int]
) -> dict[str, int]:
    """param -> line of first in-place mutation before any rebind."""
    hits: dict[str, int] = {}

    def note(name: str | None, line: int) -> None:
        if name in params and name is not None and _pre_rebind(name, line, rebind):
            if name not in hits or line < hits[name]:
                hits[name] = line

    for node in body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, (ast.Subscript, ast.Attribute)):
                    note(_root_name(t), node.lineno)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                note(node.target.id, node.lineno)
            elif isinstance(node.target, (ast.Subscript, ast.Attribute)):
                note(_root_name(node.target), node.lineno)
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in _MUTATORS
                and isinstance(fn.value, ast.Name)
            ):
                note(fn.value.id, node.lineno)
            for kw in node.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name):
                    note(kw.value.id, node.lineno)
    return hits


def _escapes(
    body: list[ast.AST], params: tuple[str, ...], rebind: dict[str, int]
) -> tuple[list[tuple[str, int]], list[tuple[str, int]]]:
    """(returned, stored) pre-rebind parameters with their lines."""
    returned: list[tuple[str, int]] = []
    stored: list[tuple[str, int]] = []
    for node in body:
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
            name = node.value.id
            if name in params and _pre_rebind(name, node.lineno, rebind):
                returned.append((name, node.lineno))
        elif isinstance(node, ast.Return) and isinstance(node.value, ast.Tuple):
            for elt in node.value.elts:
                if isinstance(elt, ast.Name) and elt.id in params and _pre_rebind(
                    elt.id, node.lineno, rebind
                ):
                    returned.append((elt.id, node.lineno))
        elif isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Name) and node.value.id in params:
                name = node.value.id
                if _pre_rebind(name, node.lineno, rebind) and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ):
                    stored.append((name, node.lineno))
        elif isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr in ("append", "add"):
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in params and _pre_rebind(
                        arg.id, node.lineno, rebind
                    ):
                        stored.append((arg.id, node.lineno))
    return returned, stored


def _self_accesses(body: list[ast.AST]) -> tuple[frozenset[str], frozenset[str]]:
    """(reads, writes) of ``self.<attr>`` within the function body."""
    reads: set[str] = set()
    writes: set[str] = set()
    for node in body:
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id != "self":
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                writes.add(node.attr)
            else:
                reads.add(node.attr)
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in _MUTATORS
                and isinstance(fn.value, ast.Attribute)
                and isinstance(fn.value.value, ast.Name)
                and fn.value.value.id == "self"
            ):
                writes.add(fn.value.attr)
    return frozenset(reads), frozenset(writes)


def _global_accesses(
    func: ast.AST,
    body: list[ast.AST],
    params: tuple[str, ...],
    mutable_globals: frozenset[str],
) -> tuple[frozenset[str], frozenset[str]]:
    """(reads, writes) of mutable module globals from this function."""
    declared: set[str] = set()
    for node in body:
        if isinstance(node, ast.Global):
            declared.update(node.names)
    local_binds = {
        n
        for node in body
        if isinstance(node, ast.Assign)
        for t in node.targets
        for n in _target_names(t)
    } | set(params)
    reads: set[str] = set()
    writes: set[str] = set()
    for node in body:
        if isinstance(node, ast.Name) and node.id in mutable_globals:
            if isinstance(node.ctx, ast.Load) and node.id not in local_binds:
                reads.add(node.id)
            elif isinstance(node.ctx, ast.Store) and node.id in declared:
                writes.add(node.id)
        # in-place writes through subscript/attr/mutator count as writes
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, (ast.Subscript, ast.Attribute)):
                    root = _root_name(t)
                    if root in mutable_globals and root not in local_binds:
                        writes.add(root)
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in _MUTATORS
                and isinstance(fn.value, ast.Name)
                and fn.value.id in mutable_globals
                and fn.value.id not in local_binds
            ):
                writes.add(fn.value.id)
    return frozenset(reads), frozenset(writes | (declared & mutable_globals))


def _submit_sites(
    body: list[ast.AST],
    ctx: FileContext,
    module: str,
    class_name: str | None,
    arrays: frozenset[str] = frozenset(),
    regions: list[LoopRegion] | None = None,
) -> list[SubmitSite]:
    sites: list[SubmitSite] = []
    for node in body:
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if not isinstance(fn, ast.Attribute):
            continue
        # ExecutionBackend and executor fan-out: .submit and .run_in_executor
        # always; .map only on receivers that read as executors (bare .map is
        # too common an idiom)
        arg_index = 0
        if fn.attr == "submit":
            pass
        elif fn.attr == "run_in_executor":
            arg_index = 1
        elif fn.attr == "map":
            receiver = ctx.resolve(fn.value) or ""
            tail = receiver.rsplit(".", 1)[-1]
            if not (
                tail in ("pool", "executor", "backend")
                or tail.endswith(("_pool", "_executor", "_backend"))
            ):
                continue
        else:
            continue
        target: str | None = None
        kind: str | None = None
        if len(node.args) > arg_index:
            arg0 = node.args[arg_index]
            if isinstance(arg0, ast.Name):
                resolved = ctx.resolve(arg0)
                if resolved is not None:
                    target = _qualify(resolved, ctx, module, class_name)
                    kind = "func"
            elif isinstance(arg0, ast.Attribute):
                resolved = ctx.resolve(arg0)
                if resolved is not None:
                    head = resolved.partition(".")[0]
                    target = _qualify(resolved, ctx, module, class_name)
                    kind = "self_attr" if head in ("self", "cls") else "func"
        task_args = node.args[arg_index + 1 :]
        ndarray_args = sorted(
            {a.id for a in task_args if isinstance(a, ast.Name) and a.id in arrays}
            | {
                kw.value.id
                for kw in node.keywords
                if isinstance(kw.value, ast.Name) and kw.value.id in arrays
            }
        )
        in_loop = (
            _innermost_loop(regions, node.lineno) is not None if regions else False
        )
        sites.append(
            SubmitSite(
                line=node.lineno,
                col=node.col_offset,
                target=target,
                target_kind=kind,
                ndarray_args=tuple(ndarray_args),
                in_loop=in_loop,
            )
        )
    return sites


def _receiver_tail(expr: ast.expr, ctx: FileContext) -> str | None:
    """Lowercased last segment of a resolved receiver name chain."""
    resolved = ctx.resolve(expr)
    if resolved is None:
        return None
    return resolved.rsplit(".", 1)[-1].lower()


def _await_info(body: list[ast.AST]) -> tuple[tuple[int, ...], frozenset[int]]:
    """(suspension-point lines, ids of Call nodes that are directly awaited)."""
    lines: set[int] = set()
    awaited: set[int] = set()
    for node in body:
        if isinstance(node, ast.Await):
            lines.add(node.lineno)
            if isinstance(node.value, ast.Call):
                awaited.add(id(node.value))
        elif isinstance(node, (ast.AsyncWith, ast.AsyncFor)):
            lines.add(node.lineno)
    return tuple(sorted(lines)), frozenset(awaited)


def _blocking_calls(
    body: list[ast.AST], ctx: FileContext, awaited_ids: frozenset[int]
) -> list[BlockingCall]:
    """Calls that block the calling thread; directly-awaited calls exempt."""
    out: list[BlockingCall] = []
    for node in body:
        if not isinstance(node, ast.Call) or id(node) in awaited_ids:
            continue
        fn = node.func
        resolved = ctx.resolve(fn)
        if resolved in BLOCKING_CALLS:
            out.append(BlockingCall(node.lineno, node.col_offset, resolved))
            continue
        if not isinstance(fn, ast.Attribute):
            continue
        hints = _BLOCKING_METHODS.get(fn.attr)
        if hints is None:
            continue
        tail = _receiver_tail(fn.value, ctx)
        if tail is not None and any(h in tail for h in hints):
            out.append(
                BlockingCall(node.lineno, node.col_offset, f"<{tail}>.{fn.attr}")
            )
        elif fn.attr == "result" and isinstance(fn.value, ast.Call):
            inner = fn.value.func
            itail = _receiver_tail(inner, ctx) or ""
            itail = itail.rsplit(".", 1)[-1]
            if itail in ("submit", "run_coroutine_threadsafe"):
                out.append(
                    BlockingCall(
                        node.lineno, node.col_offset, f"{itail}(...).result"
                    )
                )
    return out


def _lock_name(
    expr: ast.expr, ctx: FileContext, module: str, class_name: str | None
) -> str | None:
    """Qualified lock identity for a with-item receiver, or None."""
    resolved = ctx.resolve(expr)
    if resolved is None:
        return None
    tail = resolved.rsplit(".", 1)[-1].lower()
    if not any(h in tail for h in _LOCK_HINTS) and "sem" not in tail:
        return None
    return _qualify(resolved, ctx, module, class_name)


def _lock_regions(
    body: list[ast.AST], ctx: FileContext, module: str, class_name: str | None
) -> list[LockRegion]:
    regions: list[LockRegion] = []
    for node in body:
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            name = _lock_name(item.context_expr, ctx, module, class_name)
            if name is None:
                continue
            regions.append(
                LockRegion(
                    name=name,
                    line=node.lineno,
                    col=item.context_expr.col_offset,
                    end_line=node.end_lineno or node.lineno,
                    is_async=isinstance(node, ast.AsyncWith),
                )
            )
    return regions


def _task_spawns(
    body: list[ast.AST], ctx: FileContext, module: str, class_name: str | None
) -> list[TaskSpawn]:
    spawns: dict[int, tuple[ast.Call, str, str | None]] = {}
    for node in body:
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        resolved = ctx.resolve(fn)
        api: str | None = None
        if resolved in ("asyncio.create_task", "asyncio.ensure_future"):
            api = resolved.rsplit(".", 1)[-1]
        elif isinstance(fn, ast.Attribute) and fn.attr in (
            "create_task",
            "ensure_future",
        ):
            tail = _receiver_tail(fn.value, ctx)
            if tail is not None and "loop" in tail:
                api = fn.attr
        if api is None:
            continue
        target: str | None = None
        if node.args:
            arg0 = node.args[0]
            texpr = arg0.func if isinstance(arg0, ast.Call) else arg0
            if isinstance(texpr, (ast.Name, ast.Attribute)):
                r = ctx.resolve(texpr)
                if r is not None:
                    target = _qualify(r, ctx, module, class_name)
        spawns[id(node)] = (node, api, target)
    if not spawns:
        return []
    # a handle is discarded exactly when the spawn is a bare expression
    # statement; assigning, awaiting, returning or passing it on keeps it
    discarded = {
        id(node.value)
        for node in body
        if isinstance(node, ast.Expr) and id(node.value) in spawns
    }
    return [
        TaskSpawn(
            line=call.lineno,
            col=call.col_offset,
            api=api,
            target=target,
            discarded=key in discarded,
        )
        for key, (call, api, target) in spawns.items()
    ]


def _context_flags(
    body: list[ast.AST], ctx: FileContext, contextvar_globals: frozenset[str]
) -> tuple[bool, bool]:
    """(uses ambient context, captures it before a hand-off)."""
    uses = captures = False
    for node in body:
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        resolved = ctx.resolve(fn)
        if resolved is not None:
            tail = resolved.rsplit(".", 1)[-1]
            if tail in _CONTEXT_USE_TAILS:
                uses = True
            if tail in _CONTEXT_CAPTURE_TAILS:
                captures = True
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr in ("get", "set")
            and isinstance(fn.value, ast.Name)
            and fn.value.id in contextvar_globals
        ):
            uses = True
    return uses, captures


def _shared_accesses(
    body: list[ast.AST],
    params: tuple[str, ...],
    mutable_globals: frozenset[str],
) -> list[tuple[str, int, str]]:
    """(name, line, read|write) accesses of ``self.attr`` / mutable globals."""
    local_binds = {
        n
        for node in body
        if isinstance(node, ast.Assign)
        for t in node.targets
        for n in _target_names(t)
    } | set(params)
    out: list[tuple[str, int, str]] = []
    for node in body:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
            out.append((f"self.{node.attr}", node.lineno, kind))
        elif isinstance(node, ast.Name) and node.id in mutable_globals:
            if node.id in local_binds:
                continue
            kind = "write" if isinstance(node.ctx, ast.Store) else "read"
            out.append((node.id, node.lineno, kind))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            # writes through a subscript or mutator reach the container
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                if not isinstance(t, ast.Subscript):
                    continue
                inner = t.value
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    out.append((f"self.{inner.attr}", node.lineno, "write"))
                elif (
                    isinstance(inner, ast.Name)
                    and inner.id in mutable_globals
                    and inner.id not in local_binds
                ):
                    out.append((inner.id, node.lineno, "write"))
        elif isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr in _MUTATORS:
                recv = fn.value
                if (
                    isinstance(recv, ast.Attribute)
                    and isinstance(recv.value, ast.Name)
                    and recv.value.id == "self"
                ):
                    out.append((f"self.{recv.attr}", node.lineno, "write"))
                elif (
                    isinstance(recv, ast.Name)
                    and recv.id in mutable_globals
                    and recv.id not in local_binds
                ):
                    out.append((recv.id, node.lineno, "write"))
    return sorted(set(out))


def _contextvar_globals(tree: ast.Module, ctx: FileContext) -> frozenset[str]:
    """Module-level names bound to a ``ContextVar(...)``."""
    found: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Call):
            continue
        resolved = ctx.resolve(value.func)
        if resolved is None or resolved.rsplit(".", 1)[-1] != "ContextVar":
            continue
        found.update(n for t in targets for n in _target_names(t))
    return frozenset(found)


def _handler_infos(
    body: list[ast.AST], ctx: FileContext, module: str, class_name: str | None
) -> list[HandlerInfo]:
    infos: list[HandlerInfo] = []
    for node in body:
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            catches: list[str] = []
            if handler.type is None:
                catches.append("*bare*")
            else:
                types = (
                    handler.type.elts
                    if isinstance(handler.type, ast.Tuple)
                    else [handler.type]
                )
                for t in types:
                    resolved = ctx.resolve(t)
                    catches.append(resolved if resolved is not None else "<?>")
            safe = False
            calls: list[str] = []
            bound = handler.name
            for sub in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
                if isinstance(sub, ast.Raise):
                    safe = True
                if isinstance(sub, ast.Call):
                    resolved = ctx.resolve(sub.func)
                    if resolved is not None:
                        calls.append(_qualify(resolved, ctx, module, class_name))
                    if bound is not None and any(
                        isinstance(a, ast.Name) and a.id == bound for a in sub.args
                    ):
                        safe = True
                    if bound is not None and any(
                        isinstance(kw.value, ast.Name) and kw.value.id == bound
                        for kw in sub.keywords
                    ):
                        safe = True
                if (
                    bound is not None
                    and isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign))
                ):
                    value = sub.value
                    if value is not None and any(
                        isinstance(n, ast.Name) and n.id == bound
                        for n in ast.walk(value)
                    ):
                        safe = True
            infos.append(
                HandlerInfo(
                    line=handler.lineno,
                    col=handler.col_offset,
                    catches=tuple(catches),
                    safe_local=safe,
                    calls=tuple(sorted(set(calls))),
                )
            )
    return infos


def _rng_sites(
    body: list[ast.AST], ctx: FileContext, scope: _SeedScope
) -> list[RngSite]:
    sites: list[RngSite] = []
    for node in body:
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved not in RNG_FACTORIES:
            continue
        seed: ast.expr | None = node.args[0] if node.args else None
        if seed is None:
            for kw in node.keywords:
                if kw.arg == "seed":
                    seed = kw.value
        if seed is None or (isinstance(seed, ast.Constant) and seed.value is None):
            continue  # no-arg / seed=None is R002's domain
        ok, deps = scope.derive(seed)
        sites.append(
            RngSite(
                line=node.lineno,
                col=node.col_offset,
                api=RNG_FACTORIES[resolved],
                derived=ok,
                depends=tuple(sorted(deps)),
                seed_repr=ast.unparse(seed)[:60],
            )
        )
    return sites


def _call_records(
    body: list[ast.AST],
    ctx: FileContext,
    module: str,
    class_name: str | None,
    params: tuple[str, ...],
    rebind: dict[str, int],
) -> tuple[list[CallRecord], list[str]]:
    pi_params = PI_PARAMS & set(params)
    records: list[CallRecord] = []
    names: set[str] = set()
    for node in body:
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        qual = _qualify(resolved, ctx, module, class_name)
        names.add(qual)
        positions: list[tuple[int, str]] = []
        keywords: list[tuple[str, str]] = []
        for i, arg in enumerate(node.args):
            if (
                isinstance(arg, ast.Name)
                and arg.id in pi_params
                and _pre_rebind(arg.id, node.lineno, rebind)
            ):
                positions.append((i, arg.id))
        for kw in node.keywords:
            if (
                kw.arg is not None
                and isinstance(kw.value, ast.Name)
                and kw.value.id in pi_params
                and _pre_rebind(kw.value.id, node.lineno, rebind)
            ):
                keywords.append((kw.arg, kw.value.id))
        if positions or keywords or qual:
            records.append(
                CallRecord(
                    callee=qual,
                    line=node.lineno,
                    col=node.col_offset,
                    pi_positions=tuple(positions),
                    pi_keywords=tuple(keywords),
                )
            )
    return records, sorted(names)


# --------------------------------------------------------------------------
# performance facts (R120–R124)
# --------------------------------------------------------------------------

#: numpy calls that definitely construct an ndarray (scalar-preserving
#: ufuncs like ``np.abs`` are deliberately absent — a wrong "is ndarray"
#: fact is worse than a missing one)
_NP_ARRAY_FACTORIES = frozenset(
    {
        "numpy.array", "numpy.asarray", "numpy.ascontiguousarray",
        "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full",
        "numpy.arange", "numpy.linspace", "numpy.logspace",
        "numpy.concatenate", "numpy.stack", "numpy.vstack", "numpy.hstack",
        "numpy.column_stack", "numpy.zeros_like", "numpy.ones_like",
        "numpy.empty_like", "numpy.full_like",
        "numpy.atleast_1d", "numpy.atleast_2d",
    }
)

#: ndarray methods whose result is again an ndarray
_ARRAY_METHODS = frozenset(
    {"copy", "astype", "reshape", "ravel", "flatten", "clip",
     "cumsum", "cumprod", "take", "transpose"}
)

#: call tails expensive enough that re-running them per loop iteration with
#: unchanged arguments is a hot-path bug (R122): linear-algebra entry
#: points, RNG construction, engine/solver construction
_EXPENSIVE_PREFIXES = ("numpy.linalg.", "scipy.optimize.", "scipy.linalg.")
_EXPENSIVE_TAILS = frozenset(
    {"default_rng", "SeedSequence", "ensure_rng", "spawn_rngs",
     "RobustnessEngine"}
)

#: numpy array-growing calls that reallocate the accumulator (R123)
_ACCUM_FUNCS = frozenset(
    {
        "numpy.concatenate", "numpy.append", "numpy.vstack", "numpy.hstack",
        "numpy.row_stack", "numpy.column_stack", "numpy.stack",
    }
)


def _annotation_is_ndarray(ann: ast.expr | None) -> bool:
    if ann is None:
        return False
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        text = ann.value
    else:
        try:
            text = ast.unparse(ann)
        except (ValueError, RecursionError):  # pragma: no cover - exotic shape
            return False
    return "ndarray" in text.lower()


def _ndarray_locals(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    body: list[ast.AST],
    ctx: FileContext,
) -> frozenset[str]:
    """Names known to hold ndarrays: annotated params/locals, factory-call
    results, and aliases/method chains thereof (small local fixpoint)."""
    known: set[str] = set()
    args = func.args
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        if _annotation_is_ndarray(a.annotation):
            known.add(a.arg)

    def is_array_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in known
        if isinstance(expr, ast.BinOp):
            return is_array_expr(expr.left) or is_array_expr(expr.right)
        if isinstance(expr, ast.Call):
            resolved = ctx.resolve(expr.func)
            if resolved in _NP_ARRAY_FACTORIES:
                return True
            fn = expr.func
            return (
                isinstance(fn, ast.Attribute)
                and fn.attr in _ARRAY_METHODS
                and isinstance(fn.value, ast.Name)
                and fn.value.id in known
            )
        return False

    bindings: list[tuple[str, ast.expr]] = []
    for node in body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if isinstance(t, ast.Name):
                bindings.append((t.id, node.value))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_ndarray(node.annotation):
                known.add(node.target.id)
            elif node.value is not None:
                bindings.append((node.target.id, node.value))
    for _ in range(4):  # alias chains are short; 4 rounds reach fixpoint
        changed = False
        for name, value in bindings:
            if name not in known and is_array_expr(value):
                known.add(name)
                changed = True
        if not changed:
            break
    return frozenset(known)


def _loop_regions(body: list[ast.AST]) -> list[LoopRegion]:
    regions: list[LoopRegion] = []
    for node in body:
        if not isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
            continue
        end_line = getattr(node, "end_lineno", None) or node.lineno
        bound: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.For, ast.AsyncFor)):
                bound.update(_target_names(sub.target))
            elif isinstance(sub, ast.Assign):
                for t in sub.targets:
                    bound.update(_target_names(t))
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                bound.update(_target_names(sub.target))
            elif isinstance(sub, ast.NamedExpr):
                bound.update(_target_names(sub.target))
            elif isinstance(sub, (ast.withitem,)) and sub.optional_vars is not None:
                bound.update(_target_names(sub.optional_vars))
        regions.append(
            LoopRegion(
                line=node.lineno, end_line=end_line,
                bound_names=tuple(sorted(bound)),
            )
        )
    return regions


def _innermost_loop(regions: list[LoopRegion], line: int) -> LoopRegion | None:
    best: LoopRegion | None = None
    for r in regions:
        if r.covers(line) and (best is None or r.line > best.line):
            best = r
    return best


def _indexed_by(expr: ast.expr, idx: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == idx for n in ast.walk(expr)
    )


def _range_stop_array(it: ast.expr, arrays: frozenset[str]) -> tuple[str, str] | None:
    """``(array, detail)`` when *it* is ``range(len(A))`` / ``range(A.shape[0])``."""
    if not (
        isinstance(it, ast.Call)
        and isinstance(it.func, ast.Name)
        and it.func.id == "range"
        and it.args
    ):
        return None
    stop = it.args[0] if len(it.args) == 1 else it.args[1]
    if (
        isinstance(stop, ast.Call)
        and isinstance(stop.func, ast.Name)
        and stop.func.id == "len"
        and len(stop.args) == 1
        and isinstance(stop.args[0], ast.Name)
        and stop.args[0].id in arrays
    ):
        name = stop.args[0].id
        return name, f"range(len({name}))"
    if (
        isinstance(stop, ast.Subscript)
        and isinstance(stop.value, ast.Attribute)
        and stop.value.attr == "shape"
        and isinstance(stop.value.value, ast.Name)
        and stop.value.value.id in arrays
    ):
        name = stop.value.value.id
        return name, f"range({name}.shape[0])"
    return None


def _element_loops(
    body: list[ast.AST], arrays: frozenset[str]
) -> list[ElementLoop]:
    """R120 sites: loops that touch a known ndarray one element at a time
    while doing arithmetic a ufunc would vectorize.  Loops whose body only
    *fills* an array from per-step calls (``out[t] = step(...)``) are
    sequential recurrences, not vectorization candidates, and never fire."""
    out: list[ElementLoop] = []
    for loop in body:
        if not isinstance(loop, ast.For) or not isinstance(loop.target, ast.Name):
            continue
        tgt = loop.target.id

        def elem_subscript(n: ast.AST, idx: str) -> bool:
            return (
                isinstance(n, ast.Subscript)
                and isinstance(n.value, ast.Name)
                and n.value.id in arrays
                and _indexed_by(n.slice, idx)
            )

        ranged = _range_stop_array(loop.iter, arrays)
        if ranged is not None:
            array, detail = ranged
            hit = False
            for stmt in loop.body:
                for n in ast.walk(stmt):
                    # only arithmetic on the element counts: a bare
                    # ``out[t] = step(...)`` fill is often a genuinely
                    # sequential recurrence and must not fire
                    if isinstance(n, (ast.BinOp, ast.AugAssign)):
                        if any(elem_subscript(m, tgt) for m in ast.walk(n)):
                            hit = True
                            break
                if hit:
                    break
            if hit:
                out.append(
                    ElementLoop(
                        line=loop.lineno, col=loop.col_offset,
                        array=array, detail=detail,
                    )
                )
            continue
        # direct iteration: ``for x in A`` feeding scalar arithmetic
        if isinstance(loop.iter, ast.Name) and loop.iter.id in arrays:
            array = loop.iter.id
            hit = False
            for stmt in loop.body:
                for n in ast.walk(stmt):
                    if isinstance(n, (ast.BinOp, ast.AugAssign)) and _indexed_by(
                        n, tgt
                    ):
                        hit = True
                        break
                if hit:
                    break
            if hit:
                out.append(
                    ElementLoop(
                        line=loop.lineno, col=loop.col_offset,
                        array=array, detail=f"iterates {array} directly",
                    )
                )
    return out


def _loop_invariant(expr: ast.expr, bound: frozenset[str]) -> bool:
    """Provably unchanged across loop iterations (conservative: an
    unknown shape counts as variant)."""
    if isinstance(expr, ast.Constant):
        return True
    if isinstance(expr, ast.Name):
        return expr.id not in bound
    if isinstance(expr, (ast.Attribute, ast.Subscript)):
        if isinstance(expr, ast.Subscript) and any(
            isinstance(n, ast.Name) and n.id in bound
            for n in ast.walk(expr.slice)
        ):
            return False
        root = _root_name(expr)
        return root is not None and root not in bound
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return all(_loop_invariant(e, bound) for e in expr.elts)
    if isinstance(expr, ast.Starred):
        return _loop_invariant(expr.value, bound)
    if isinstance(expr, ast.UnaryOp):
        return _loop_invariant(expr.operand, bound)
    if isinstance(expr, ast.BinOp):
        return _loop_invariant(expr.left, bound) and _loop_invariant(
            expr.right, bound
        )
    return False


def _is_expensive_call(resolved: str) -> bool:
    if resolved.startswith(_EXPENSIVE_PREFIXES):
        return True
    return resolved.rsplit(".", 1)[-1] in _EXPENSIVE_TAILS


def _loop_calls(
    body: list[ast.AST], ctx: FileContext, regions: list[LoopRegion]
) -> list[LoopCall]:
    """R122 sites: expensive calls inside a loop whose arguments are all
    loop-invariant (hoisting them is a pure win)."""
    if not regions:
        return []
    out: list[LoopCall] = []
    for node in body:
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None or not _is_expensive_call(resolved):
            continue
        loop = _innermost_loop(regions, node.lineno)
        if loop is None:
            continue
        bound = frozenset(loop.bound_names)
        args_ok = all(_loop_invariant(a, bound) for a in node.args) and all(
            _loop_invariant(kw.value, bound) for kw in node.keywords
        )
        if not args_ok:
            continue
        out.append(
            LoopCall(
                line=node.lineno, col=node.col_offset,
                callee=resolved, loop_line=loop.line,
            )
        )
    return out


def _accum_sites(
    body: list[ast.AST], ctx: FileContext, regions: list[LoopRegion]
) -> list[AccumSite]:
    """R123 sites: ``acc = np.concatenate([acc, ...])``-style growth in a
    loop — quadratic reallocation where a preallocated buffer (or one
    concatenate after the loop) is linear."""
    if not regions:
        return []
    out: list[AccumSite] = []
    for node in body:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            continue
        resolved = ctx.resolve(node.value.func)
        if resolved not in _ACCUM_FUNCS:
            continue
        target = node.targets[0].id
        refs = {
            n.id
            for a in node.value.args
            for n in ast.walk(a)
            if isinstance(n, ast.Name)
        }
        if target not in refs:
            continue
        loop = _innermost_loop(regions, node.lineno)
        if loop is None:
            continue
        out.append(
            AccumSite(
                line=node.lineno, col=node.col_offset,
                func=resolved.rsplit(".", 1)[-1],
                name=target, loop_line=loop.line,
            )
        )
    return out


def _classes_with_on_error(tree: ast.Module) -> frozenset[str]:
    found: set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Store)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                and sub.attr == "on_error"
            ):
                found.add(node.name)
                break
    return frozenset(found)


def _summarize_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    ctx: FileContext,
    module: str,
    class_name: str | None,
    mutable_globals: frozenset[str],
    constant_globals: frozenset[str],
    on_error_classes: frozenset[str],
    contextvar_globals: frozenset[str] = frozenset(),
) -> FunctionSummary:
    params = _param_names(func.args)
    body = _own_walk(func)
    full_body = list(ast.walk(func))
    rebind = _first_rebind_lines(body, params)

    is_async = isinstance(func, ast.AsyncFunctionDef)
    await_lines, awaited_ids = _await_info(body)
    blocking = _blocking_calls(body, ctx, awaited_ids)
    lock_regions = _lock_regions(body, ctx, module, class_name)
    task_spawns = _task_spawns(body, ctx, module, class_name)
    uses_ctx, captures_ctx = _context_flags(full_body, ctx, contextvar_globals)
    shared = (
        _shared_accesses(body, params, mutable_globals) if is_async else []
    )

    scope = _SeedScope(ctx, module, class_name, params, constant_globals)
    scope.fixpoint(full_body)
    rng_sites = _rng_sites(full_body, ctx, scope)

    returns = [
        n for n in body if isinstance(n, ast.Return) and n.value is not None
    ]
    if returns:
        ret_ok = True
        ret_deps: frozenset[str] = frozenset()
        for r in returns:
            ok, deps = scope.derive(r.value)  # type: ignore[arg-type]
            if not ok:
                ret_ok = False
                break
            ret_deps |= deps
        returns_derived, returns_depends = ret_ok, tuple(sorted(ret_deps)) if ret_ok else ()
    else:
        returns_derived, returns_depends = False, ()

    mutated = _mutations(full_body, params, rebind)
    returned, stored = _escapes(body, params, rebind)
    self_reads, self_writes = _self_accesses(full_body)
    g_reads, g_writes = _global_accesses(func, full_body, params, mutable_globals)
    calls, call_names = _call_records(full_body, ctx, module, class_name, params, rebind)

    arrays = _ndarray_locals(func, body, ctx)
    regions = _loop_regions(body)
    element_loops = _element_loops(body, arrays)
    loop_calls = _loop_calls(body, ctx, regions)
    accum_sites = _accum_sites(body, ctx, regions)

    name = func.name if class_name is None else f"{class_name}.{func.name}"
    has_on_error = "on_error" in params or (
        class_name is not None and class_name in on_error_classes
    )
    return FunctionSummary(
        name=name,
        params=params,
        is_method=class_name is not None,
        line=func.lineno,
        rng_sites=tuple(rng_sites),
        calls=tuple(calls),
        call_names=tuple(call_names),
        mutated_params=tuple(sorted(mutated.items())),
        returned_params=tuple(returned),
        stored_params=tuple(stored),
        global_reads=tuple(sorted(g_reads)),
        global_writes=tuple(sorted(g_writes)),
        self_reads=tuple(sorted(self_reads)),
        self_writes=tuple(sorted(self_writes)),
        submit_sites=tuple(
            _submit_sites(full_body, ctx, module, class_name, arrays, regions)
        ),
        handlers=tuple(_handler_infos(full_body, ctx, module, class_name)),
        has_on_error=has_on_error,
        returns_derived=returns_derived,
        returns_depends=returns_depends,
        is_async=is_async,
        await_lines=await_lines,
        blocking_calls=tuple(blocking),
        lock_regions=tuple(lock_regions),
        task_spawns=tuple(
            sorted(task_spawns, key=lambda t: (t.line, t.col))
        ),
        shared_accesses=tuple(shared),
        uses_context=uses_ctx,
        captures_context=captures_ctx,
        ndarray_locals=tuple(sorted(arrays)),
        loop_regions=tuple(regions),
        element_loops=tuple(element_loops),
        loop_calls=tuple(loop_calls),
        accum_sites=tuple(accum_sites),
    )


def summarize_module(ctx: FileContext) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed file."""
    module = module_name_for_path(ctx.path)
    mutable_globals, constant_globals = _module_globals(ctx.tree)
    on_error_classes = _classes_with_on_error(ctx.tree)
    contextvar_globals = _contextvar_globals(ctx.tree, ctx)
    functions: dict[str, FunctionSummary] = {}
    for node in ctx.tree.body:
        if isinstance(node, _FuncDef):
            s = _summarize_function(
                node, ctx, module, None, mutable_globals, constant_globals,
                on_error_classes, contextvar_globals,
            )
            functions[s.name] = s
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, _FuncDef):
                    s = _summarize_function(
                        item, ctx, module, node.name, mutable_globals,
                        constant_globals, on_error_classes, contextvar_globals,
                    )
                    functions[s.name] = s
    # module-level rng sites (outside any function) get a synthetic summary
    top_body = [
        n
        for n in ctx.tree.body
        if not isinstance(n, (*_FuncDef, ast.ClassDef))
    ]
    top_nodes: list[ast.AST] = []
    for n in top_body:
        top_nodes.extend(ast.walk(n))
    top_scope = _SeedScope(ctx, module, None, (), constant_globals)
    top_scope.fixpoint(top_nodes)
    top_sites = _rng_sites(top_nodes, ctx, top_scope)
    if top_sites:
        functions["<module>"] = FunctionSummary(
            name="<module>",
            params=(),
            is_method=False,
            line=1,
            rng_sites=tuple(top_sites),
        )
    return ModuleSummary(
        path=ctx.path,
        module=module,
        is_test=ctx.is_test,
        mutable_globals=tuple(sorted(mutable_globals)),
        constant_globals=tuple(sorted(constant_globals)),
        classes_with_on_error=tuple(sorted(on_error_classes)),
        contextvar_globals=tuple(sorted(contextvar_globals)),
        functions=functions,
    )
