"""Per-file analysis context shared by every checker.

A :class:`FileContext` bundles the parsed AST with the pieces of file-level
knowledge that several rules need:

- an import map, so a checker can resolve ``rng.default_rng`` /
  ``np.random.seed`` / ``from numpy.random import rand`` to their canonical
  dotted names without re-walking the import statements itself;
- the raw source lines (for the suppression scanner);
- whether the file is *test code* (rules that guard library determinism,
  R001/R002, do not apply to tests, which may legitimately use ad-hoc
  randomness for arbitrary inputs).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath

__all__ = ["FileContext", "dotted_name", "is_test_path"]


def dotted_name(node: ast.expr) -> str | None:
    """Flatten an ``a.b.c`` Attribute/Name chain to ``"a.b.c"``.

    Returns ``None`` for anything that is not a pure name chain (calls,
    subscripts, literals, ...).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def is_test_path(path: str) -> bool:
    """True when ``path`` names test code (``tests/`` tree, ``test_*.py``,
    ``conftest.py``)."""
    p = PurePath(path)
    if any(part == "tests" for part in p.parts):
        return True
    return p.name.startswith("test_") or p.name == "conftest.py"


@dataclass
class FileContext:
    """Everything a rule needs to analyse one file."""

    path: str
    source: str
    tree: ast.Module
    #: test code relaxes the determinism rules (R001/R002)
    is_test: bool
    #: source split into lines, 0-indexed (line ``n`` of a finding is
    #: ``lines[n - 1]``)
    lines: list[str] = field(default_factory=list)
    #: local alias -> full module path, from ``import x.y as z``
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original name), from ``from m import a as b``
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        self._collect_imports()

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    # ``import numpy.random`` binds the top-level package;
                    # ``import numpy.random as npr`` binds the submodule.
                    target = alias.name if alias.asname else alias.name.partition(".")[0]
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports stay unresolved
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = (node.module, alias.name)

    def resolve(self, node: ast.expr) -> str | None:
        """Resolve a name chain to its canonical dotted path.

        ``np.random.seed`` -> ``"numpy.random.seed"`` when the file did
        ``import numpy as np``; ``default_rng()`` -> ``"numpy.random.
        default_rng"`` after ``from numpy.random import default_rng``.
        Unknown heads resolve to themselves, so local variables shadowing a
        module alias can produce false positives — an accepted trade-off for
        a purely syntactic pass.
        """
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        if head in self.module_aliases:
            full = self.module_aliases[head]
        elif head in self.from_imports:
            module, orig = self.from_imports[head]
            full = f"{module}.{orig}"
        else:
            return name
        return f"{full}.{rest}" if rest else full
