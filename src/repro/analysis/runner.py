"""Lint driver: discovery, per-file phase, project phase, suppression.

A lint run has three phases:

1. **Per-file phase** — each file is parsed once; the local (syntactic)
   rules run against its :class:`~repro.analysis.context.FileContext` and a
   :class:`~repro.analysis.dataflow.summaries.ModuleSummary` is extracted.
   With a :class:`~repro.analysis.dataflow.cache.SummaryStore` attached,
   unchanged files skip this phase entirely: their raw findings, marker map
   and summary are served from the content-addressed cache.
2. **Project phase** — the summaries are combined into a
   :class:`~repro.analysis.dataflow.project.ProjectContext` and the
   registered :class:`~repro.analysis.registry.ProjectRule` subclasses
   (R101–R104) run across the whole set.  This phase is cheap and always
   runs, which is what keeps the incremental cache sound: cross-file facts
   are recomputed from summaries on every run.
3. **Suppression phase** — ``# repro: noqa[CODE]`` markers filter the
   combined findings; markers that suppressed nothing become W000
   stale-suppression findings.

Directory arguments are walked recursively for ``*.py`` files, skipping
``__pycache__`` and hidden directories always, plus anything matching the
exclude globs (default: ``fixtures`` — lint-rule test fixtures *contain
violations on purpose*).  File arguments are always analysed.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Sequence

from repro.analysis.context import FileContext, is_test_path
from repro.analysis.dataflow.cache import CACHE_VERSION, SummaryStore, content_hash
from repro.analysis.dataflow.project import ProjectContext
from repro.analysis.dataflow.summaries import ModuleSummary, summarize_module
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, Rule, all_rules, get_rules
from repro.analysis.suppressions import collect_comment_markers

__all__ = [
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "changed_python_files",
    "DEFAULT_EXCLUDES",
]

#: directory names never descended into, regardless of excludes
_SKIP_DIRS = frozenset({"__pycache__"})

#: default exclude globs (matched against any path component or the
#: whole path relative to the walked root)
DEFAULT_EXCLUDES: tuple[str, ...] = ("fixtures",)

#: code of the stale-suppression rule (produced here, not by a checker)
_STALE_CODE = "W000"


@dataclass
class LintReport:
    """Aggregate outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    n_suppressed: int = 0
    #: files that went through the full per-file phase (parse + rules +
    #: summary); with a warm cache this is the number of *changed* files
    n_reanalyzed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def files_cached(self) -> int:
        """Files served from the incremental cache."""
        return self.files_checked - self.n_reanalyzed

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked
        self.n_suppressed += other.n_suppressed
        self.n_reanalyzed += other.n_reanalyzed


@dataclass
class _FileAnalysis:
    """Everything the later phases need to know about one file."""

    path: str
    is_test: bool
    markers: dict[int, frozenset[str]]
    raw: list[Finding]
    ran_codes: frozenset[str]
    summary: ModuleSummary | None
    syntax_error: Finding | None = None
    from_cache: bool = False


def _matches_exclude(rel: Path, patterns: tuple[str, ...]) -> bool:
    rel_posix = rel.as_posix()
    for pat in patterns:
        if fnmatch(rel_posix, pat):
            return True
        if any(fnmatch(part, pat) for part in rel.parts):
            return True
    return False


def iter_python_files(
    path: Path, exclude: Sequence[str] | None = None
) -> list[Path]:
    """Python files under *path* (itself, if it is a file).

    *exclude* is a list of glob patterns matched against each candidate's
    path relative to *path* (as posix) and against every individual path
    component; ``None`` means :data:`DEFAULT_EXCLUDES`.  ``__pycache__``
    and hidden directories are always skipped.
    """
    if path.is_file():
        return [path]
    patterns = DEFAULT_EXCLUDES if exclude is None else tuple(exclude)
    found: list[Path] = []
    for candidate in sorted(path.rglob("*.py")):
        rel = candidate.relative_to(path)
        parts = rel.parts[:-1]
        if any(p in _SKIP_DIRS or p.startswith(".") for p in parts):
            continue
        if _matches_exclude(rel, patterns):
            continue
        found.append(candidate)
    return found


def changed_python_files(
    root: Path | None = None,
    exclude: Sequence[str] | None = None,
    ref: str | None = None,
) -> list[Path]:
    """Python files changed in the working tree — and, with *ref*, in history.

    Without *ref* this is ``git status --porcelain`` (staged, unstaged and
    untracked).  With *ref* (a commit-ish such as ``origin/main`` or
    ``HEAD~3``) the committed range ``ref...HEAD`` (``git diff --name-only``,
    merge-base semantics) is unioned in, so a pre-push lint of a feature
    branch covers commits that are no longer dirty.  Backs
    ``repro lint --changed[=REF]``.

    *exclude* applies the same discovery glob semantics as
    :func:`iter_python_files` (``None`` means :data:`DEFAULT_EXCLUDES`), so
    an edited fixture does not flood a pre-push lint run.

    Raises :class:`RuntimeError` when *root* is not inside a git work tree
    or *ref* does not resolve.
    """
    base = root if root is not None else Path.cwd()
    # -uall lists files inside untracked directories individually (the
    # default collapses them to "dir/", hiding every .py underneath)
    proc = subprocess.run(
        ["git", "status", "--porcelain", "-uall"],
        cwd=base,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"git status failed under {base}: {proc.stderr.strip() or 'not a git repository'}"
        )
    names: set[str] = set()
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        entry = line[3:].strip()
        if " -> " in entry:  # rename: keep the new name
            entry = entry.split(" -> ", 1)[1]
        entry = entry.strip('"')
        if entry.endswith(".py"):
            names.add(entry)
    if ref is not None:
        # status paths are relative to cwd; diff paths to the repo top level.
        # Resolve the top level once so the two name spaces agree.
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=base,
            capture_output=True,
            text=True,
        )
        diff = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", f"{ref}...HEAD"],
            cwd=base,
            capture_output=True,
            text=True,
        )
        if top.returncode != 0 or diff.returncode != 0:
            detail = (diff.stderr or top.stderr).strip() or f"cannot diff against {ref!r}"
            raise RuntimeError(f"git diff failed under {base}: {detail}")
        topdir = Path(top.stdout.strip())
        for entry in diff.stdout.splitlines():
            entry = entry.strip().strip('"')
            if not entry.endswith(".py"):
                continue
            try:
                names.add(str((topdir / entry).relative_to(base.resolve())))
            except ValueError:
                continue  # changed outside *root* — not ours to lint
    patterns = DEFAULT_EXCLUDES if exclude is None else tuple(exclude)
    files = [
        base / name
        for name in sorted(names)
        if not _matches_exclude(Path(name), patterns)
    ]
    return [f for f in files if f.exists()]


# --------------------------------------------------------------------------
# rule selection
# --------------------------------------------------------------------------


def _resolve_rules(
    select: list[str] | None, rules: list[Rule] | None
) -> tuple[list[Rule], set[str] | None, bool]:
    """(rules to run, emission filter, stale-pass active).

    Selecting W000 forces the full registry to run internally — staleness
    is judged against the rules that ran — while the emission filter keeps
    the output limited to the requested codes.
    """
    if rules is not None:
        return rules, None, any(r.code == _STALE_CODE for r in rules)
    chosen = get_rules(select)
    stale_active = any(r.code == _STALE_CODE for r in chosen)
    if select is None:
        return chosen, None, stale_active
    emit = {r.code for r in chosen}
    if stale_active:
        return get_rules(None), emit, True
    return chosen, emit, stale_active


def _fingerprint() -> str:
    return f"v{CACHE_VERSION}:" + ",".join(sorted(all_rules()))


# --------------------------------------------------------------------------
# per-file phase
# --------------------------------------------------------------------------


def _analyze(
    path: str, source: str, is_test: bool | None, local_rules: list[Rule]
) -> _FileAnalysis:
    """Parse one source string and run the local rules (may raise
    :class:`SyntaxError`)."""
    if is_test is None:
        is_test = is_test_path(path)
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path=path, source=source, tree=tree, is_test=is_test)
    raw: list[Finding] = []
    ran: set[str] = set()
    for rule in local_rules:
        if ctx.is_test and not rule.applies_to_tests:
            continue
        raw.extend(rule.check(ctx))
        ran.add(rule.code)
    return _FileAnalysis(
        path=path,
        is_test=ctx.is_test,
        markers=collect_comment_markers(source),
        raw=raw,
        ran_codes=frozenset(ran),
        summary=summarize_module(ctx),
    )


def _syntax_error_analysis(path: str, err: SyntaxError) -> _FileAnalysis:
    finding = Finding(
        code="R000",
        name="syntax-error",
        message=f"file does not parse: {err.msg}",
        path=path,
        line=err.lineno or 1,
        col=(err.offset or 1) - 1,
    )
    return _FileAnalysis(
        path=path,
        is_test=is_test_path(path),
        markers={},
        raw=[],
        ran_codes=frozenset(),
        summary=None,
        syntax_error=finding,
    )


def _analyze_file(
    file: Path, local_rules: list[Rule], cache: SummaryStore | None
) -> _FileAnalysis:
    data = file.read_bytes()
    key = str(file.resolve())
    digest = content_hash(data) if cache is not None else ""
    if cache is not None:
        entry = cache.get(key, digest)
        if entry is not None:
            return _FileAnalysis(
                path=str(file),
                is_test=bool(entry["is_test"]),
                markers=SummaryStore.entry_markers(entry),
                raw=SummaryStore.entry_findings(entry),
                ran_codes=frozenset(entry["ran_codes"]),
                summary=SummaryStore.entry_summary(entry),
                from_cache=True,
            )
    try:
        analysis = _analyze(str(file), data.decode("utf-8"), None, local_rules)
    except SyntaxError as err:
        return _syntax_error_analysis(str(file), err)
    if cache is not None and analysis.summary is not None:
        cache.put(
            key,
            digest,
            raw_findings=analysis.raw,
            markers=analysis.markers,
            is_test=analysis.is_test,
            ran_codes=sorted(analysis.ran_codes),
            summary=analysis.summary,
        )
    return analysis


# --------------------------------------------------------------------------
# project + suppression phases
# --------------------------------------------------------------------------


def _project_phase(
    analyses: list[_FileAnalysis], project_rules: list[ProjectRule]
) -> list[Finding]:
    if not project_rules:
        return []
    summaries = [a.summary for a in analyses if a.summary is not None]
    if not summaries:
        return []
    project = ProjectContext(summaries)
    test_paths = {a.path for a in analyses if a.is_test}
    findings: list[Finding] = []
    for rule in project_rules:
        for f in rule.check_project(project):
            if f.path in test_paths and not rule.applies_to_tests:
                continue
            findings.append(f)
    return findings


def _apply_markers(
    findings: list[Finding], markers: dict[int, frozenset[str]]
) -> tuple[list[Finding], int, set[tuple[int, str]]]:
    """(kept, n_suppressed, (line, code) markers that earned their keep)."""
    kept: list[Finding] = []
    n_suppressed = 0
    used: set[tuple[int, str]] = set()
    for f in findings:
        codes = markers.get(f.line, frozenset())
        fc = f.code.upper()
        if "*" in codes or fc in codes:
            n_suppressed += 1
            if fc in codes:
                used.add((f.line, fc))
        else:
            kept.append(f)
    return kept, n_suppressed, used


def _stale_findings(
    analysis: _FileAnalysis,
    ran: set[str],
    used: set[tuple[int, str]],
) -> list[Finding]:
    from repro.analysis.checks.stale import StaleSuppressionRule

    rule = StaleSuppressionRule()
    known = set(all_rules())
    lines: list[str] | None = None
    out: list[Finding] = []
    for line, codes in sorted(analysis.markers.items()):
        for code in sorted(codes):
            if code in ("*", _STALE_CODE):
                continue
            if (line, code) in used:
                continue
            if code not in known:
                is_known = False
            elif code in ran:
                is_known = True
            else:
                continue
            if lines is None:
                # read the file once, lazily: cached analyses carry no
                # source, and stale markers are the rare case
                try:
                    lines = Path(analysis.path).read_text(
                        encoding="utf-8"
                    ).splitlines()
                except OSError:
                    lines = []
            text = lines[line - 1] if 0 < line <= len(lines) else None
            out.append(
                rule.stale_finding(
                    analysis.path, line, code, known=is_known, line_text=text
                )
            )
    return out


def _finalize(
    analyses: list[_FileAnalysis],
    project_findings: list[Finding],
    project_rules: list[ProjectRule],
    emit: set[str] | None,
    stale_active: bool,
) -> LintReport:
    by_path: dict[str, list[Finding]] = {}
    for f in project_findings:
        by_path.setdefault(f.path, []).append(f)
    report = LintReport()
    for a in analyses:
        report.files_checked += 1
        if not a.from_cache:
            report.n_reanalyzed += 1
        if a.syntax_error is not None:
            report.findings.append(a.syntax_error)
            continue
        ran = set(a.ran_codes)
        for rule in project_rules:
            if not (a.is_test and not rule.applies_to_tests):
                ran.add(rule.code)
        file_findings = a.raw + by_path.get(a.path, [])
        kept, n_sup, used = _apply_markers(file_findings, a.markers)
        if stale_active:
            stale = _stale_findings(a, ran, used)
            s_kept, s_sup, _ = _apply_markers(stale, a.markers)
            kept.extend(s_kept)
            n_sup += s_sup
        if emit is not None:
            kept = [f for f in kept if f.code in emit]
        report.findings.extend(kept)
        report.n_suppressed += n_sup
    return report


def _run(
    analyses: list[_FileAnalysis],
    run_rules: list[Rule],
    emit: set[str] | None,
    stale_active: bool,
) -> LintReport:
    project_rules = [r for r in run_rules if isinstance(r, ProjectRule)]
    project_findings = _project_phase(analyses, project_rules)
    return _finalize(analyses, project_findings, project_rules, emit, stale_active)


# --------------------------------------------------------------------------
# public entry points
# --------------------------------------------------------------------------


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    is_test: bool | None = None,
    select: list[str] | None = None,
    rules: list[Rule] | None = None,
) -> LintReport:
    """Lint one source string (the file is its own one-module project).

    ``is_test=None`` infers test-ness from *path*; rule unit tests pass an
    explicit value so fixtures exercise the library-code behaviour
    regardless of where they live on disk.
    """
    run_rules, emit, stale_active = _resolve_rules(select, rules)
    local_rules = [r for r in run_rules if not isinstance(r, ProjectRule)]
    analysis = _analyze(path, source, is_test, local_rules)
    report = _run([analysis], run_rules, emit, stale_active)
    return report


def lint_file(
    path: Path,
    *,
    is_test: bool | None = None,
    select: list[str] | None = None,
    rules: list[Rule] | None = None,
) -> LintReport:
    """Lint one file on disk (syntax errors become a finding, not a crash)."""
    source = path.read_text(encoding="utf-8")
    try:
        return lint_source(
            source, path=str(path), is_test=is_test, select=select, rules=rules
        )
    except SyntaxError as err:
        analysis = _syntax_error_analysis(str(path), err)
        return LintReport(
            findings=[analysis.syntax_error] if analysis.syntax_error else [],
            files_checked=1,
            n_reanalyzed=1,
        )


def lint_paths(
    paths: list[Path],
    *,
    select: list[str] | None = None,
    exclude: Sequence[str] | None = None,
    cache: SummaryStore | None = None,
) -> LintReport:
    """Lint files and directory trees; the entry point behind ``repro lint``.

    *exclude* overrides the default discovery excludes (glob patterns, see
    :func:`iter_python_files`).  *cache* attaches an incremental
    :class:`~repro.analysis.dataflow.cache.SummaryStore`; it is only
    consulted for full-registry runs (``select=None``) so cached raw
    findings always correspond to the complete rule set.

    Raises :class:`FileNotFoundError` for a missing path and
    :class:`KeyError` for an unknown ``--select`` code — the CLI maps both
    to usage errors (exit status 2).
    """
    run_rules, emit, stale_active = _resolve_rules(select, None)
    local_rules = [r for r in run_rules if not isinstance(r, ProjectRule)]
    store = cache if (cache is not None and select is None) else None
    if store is not None:
        store.load(_fingerprint())
    analyses: list[_FileAnalysis] = []
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(str(path))
        for file in iter_python_files(path, exclude):
            analyses.append(_analyze_file(file, local_rules, store))
    report = _run(analyses, run_rules, emit, stale_active)
    if store is not None:
        store.save()
    return report
