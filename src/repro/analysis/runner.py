"""Lint driver: file discovery, parsing, rule execution, suppression.

Directory arguments are walked recursively for ``*.py`` files, skipping
``__pycache__``, hidden directories and any directory named ``fixtures``
(lint-rule test fixtures *contain violations on purpose*; they are only
analysed when named explicitly).  File arguments are always analysed,
fixture or not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.context import FileContext, is_test_path
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, get_rules
from repro.analysis.suppressions import filter_suppressed

__all__ = ["LintReport", "lint_source", "lint_file", "lint_paths", "iter_python_files"]

#: directory names never descended into during discovery
_SKIP_DIRS = frozenset({"__pycache__", "fixtures"})


@dataclass
class LintReport:
    """Aggregate outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    n_suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked
        self.n_suppressed += other.n_suppressed


def iter_python_files(path: Path) -> list[Path]:
    """Python files under *path* (itself, if it is a file), discovery rules
    applied."""
    if path.is_file():
        return [path]
    found: list[Path] = []
    for candidate in sorted(path.rglob("*.py")):
        rel = candidate.relative_to(path)
        parts = rel.parts[:-1]
        if any(p in _SKIP_DIRS or p.startswith(".") for p in parts):
            continue
        found.append(candidate)
    return found


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    is_test: bool | None = None,
    select: list[str] | None = None,
    rules: list[Rule] | None = None,
) -> LintReport:
    """Lint one source string.

    ``is_test=None`` infers test-ness from *path*; rule unit tests pass an
    explicit value so fixtures exercise the library-code behaviour
    regardless of where they live on disk.
    """
    if rules is None:
        rules = get_rules(select)
    if is_test is None:
        is_test = is_test_path(path)
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path=path, source=source, tree=tree, is_test=is_test)
    raw: list[Finding] = []
    for rule in rules:
        if ctx.is_test and not rule.applies_to_tests:
            continue
        raw.extend(rule.check(ctx))
    kept, n_suppressed = filter_suppressed(raw, ctx.lines)
    return LintReport(findings=kept, files_checked=1, n_suppressed=n_suppressed)


def lint_file(
    path: Path,
    *,
    is_test: bool | None = None,
    select: list[str] | None = None,
    rules: list[Rule] | None = None,
) -> LintReport:
    """Lint one file on disk (syntax errors become a finding, not a crash)."""
    source = path.read_text(encoding="utf-8")
    try:
        return lint_source(
            source, path=str(path), is_test=is_test, select=select, rules=rules
        )
    except SyntaxError as err:
        finding = Finding(
            code="R000",
            name="syntax-error",
            message=f"file does not parse: {err.msg}",
            path=str(path),
            line=err.lineno or 1,
            col=(err.offset or 1) - 1,
        )
        return LintReport(findings=[finding], files_checked=1)


def lint_paths(
    paths: list[Path], *, select: list[str] | None = None
) -> LintReport:
    """Lint files and directory trees; the entry point behind ``repro lint``.

    Raises :class:`FileNotFoundError` for a missing path and :class:`KeyError`
    for an unknown ``--select`` code — the CLI maps both to usage errors
    (exit status 2).
    """
    rules = get_rules(select)
    report = LintReport()
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(str(path))
        for file in iter_python_files(path):
            report.merge(lint_file(file, rules=rules))
    return report
