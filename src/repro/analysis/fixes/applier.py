"""Fix applier: deterministic span edits + syntactic-validity guarantee.

Coordinates follow the finding convention (1-based lines, 0-based cols).
All edits of one pass address the *original* text of their file; the
applier converts spans to absolute offsets up front and patches bottom-up,
so earlier edits never shift later ones.

Conflict policy (deterministic by construction): fixes are ordered by
(first-edit offset, last-edit end, rule code, description); a fix whose
edits intersect an already-claimed span — or start at the exact offset
another fix starts at — is skipped whole.  A skipped fix is not lost: the
finding fires again on the next lint pass and the :func:`fix_paths` driver
re-applies until nothing is left (bounded; in practice one extra pass).
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.analysis.findings import Finding, Fix, FixSafety, TextEdit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.dataflow.cache import SummaryStore
    from repro.analysis.runner import LintReport

__all__ = ["FileFixResult", "FixOutcome", "apply_fixes", "fix_paths"]

#: convergence bound for the ``--fix`` driver; the only known multi-pass
#: shape (several stale codes in one noqa marker) converges in two
_MAX_PASSES = 10


@dataclass
class FileFixResult:
    """Outcome of one fix pass over one file."""

    path: str
    #: fixes applied (whole-fix granularity)
    n_applied: int = 0
    #: fixes skipped because their spans collided with an applied fix
    n_skipped_overlap: int = 0
    #: ``suggested`` fixes withheld (run with ``--fix-suggested`` to apply)
    n_skipped_suggested: int = 0
    original: str = ""
    fixed: str = ""
    #: the patched text re-parsed cleanly; ``False`` means the whole file
    #: was reverted and its fixes recorded as failed
    reparse_ok: bool = True
    #: descriptions of the applied fixes, in document order
    applied: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.n_applied > 0 and self.fixed != self.original


@dataclass
class FixOutcome:
    """Aggregate outcome of one :func:`apply_fixes` pass (or a whole
    :func:`fix_paths` run, merged across passes)."""

    files: list[FileFixResult] = field(default_factory=list)

    @property
    def n_applied(self) -> int:
        return sum(f.n_applied for f in self.files)

    @property
    def n_skipped_suggested(self) -> int:
        return sum(f.n_skipped_suggested for f in self.files)

    @property
    def n_files_changed(self) -> int:
        return len({f.path for f in self.files if f.changed})

    @property
    def reparse_failures(self) -> list[str]:
        return [f.path for f in self.files if not f.reparse_ok]

    def merge(self, other: "FixOutcome") -> None:
        self.files.extend(other.files)

    def diff(self) -> str:
        """Unified diff of every changed file (the ``--fix --diff`` view)."""
        chunks: list[str] = []
        for f in sorted(self.files, key=lambda r: r.path):
            if not f.changed:
                continue
            chunks.append(
                "".join(
                    difflib.unified_diff(
                        f.original.splitlines(keepends=True),
                        f.fixed.splitlines(keepends=True),
                        fromfile=f"a/{f.path}",
                        tofile=f"b/{f.path}",
                    )
                )
            )
        return "".join(chunks)


def _line_starts(text: str) -> list[int]:
    starts = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            starts.append(i + 1)
    return starts

def _offset(starts: list[int], line: int, col: int, text_len: int) -> int:
    if line < 1:
        return 0
    if line > len(starts):
        return text_len
    return min(starts[line - 1] + col, text_len)


def _fix_spans(
    fix: Fix, starts: list[int], text_len: int
) -> list[tuple[int, int, str]] | None:
    """(start, end, replacement) offsets for every edit, or None when the
    fix is malformed (inverted span)."""
    spans: list[tuple[int, int, str]] = []
    for e in fix.edits:
        s = _offset(starts, e.start_line, e.start_col, text_len)
        t = _offset(starts, e.end_line, e.end_col, text_len)
        if t < s:
            return None
        spans.append((s, t, e.replacement))
    return sorted(spans)


def _conflicts(
    spans: Sequence[tuple[int, int, str]],
    claimed: Sequence[tuple[int, int]],
) -> bool:
    for s, t, _ in spans:
        for cs, ct in claimed:
            if s == cs or (s < ct and t > cs):
                return True
    return False


def _apply_file(
    path: str,
    source: str,
    fixes: list[tuple[Finding, Fix]],
    include_suggested: bool,
) -> FileFixResult:
    result = FileFixResult(path=path, original=source, fixed=source)
    starts = _line_starts(source)
    candidates: list[tuple[tuple[int, int, str, str], Fix, list[tuple[int, int, str]]]] = []
    for finding, fix in fixes:
        if fix.safety is FixSafety.SUGGESTED and not include_suggested:
            result.n_skipped_suggested += 1
            continue
        spans = _fix_spans(fix, starts, len(source))
        if spans is None or not spans:
            continue
        key = (spans[0][0], spans[-1][1], finding.code, fix.description)
        candidates.append((key, fix, spans))
    candidates.sort(key=lambda c: c[0])

    claimed: list[tuple[int, int]] = []
    accepted: list[tuple[int, int, str]] = []
    for _key, fix, spans in candidates:
        if _conflicts(spans, claimed):
            result.n_skipped_overlap += 1
            continue
        claimed.extend((s, t) for s, t, _ in spans)
        accepted.extend(spans)
        result.n_applied += 1
        result.applied.append(fix.description)
    if not accepted:
        return result

    text = source
    for s, t, replacement in sorted(accepted, reverse=True):
        text = text[:s] + replacement + text[t:]
    try:
        ast.parse(text)
    except SyntaxError:
        # a fix produced unparsable code: revert the whole file — the
        # guarantee is that --fix never leaves a file in a worse state
        result.n_applied = 0
        result.applied.clear()
        result.reparse_ok = False
        return result
    result.fixed = text
    return result


def apply_fixes(
    findings: Sequence[Finding],
    *,
    include_suggested: bool = False,
    write: bool = False,
    sources: dict[str, str] | None = None,
) -> FixOutcome:
    """One pass: apply the fixes attached to *findings*.

    *sources* overrides file reads (for in-memory callers and tests);
    without it each file is read from disk.  With ``write=True`` changed
    files are written back in place.  Unreadable paths (e.g. the
    ``<string>`` pseudo-path of :func:`~repro.analysis.runner.lint_source`
    when no override is given) are skipped silently — their findings simply
    remain.
    """
    by_path: dict[str, list[tuple[Finding, Fix]]] = {}
    for f in findings:
        if f.fix is not None:
            by_path.setdefault(f.path, []).append((f, f.fix))
    outcome = FixOutcome()
    for path in sorted(by_path):
        if sources is not None and path in sources:
            source = sources[path]
        else:
            try:
                source = Path(path).read_text(encoding="utf-8")
            except OSError:
                continue
        result = _apply_file(path, source, by_path[path], include_suggested)
        outcome.files.append(result)
        if write and result.changed:
            Path(path).write_text(result.fixed, encoding="utf-8")
        if sources is not None and result.changed:
            sources[path] = result.fixed
    return outcome


def fix_paths(
    paths: list[Path],
    *,
    select: list[str] | None = None,
    exclude: Sequence[str] | None = None,
    cache: "SummaryStore | None" = None,
    include_suggested: bool = False,
    write: bool = True,
    max_passes: int = _MAX_PASSES,
) -> tuple["LintReport", FixOutcome]:
    """Fix driver behind ``repro lint --fix``: lint, apply, repeat to a
    fixpoint.

    Returns the *final* lint report (what remains after fixing) and the
    merged fix outcome.  With ``write=False`` this is a single-pass
    preview — nothing touches disk and the report is the pre-fix state
    (the ``--diff`` / ``--fix-dry-run`` view).
    """
    from repro.analysis.runner import lint_paths

    report = lint_paths(paths, select=select, exclude=exclude, cache=cache)
    total = FixOutcome()
    if not write:
        outcome = apply_fixes(
            report.findings, include_suggested=include_suggested, write=False
        )
        return report, outcome
    for _ in range(max_passes):
        outcome = apply_fixes(
            report.findings, include_suggested=include_suggested, write=True
        )
        total.merge(outcome)
        if outcome.n_applied == 0:
            break
        report = lint_paths(paths, select=select, exclude=exclude, cache=cache)
    return report, total
