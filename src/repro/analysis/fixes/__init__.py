"""Autofix layer: apply the machine-applicable repairs findings carry.

``repro lint --fix`` is built from two pieces:

- :func:`apply_fixes` — the single-pass primitive.  It groups fixable
  findings by file, resolves overlapping fixes deterministically (document
  order, rule code as tie-break; a fix is applied whole or not at all),
  patches the text bottom-up against *original* coordinates, and re-parses
  every patched file — a fix that breaks the syntax reverts its whole file.
- :func:`fix_paths` — the convergence driver behind the CLI.  It loops
  lint → apply → re-lint until no fix applies (a handful of passes at
  most: the only multi-pass case is several stale codes sharing one noqa
  marker), which is what makes ``--fix`` idempotent: a second invocation
  finds nothing left to do.

Safety classes: ``safe`` fixes apply by default; ``suggested`` fixes
(control-flow scaffolds like the R007 re-raise) only with
``include_suggested=True`` / ``--fix-suggested``.
"""

from __future__ import annotations

from repro.analysis.fixes.applier import (
    FileFixResult,
    FixOutcome,
    apply_fixes,
    fix_paths,
)

__all__ = ["FileFixResult", "FixOutcome", "apply_fixes", "fix_paths"]
