"""Runtime numeric sanitizer for the robustness pipeline.

The static rules in :mod:`repro.analysis.checks` catch *structural* hazards;
this module catches *numeric* ones at runtime.  It audits the post-conditions
the paper's definitions imply — a radius is never silently NaN, a radius at a
feasible origin is never negative, and the metric ``rho`` equals the minimum
of its own per-feature radii (Eq. 2) — and either raises
:class:`~repro.exceptions.SanitizerError` or converts each violation into a
``FailureRecord`` with ``stage="sanitize"``, matching the fault-tolerant
layer's ``on_error`` contract.

Three entry points:

* :func:`sanitize_batch` / :func:`check_allocation_batch` /
  :func:`check_hiperd_batch` — hooks the
  :class:`~repro.engine.RobustnessEngine` calls when constructed with
  ``sanitize=True``.  A healthy batch is returned **unchanged** (the same
  object), so sanitized and unsanitized runs are bit-for-bit identical when
  nothing is wrong.
* :class:`Sanitizer` — a context manager that instruments the scalar API
  (``robustness_radius``/``robustness_metric``/``robustness``) in every
  loaded ``repro`` module and captures floating-point events
  (divide/overflow/invalid) via :func:`numpy.seterrcall`.
* :func:`sanitized` — a decorator form of the context manager.

This module never imports :mod:`repro.engine` at import time (the engine
imports *us* lazily); batch results and records are handled structurally.
"""

from __future__ import annotations

import functools
import importlib
import math
import sys
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, TypeVar

import numpy as np

from repro.exceptions import SanitizerError, ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


def _count_sanitizer_event(kind: str, n: int = 1) -> None:
    """Record sanitizer activity in the obs registry (no-op while disabled)."""
    if n > 0 and obs_trace.enabled():
        obs_metrics.get_registry().counter(
            "repro_sanitizer_events_total",
            help="sanitizer violations and captured floating-point events",
            kind=kind,
        ).inc(n)

__all__ = [
    "Violation",
    "audit_radius_result",
    "audit_metric_result",
    "audit_object",
    "audit_batch",
    "sanitize_batch",
    "check_allocation_batch",
    "check_hiperd_batch",
    "Sanitizer",
    "sanitized",
    "sanitizer_selfcheck",
]

F = TypeVar("F", bound=Callable[..., Any])

#: modules owning the canonical scalar entry points the Sanitizer wraps
_PATCH_TARGETS: tuple[tuple[str, str], ...] = (
    ("repro.core.radius", "robustness_radius"),
    ("repro.core.metric", "robustness_metric"),
    ("repro.alloc.robustness", "robustness"),
    ("repro.hiperd.robustness", "robustness"),
)


@dataclass(frozen=True)
class Violation:
    """One failed numeric post-condition."""

    #: machine-readable check name (``"nan-radius"``, ``"metric-min-mismatch"``, ...)
    check: str
    #: where it was observed (function name or ``problem[i]`` slot)
    context: str
    #: human-readable description
    message: str
    #: batch slot the violation belongs to (-1 outside batch context)
    problem_index: int = -1
    #: feature name, when the violation is attributable to one radius
    feature: str | None = None
    #: perturbation-parameter name, when known
    parameter: str | None = None

    def to_error(self) -> SanitizerError:
        """Convert to the exception raised under ``on_error="raise"``."""
        return SanitizerError(self.message, check=self.check, context=self.context)


def _isnan(x: float) -> bool:
    try:
        return math.isnan(float(x))
    except (TypeError, ValueError):
        return False


def audit_radius_result(res: Any, *, context: str = "") -> list[Violation]:
    """Post-conditions for one ``RadiusResult``-shaped object.

    A NaN radius is *not* flagged here when the solver itself marked the
    solve as failed (``converged=False`` or ``failure`` set) — that is the
    fault-tolerant layer's territory and :func:`audit_batch` checks it is
    covered by a ``FailureRecord``.  What this audit rejects is the *silent*
    corruption: NaN on a solve that claims success, or a sign that
    contradicts the feasibility flag.
    """
    out: list[Violation] = []
    ctx = context or "radius"
    feature = getattr(res, "feature", None)
    parameter = getattr(res, "parameter", None)
    radius = res.radius
    healthy = bool(getattr(res, "converged", True)) and getattr(res, "failure", None) is None
    if _isnan(radius) and healthy:
        out.append(
            Violation(
                check="nan-radius",
                context=ctx,
                message=f"radius({feature}, {parameter}) is NaN on a converged solve",
                feature=feature,
                parameter=parameter,
            )
        )
    if getattr(res, "feasible_at_origin", False) and not _isnan(radius) and radius < 0:
        out.append(
            Violation(
                check="negative-feasible-radius",
                context=ctx,
                message=(
                    f"radius({feature}, {parameter}) = {radius!r} is negative although "
                    "the origin is feasible"
                ),
                feature=feature,
                parameter=parameter,
            )
        )
    point = getattr(res, "boundary_point", None)
    if healthy and point is not None and bool(np.isnan(np.asarray(point, dtype=float)).any()):
        out.append(
            Violation(
                check="nan-boundary-point",
                context=ctx,
                message=f"boundary point of ({feature}, {parameter}) contains NaN",
                feature=feature,
                parameter=parameter,
            )
        )
    return out


def audit_metric_result(m: Any, *, context: str = "") -> list[Violation]:
    """Post-conditions for one ``MetricResult``-shaped object.

    Beyond the per-radius audits this enforces Eq. 2 itself: when every
    per-feature radius is non-NaN the unfloored metric must equal their exact
    minimum, and a metric at a fully-feasible origin must be non-negative.
    """
    ctx = context or "metric"
    out: list[Violation] = []
    radii = tuple(m.radii)
    for r in radii:
        out.extend(audit_radius_result(r, context=ctx))
    values = [r.radius for r in radii]
    any_nan = any(_isnan(v) for v in values)
    raw = m.raw_value
    if not any_nan and values:
        expected = min(values)
        if _isnan(raw) or raw != expected:
            out.append(
                Violation(
                    check="metric-min-mismatch",
                    context=ctx,
                    message=(
                        f"metric raw_value {raw!r} != min of per-feature radii "
                        f"{expected!r} for parameter {m.parameter!r}"
                    ),
                    parameter=getattr(m, "parameter", None),
                )
            )
    if (
        getattr(m, "feasible_at_origin", False)
        and not any_nan
        and not _isnan(raw)
        and raw < 0
    ):
        out.append(
            Violation(
                check="negative-feasible-metric",
                context=ctx,
                message=(
                    f"metric {raw!r} is negative although every feature is feasible "
                    "at the origin"
                ),
                parameter=getattr(m, "parameter", None),
            )
        )
    return out


def _audit_allocation_scalar(res: Any, *, context: str) -> list[Violation]:
    out: list[Violation] = []
    radii = np.asarray(res.radii, dtype=float)
    if _isnan(res.value) or bool(np.isnan(radii).any()):
        out.append(
            Violation(
                check="nan-allocation-radius",
                context=context,
                message="makespan robustness produced NaN (closed form cannot fail)",
            )
        )
    return out


def _audit_hiperd_scalar(res: Any, *, context: str) -> list[Violation]:
    out: list[Violation] = []
    radii = np.asarray(res.radii, dtype=float)
    if bool(np.isnan(radii).any()) or _isnan(res.raw_value):
        out.append(
            Violation(
                check="nan-hiperd-radius",
                context=context,
                message="sensor-load robustness produced a NaN constraint radius",
            )
        )
    return out


def audit_object(obj: Any, *, context: str = "") -> list[Violation]:
    """Dispatch an audit on any scalar-API result by shape (duck-typed)."""
    if hasattr(obj, "binding_bound") and hasattr(obj, "radius"):
        return audit_radius_result(obj, context=context or "robustness_radius")
    if hasattr(obj, "binding_feature") and hasattr(obj, "radii"):
        return audit_metric_result(obj, context=context or "robustness_metric")
    if hasattr(obj, "critical_machine"):
        return _audit_allocation_scalar(obj, context=context or "alloc.robustness")
    if hasattr(obj, "binding_index"):
        return _audit_hiperd_scalar(obj, context=context or "hiperd.robustness")
    return []


# ---------------------------------------------------------------------------
# batch hooks (called by RobustnessEngine when sanitize=True)
# ---------------------------------------------------------------------------


def audit_batch(batch: Any) -> list[Violation]:
    """Audit a ``BatchRobustnessResult``-shaped object.

    NaN radii that the fault-tolerant layer *recorded* (a ``FailureRecord``
    with matching ``problem_index``/``feature`` exists) are legitimate; every
    other NaN is a violation, as are metric/radius inconsistencies.
    """
    covered = {
        (getattr(f, "problem_index", None), getattr(f, "feature", None))
        for f in getattr(batch, "failures", ())
    }
    out: list[Violation] = []
    for ip, m in enumerate(batch.results):
        ctx = f"problem[{ip}]"
        for v in audit_metric_result(m, context=ctx):
            out.append(
                Violation(
                    check=v.check,
                    context=ctx,
                    message=v.message,
                    problem_index=ip,
                    feature=v.feature,
                    parameter=v.parameter or m.parameter,
                )
            )
        for r in m.radii:
            if not _isnan(r.radius):
                continue
            healthy = bool(r.converged) and r.failure is None
            if not healthy and (ip, r.feature) not in covered:
                out.append(
                    Violation(
                        check="unrecorded-nan-radius",
                        context=ctx,
                        message=(
                            f"radius({r.feature}, {r.parameter}) is NaN from a failed "
                            "solve but no FailureRecord covers it"
                        ),
                        problem_index=ip,
                        feature=r.feature,
                        parameter=r.parameter,
                    )
                )
    return out


def _violation_record(v: Violation) -> Any:
    from repro.engine.fault import FailureRecord

    return FailureRecord(
        task_index=-1,
        attempts=1,
        stage="sanitize",
        exception=None,
        fallback_used=False,
        wall_time=0.0,
        reason=v.check,
        feature=v.feature,
        parameter=v.parameter,
        problem_index=v.problem_index if v.problem_index >= 0 else None,
    )


def sanitize_batch(batch: Any) -> Any:
    """Enforce batch post-conditions per the batch's own ``on_error`` policy.

    ``on_error="raise"`` raises :class:`SanitizerError` on the first
    violation; ``"record"``/``"degrade"`` return a new batch with one
    ``stage="sanitize"`` ``FailureRecord`` appended per violation.  A healthy
    batch is returned unchanged (identical object).
    """
    violations = audit_batch(batch)
    _count_sanitizer_event("violation", len(violations))
    if not violations:
        return batch
    if getattr(batch, "on_error", "raise") == "raise":
        raise violations[0].to_error()
    extra = tuple(_violation_record(v) for v in violations)
    return type(batch)(
        results=batch.results,
        failures=tuple(batch.failures) + extra,
        on_error=batch.on_error,
    )


def check_allocation_batch(radii: np.ndarray, values: np.ndarray) -> None:
    """Raise on NaN in a batched makespan-robustness evaluation.

    The allocation path is closed-form (Eq. 6 is affine), so with validated
    inputs NaN is always corruption, never a recordable solver failure.
    """
    radii = np.asarray(radii, dtype=float)
    values = np.asarray(values, dtype=float)
    if bool(np.isnan(radii).any()) or bool(np.isnan(values).any()):
        nan_rows = np.flatnonzero(np.isnan(values))
        bad = int(nan_rows[0]) if nan_rows.size else -1
        raise SanitizerError(
            "batched makespan robustness produced NaN",
            check="nan-allocation-radius",
            context=f"mapping[{bad}]",
        )


def check_hiperd_batch(values: np.ndarray, radii: np.ndarray) -> None:
    """Raise on NaN in a batched sensor-load evaluation.

    ``inf`` radii are legitimate (degenerate constraint rows); NaN is not.
    """
    if bool(np.isnan(np.asarray(radii)).any()) or bool(np.isnan(np.asarray(values)).any()):
        raise SanitizerError(
            "batched sensor-load robustness produced a NaN radius",
            check="nan-hiperd-radius",
            context="hiperd batch",
        )


# ---------------------------------------------------------------------------
# dynamic instrumentation
# ---------------------------------------------------------------------------


class Sanitizer:
    """Context manager instrumenting the scalar robustness API.

    While active, every call to ``robustness_radius``/``robustness_metric``/
    ``robustness`` — through *any* loaded ``repro`` module, including
    ``from``-import aliases — has its return value audited, and
    floating-point events (divide-by-zero, overflow, invalid) raised by numpy
    are captured in :attr:`fp_events`.  Wrapped functions return their
    results untouched, so healthy computations are bit-for-bit identical
    with and without the sanitizer.

    ``on_violation="raise"`` (default) raises :class:`SanitizerError` at the
    offending call site; ``"collect"`` accumulates into :attr:`violations`.
    """

    def __init__(self, *, on_violation: str = "raise", capture_fp_events: bool = True) -> None:
        if on_violation not in ("raise", "collect"):
            raise ValidationError(f"on_violation must be 'raise' or 'collect', got {on_violation!r}")
        self.on_violation = on_violation
        #: violations observed so far (only grows in ``"collect"`` mode)
        self.violations: list[Violation] = []
        #: floating-point event kinds captured while active
        self.fp_events: list[str] = []
        self._capture_fp = capture_fp_events
        self._originals: list[tuple[Any, str, Any]] = []
        self._errstate: Any = None
        self._old_errcall: Any = None
        self._active = False

    # -- bookkeeping --------------------------------------------------------

    def _handle(self, violations: Iterable[Violation]) -> None:
        for v in violations:
            if self.on_violation == "raise":
                raise v.to_error()
            self.violations.append(v)

    def _wrap(self, func: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = func(*args, **kwargs)
            self._handle(audit_object(result, context=func.__qualname__))
            return result

        wrapper.__repro_sanitized__ = True  # type: ignore[attr-defined]
        return wrapper

    def _on_fp_event(self, kind: str, flag: int) -> None:
        self.fp_events.append(kind)
        _count_sanitizer_event("fp-event")

    def _patch_all(self) -> None:
        for modname, attr in _PATCH_TARGETS:
            module = importlib.import_module(modname)
            original = vars(module)[attr]
            if getattr(original, "__repro_sanitized__", False):
                continue  # already instrumented (nested sanitizers share wrappers)
            wrapper = self._wrap(original)
            for mod in list(sys.modules.values()):
                name = getattr(mod, "__name__", "")
                if not (name == "repro" or name.startswith("repro.")):
                    continue
                for alias, value in list(vars(mod).items()):
                    if value is original:
                        setattr(mod, alias, wrapper)
                        self._originals.append((mod, alias, original))

    def _unpatch_all(self) -> None:
        while self._originals:
            mod, alias, original = self._originals.pop()
            setattr(mod, alias, original)

    # -- context protocol ----------------------------------------------------

    def __enter__(self) -> "Sanitizer":
        if self._active:
            raise RuntimeError("Sanitizer is not reentrant")
        self._active = True
        self._patch_all()
        if self._capture_fp:
            self._old_errcall = np.seterrcall(self._on_fp_event)
            self._errstate = np.errstate(divide="call", over="call", invalid="call")
            self._errstate.__enter__()
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._errstate is not None:
            self._errstate.__exit__(*exc)
            np.seterrcall(self._old_errcall)
            self._errstate = None
        self._unpatch_all()
        self._active = False
        return False


def sanitized(func: F | None = None, *, on_violation: str = "raise") -> Any:
    """Decorator form of :class:`Sanitizer`.

    The wrapped function runs under an active sanitizer, and its own return
    value is audited too (useful for functions that *assemble* results rather
    than calling the instrumented scalar API).
    """

    def decorate(f: F) -> F:
        @functools.wraps(f)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with Sanitizer(on_violation=on_violation) as guard:
                result = f(*args, **kwargs)
                guard._handle(audit_object(result, context=f.__qualname__))
            return result

        return wrapper  # type: ignore[return-value]

    return decorate if func is None else decorate(func)


# ---------------------------------------------------------------------------
# self-check (exposed as `repro lint --sanitize-check`)
# ---------------------------------------------------------------------------


def _selfcheck_cases() -> Iterator[tuple[str, bool, str]]:
    from repro.core.metric import MetricResult
    from repro.core.radius import RadiusResult

    def radius(value: float, *, feasible: bool = True, converged: bool = True,
               failure: str | None = None, feature: str = "phi") -> RadiusResult:
        return RadiusResult(
            feature=feature,
            parameter="pi",
            radius=value,
            boundary_point=None,
            binding_bound=None,
            value_at_origin=0.0,
            feasible_at_origin=feasible,
            solver="analytic",
            converged=converged,
            failure=failure,
        )

    healthy = radius(1.5)
    yield ("healthy-radius-passes", not audit_radius_result(healthy), "audit of a finite radius")

    nan_silent = radius(float("nan"))
    found = audit_radius_result(nan_silent)
    yield (
        "silent-nan-caught",
        any(v.check == "nan-radius" for v in found),
        "NaN radius on a converged solve must be flagged",
    )

    nan_failed = radius(float("nan"), converged=False, failure="max-iter")
    yield (
        "recorded-failure-tolerated",
        not audit_radius_result(nan_failed),
        "NaN from an admitted failure is the fault layer's job",
    )

    negative = radius(-0.25, feasible=True)
    yield (
        "feasible-negative-caught",
        any(v.check == "negative-feasible-radius" for v in audit_radius_result(negative)),
        "negative radius at a feasible origin must be flagged",
    )

    good_metric = MetricResult(
        value=1.0, raw_value=1.0, radii=(healthy, radius(1.0, feature="psi")),
        binding_feature="psi", parameter="pi", feasible_at_origin=True,
    )
    yield ("healthy-metric-passes", not audit_metric_result(good_metric), "Eq. 2 consistency holds")

    bad_metric = MetricResult(
        value=9.0, raw_value=9.0, radii=(healthy, radius(1.0, feature="psi")),
        binding_feature="psi", parameter="pi", feasible_at_origin=True,
    )
    yield (
        "metric-mismatch-caught",
        any(v.check == "metric-min-mismatch" for v in audit_metric_result(bad_metric)),
        "metric must equal min of per-feature radii",
    )

    with Sanitizer(on_violation="collect") as guard:
        with np.errstate(invalid="call"):
            np.float64(np.inf) - np.float64(np.inf)
    yield (
        "fp-events-captured",
        any("invalid" in kind for kind in guard.fp_events),
        "invalid-operation events reach the sanitizer log",
    )


def sanitizer_selfcheck() -> list[tuple[str, bool, str]]:
    """Run the built-in poisoned/healthy probes; returns (name, ok, detail)."""
    return list(_selfcheck_cases())
