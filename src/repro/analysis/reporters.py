"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.findings import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    findings: Sequence[Finding],
    *,
    files_checked: int = 0,
    n_suppressed: int = 0,
    n_reanalyzed: int | None = None,
) -> str:
    """One ``path:line:col: CODE [severity] message`` line per finding plus a
    summary line (mirrors the familiar compiler/flake8 shape)."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    lines = [
        f"{f.location()}: {f.code} [{f.severity.value}] {f.message}"
        for f in ordered
    ]
    summary = (
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {files_checked} file{'s' if files_checked != 1 else ''}"
    )
    if n_suppressed:
        summary += f" ({n_suppressed} suppressed)"
    if n_reanalyzed is not None and n_reanalyzed < files_checked:
        summary += f" [{files_checked - n_reanalyzed} cached, {n_reanalyzed} re-analyzed]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    files_checked: int = 0,
    n_suppressed: int = 0,
    n_reanalyzed: int | None = None,
) -> str:
    """Stable JSON document: ``{"findings": [...], "summary": {...}}``.

    The schema is pinned by a golden-file test
    (``tests/analysis/test_reporter_schema.py``); extend it additively.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    doc = {
        "findings": [f.to_dict() for f in ordered],
        "summary": {
            "total": len(findings),
            "files_checked": files_checked,
            "suppressed": n_suppressed,
            "reanalyzed": files_checked if n_reanalyzed is None else n_reanalyzed,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)
