"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.findings import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    findings: Sequence[Finding],
    *,
    files_checked: int = 0,
    n_suppressed: int = 0,
) -> str:
    """One ``path:line:col: CODE [severity] message`` line per finding plus a
    summary line (mirrors the familiar compiler/flake8 shape)."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    lines = [
        f"{f.location()}: {f.code} [{f.severity.value}] {f.message}"
        for f in ordered
    ]
    summary = (
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {files_checked} file{'s' if files_checked != 1 else ''}"
    )
    if n_suppressed:
        summary += f" ({n_suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    files_checked: int = 0,
    n_suppressed: int = 0,
) -> str:
    """Stable JSON document: ``{"findings": [...], "summary": {...}}``."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    doc = {
        "findings": [f.to_dict() for f in ordered],
        "summary": {
            "total": len(findings),
            "files_checked": files_checked,
            "suppressed": n_suppressed,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)
