"""Inline suppression comments: ``# repro: noqa[CODE]``.

A finding on line *n* is suppressed when line *n* carries a marker naming
its code (``# repro: noqa[R003]``, multiple codes comma-separated:
``# repro: noqa[R003,R007]``) or a blanket marker (``# repro: noqa``).
Matching is case-insensitive in the codes and tolerant of spaces.

The project convention (enforced socially, not mechanically) is that every
in-tree suppression carries a trailing justification, e.g.::

    if ms == 0.0:  # repro: noqa[R003] - exact-zero sentinel for empty ETC

Standard ``# noqa`` comments are *not* honoured — the marker is namespaced
on purpose so this layer never fights with flake8/ruff semantics.
"""

from __future__ import annotations

import io
import re
import tokenize
from collections.abc import Iterable

from repro.analysis.findings import Finding

__all__ = [
    "suppressed_codes",
    "collect_markers",
    "collect_comment_markers",
    "filter_suppressed",
]

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9 ,]+)\])?", re.IGNORECASE
)

#: sentinel meaning "every code is suppressed on this line"
_ALL = frozenset({"*"})


def suppressed_codes(line: str) -> frozenset[str]:
    """Codes suppressed by *line*'s comment, ``{"*"}`` for a blanket marker,
    empty when the line carries no marker."""
    m = _NOQA.search(line)
    if m is None:
        return frozenset()
    codes = m.group("codes")
    if codes is None:
        return _ALL
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


def collect_markers(lines: list[str]) -> dict[int, frozenset[str]]:
    """1-based line -> suppressed codes for every line carrying a marker
    (``{"*"}`` for blanket markers), by plain line scanning."""
    markers: dict[int, frozenset[str]] = {}
    for i, line in enumerate(lines, start=1):
        codes = suppressed_codes(line)
        if codes:
            markers[i] = codes
    return markers


def collect_comment_markers(source: str) -> dict[int, frozenset[str]]:
    """Like :func:`collect_markers`, but only honours markers in *actual
    comment tokens* — a ``# repro: noqa[...]`` quoted inside a docstring is
    documentation, not a suppression.  Falls back to line scanning when the
    source does not tokenize (the caller has already parsed it, so this is
    a near-impossible edge).  Used by the runner, including the W000
    stale-marker pass."""
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return collect_markers(source.splitlines())
    markers: dict[int, frozenset[str]] = {}
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        codes = suppressed_codes(tok.string)
        if codes:
            line = tok.start[0]
            markers[line] = markers.get(line, frozenset()) | codes
    return markers


def filter_suppressed(
    findings: Iterable[Finding], lines: list[str]
) -> tuple[list[Finding], int]:
    """Drop findings whose source line suppresses their code.

    Returns ``(kept, n_suppressed)`` so reporters can surface how many
    violations were waived.
    """
    kept: list[Finding] = []
    n_suppressed = 0
    for f in findings:
        line = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        codes = suppressed_codes(line)
        if codes and ("*" in codes or f.code.upper() in codes):
            n_suppressed += 1
        else:
            kept.append(f)
    return kept, n_suppressed
