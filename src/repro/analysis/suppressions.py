"""Inline suppression comments: ``# repro: noqa[CODE]``.

A finding on line *n* is suppressed when line *n* carries a marker naming
its code (``# repro: noqa[R003]``, multiple codes comma-separated:
``# repro: noqa[R003,R007]``) or a blanket marker (``# repro: noqa``).
Matching is case-insensitive in the codes and tolerant of spaces.

The project convention (enforced socially, not mechanically) is that every
in-tree suppression carries a trailing justification, e.g.::

    if ms == 0.0:  # repro: noqa[R003] - exact-zero sentinel for empty ETC

Standard ``# noqa`` comments are *not* honoured — the marker is namespaced
on purpose so this layer never fights with flake8/ruff semantics.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.analysis.findings import Finding

__all__ = ["suppressed_codes", "filter_suppressed"]

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9 ,]+)\])?", re.IGNORECASE
)

#: sentinel meaning "every code is suppressed on this line"
_ALL = frozenset({"*"})


def suppressed_codes(line: str) -> frozenset[str]:
    """Codes suppressed by *line*'s comment, ``{"*"}`` for a blanket marker,
    empty when the line carries no marker."""
    m = _NOQA.search(line)
    if m is None:
        return frozenset()
    codes = m.group("codes")
    if codes is None:
        return _ALL
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


def filter_suppressed(
    findings: Iterable[Finding], lines: list[str]
) -> tuple[list[Finding], int]:
    """Drop findings whose source line suppresses their code.

    Returns ``(kept, n_suppressed)`` so reporters can surface how many
    violations were waived.
    """
    kept: list[Finding] = []
    n_suppressed = 0
    for f in findings:
        line = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        codes = suppressed_codes(line)
        if codes and ("*" in codes or f.code.upper() in codes):
            n_suppressed += 1
        else:
            kept.append(f)
    return kept, n_suppressed
