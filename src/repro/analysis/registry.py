"""Rule base class and registry.

Every checker subclasses :class:`Rule`, declares a unique ``code`` /
``name`` / ``severity`` / ``description``, and registers itself with the
:func:`register` decorator.  The runner instantiates one rule object per
file and calls :meth:`Rule.check` with the file's :class:`~repro.analysis.
context.FileContext`; the rule yields :class:`~repro.analysis.findings.
Finding` objects.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Fix, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.dataflow.project import ProjectContext

__all__ = ["Rule", "ProjectRule", "register", "all_rules", "get_rules", "rule_catalog"]


class Rule(ABC):
    """One static-analysis rule.

    Subclasses set the class attributes and implement :meth:`check`.  The
    :meth:`finding` helper stamps the rule's code/name/severity onto a
    message + AST node, so checker bodies stay terse.
    """

    #: unique rule code (``R\d{3}``); used by ``--select`` and ``noqa``
    code: str = ""
    #: short kebab-case rule name
    name: str = ""
    #: one-line description shown by ``repro lint --list-rules``
    description: str = ""
    severity: Severity = Severity.ERROR
    #: whether the rule applies to test code (determinism rules do not)
    applies_to_tests: bool = True

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        fix: Fix | None = None,
    ) -> Finding:
        return Finding(
            code=self.code,
            name=self.name,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
            fix=fix,
        )


class ProjectRule(Rule):
    """A rule that needs the whole project, not one file.

    Project rules run after the per-file summary phase, against the
    :class:`~repro.analysis.dataflow.project.ProjectContext` built from
    every analysed module.  Their findings still carry per-file locations,
    so suppression markers and ``applies_to_tests`` filtering work exactly
    as for local rules.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Project rules contribute nothing in the per-file phase."""
        return iter(())

    @abstractmethod
    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield findings across the whole project."""

    def finding_at(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        fix: Fix | None = None,
    ) -> Finding:
        """Construct a finding at an explicit location (no AST node)."""
        return Finding(
            code=self.code,
            name=self.name,
            message=message,
            path=path,
            line=line,
            col=col,
            severity=self.severity,
            fix=fix,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry.

    Codes must be unique — a collision is a programming error in the
    analysis package itself, so it raises immediately at import time.
    """
    if not cls.code or not cls.name:
        raise ValueError(f"rule {cls.__name__} must define code and name")
    if cls.code in _REGISTRY:
        raise ValueError(
            f"duplicate rule code {cls.code}: {cls.__name__} vs "
            f"{_REGISTRY[cls.code].__name__}"
        )
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """Code -> rule class for every registered rule (import side effect of
    :mod:`repro.analysis.checks`)."""
    import repro.analysis.checks  # noqa: F401  - registers the built-in rules

    return dict(sorted(_REGISTRY.items()))


def get_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (all of them when *select* is None).

    Raises :class:`KeyError` naming the first unknown code, so the CLI can
    turn it into a usage error (exit status 2).
    """
    registry = all_rules()
    if select is None:
        return [cls() for cls in registry.values()]
    rules = []
    for code in select:
        code = code.strip().upper()
        if not code:
            continue
        if code not in registry:
            raise KeyError(code)
        rules.append(registry[code]())
    return rules


def rule_catalog() -> list[tuple[str, str, str, str]]:
    """(code, name, severity, description) rows for ``--list-rules`` and docs."""
    return [
        (cls.code, cls.name, cls.severity.value, cls.description)
        for cls in all_rules().values()
    ]
