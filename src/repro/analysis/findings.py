"""Finding, severity and fix types of the static-analysis layer.

A :class:`Finding` is one rule violation at one source location.  Findings
are plain frozen dataclasses so reporters (:mod:`repro.analysis.reporters`)
and the CLI can serialize them without knowing anything about the rule that
produced them.

A finding may carry a :class:`Fix` — a machine-applicable repair made of
span-based :class:`TextEdit`\\ s.  Fixes ride the finding through the
incremental cache (they serialize with it), so ``repro lint --fix`` works
identically on warm and cold runs.  The applier lives in
:mod:`repro.analysis.fixes`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Severity", "FixSafety", "TextEdit", "Fix", "Finding"]


class Severity(enum.Enum):
    """How hard a rule's violations break the library's contracts.

    ``ERROR`` rules guard invariants whose violation corrupts results
    (replayability, pickle transport, purity); ``WARNING`` rules flag
    constructs that are usually — but not provably — wrong (exact float
    equality, swallowed exceptions).  Both fail the lint gate; the level is
    informational.
    """

    ERROR = "error"
    WARNING = "warning"


class FixSafety(enum.Enum):
    """How much trust a fix deserves.

    ``SAFE`` fixes are semantics-preserving repairs (or repairs whose new
    semantics are exactly what the rule demands) and are applied by a plain
    ``repro lint --fix``.  ``SUGGESTED`` fixes are scaffolds that need a
    human to finish the thought (e.g. the R007 re-raise skeleton changes
    control flow); they are only applied with ``--fix-suggested``.
    """

    SAFE = "safe"
    SUGGESTED = "suggested"


@dataclass(frozen=True)
class TextEdit:
    """One span replacement in a source file.

    Spans use the same coordinate system as findings: 1-based lines,
    0-based columns.  The span is half-open in document order — it covers
    ``[start, end)``; a zero-width span (``start == end``) is a pure
    insertion.  Edits always address the *original* file: the applier
    resolves every edit against unmodified coordinates.
    """

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "start_line": self.start_line, "start_col": self.start_col,
            "end_line": self.end_line, "end_col": self.end_col,
            "replacement": self.replacement,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TextEdit":
        return cls(
            start_line=int(d["start_line"]), start_col=int(d["start_col"]),
            end_line=int(d["end_line"]), end_col=int(d["end_col"]),
            replacement=str(d["replacement"]),
        )


@dataclass(frozen=True)
class Fix:
    """A machine-applicable repair for one finding.

    A fix is applied atomically: either every edit lands or none does (the
    applier skips whole fixes on overlap, and reverts the whole file if the
    patched text no longer parses).
    """

    #: what the fix does, in imperative mood (shown by ``--fix-dry-run``)
    description: str
    edits: tuple[TextEdit, ...]
    safety: FixSafety = FixSafety.SAFE

    def to_dict(self) -> dict[str, Any]:
        return {
            "description": self.description,
            "edits": [e.to_dict() for e in self.edits],
            "safety": self.safety.value,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Fix":
        return cls(
            description=str(d["description"]),
            edits=tuple(TextEdit.from_dict(e) for e in d["edits"]),
            safety=FixSafety(d["safety"]),
        )


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: rule code, e.g. ``"R001"``
    code: str
    #: short rule name, e.g. ``"legacy-global-rng"``
    name: str
    #: human-readable explanation of this specific violation
    message: str
    #: path of the offending file (as given to the runner)
    path: str
    #: 1-based line number
    line: int
    #: 0-based column offset
    col: int
    #: severity level of the rule that fired
    severity: Severity = Severity.ERROR
    #: machine-applicable repair, when the rule knows one
    fix: Fix | None = field(default=None, compare=True)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the ``--format json`` reporter).

        The ``fix`` key is emitted only when a fix is attached, so findings
        without one keep the exact pre-autofix schema (pinned by the golden
        reporter tests).
        """
        d: dict[str, Any] = {
            "code": self.code,
            "name": self.name,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
        }
        if self.fix is not None:
            d["fix"] = self.fix.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            code=d["code"],
            name=d["name"],
            message=d["message"],
            path=d["path"],
            line=d["line"],
            col=d["col"],
            severity=Severity(d["severity"]),
            fix=Fix.from_dict(d["fix"]) if d.get("fix") is not None else None,
        )

    def location(self) -> str:
        """``path:line:col`` prefix used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"
