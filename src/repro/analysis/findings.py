"""Finding and severity types of the static-analysis layer.

A :class:`Finding` is one rule violation at one source location.  Findings
are plain frozen dataclasses so reporters (:mod:`repro.analysis.reporters`)
and the CLI can serialize them without knowing anything about the rule that
produced them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How hard a rule's violations break the library's contracts.

    ``ERROR`` rules guard invariants whose violation corrupts results
    (replayability, pickle transport, purity); ``WARNING`` rules flag
    constructs that are usually — but not provably — wrong (exact float
    equality, swallowed exceptions).  Both fail the lint gate; the level is
    informational.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: rule code, e.g. ``"R001"``
    code: str
    #: short rule name, e.g. ``"legacy-global-rng"``
    name: str
    #: human-readable explanation of this specific violation
    message: str
    #: path of the offending file (as given to the runner)
    path: str
    #: 1-based line number
    line: int
    #: 0-based column offset
    col: int
    #: severity level of the rule that fired
    severity: Severity = Severity.ERROR

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the ``--format json`` reporter)."""
        return {
            "code": self.code,
            "name": self.name,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            code=d["code"],
            name=d["name"],
            message=d["message"],
            path=d["path"],
            line=d["line"],
            col=d["col"],
            severity=Severity(d["severity"]),
        )

    def location(self) -> str:
        """``path:line:col`` prefix used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"
