"""Static analysis of the repro codebase itself — ``repro lint``.

PRs 1–2 established invariants that ordinary tests can only sample:
bit-for-bit scalar/batched parity requires that no library code touches
global RNG state (seeded retry replay); the process-pool fan-out requires
that every submitted callable and returned exception pickles under spawn;
the boundary solvers require impact functions pure in ``pi``; the
fault-tolerant layer requires that no failure is silently swallowed.  This
package enforces those contracts *mechanically*, as an AST lint pass over
the source tree, so the invariants are checkable properties of the program
rather than conventions.

Rule codes (see :mod:`repro.analysis.checks`,
:mod:`repro.analysis.interproc` and ``docs/ANALYSIS.md``):

====  =========================  ==============================================
R001  legacy-global-rng          global-state RNG breaks seeded replay
R002  unseeded-default-rng       library RNGs must flow from an explicit seed
R003  float-equality             ``==``/``!=`` on measured float quantities
R004  unpicklable-pool-payload   lambdas/closures across the pool boundary
R005  exception-pickle-contract  kw-only exception ``__init__`` sans ``__reduce__``
R006  impact-mutates-pi          impact/feature functions must be pure in ``pi``
R007  swallowed-exception        broad except hiding failure information
R008  frozen-field-mutation      ``object.__setattr__`` outside ``__post_init__``
R009  deprecated-entry-point     removed/deprecated API still referenced
R101  tainted-seed-provenance    RNG seed not derivable from config/constants
R102  pool-shared-state-race     pool task reads state the submitter mutates
R103  aliased-perturbation       callee mutates a caller's ``pi`` in place
R104  unrecorded-failure-path    handler drops errors without a FailureRecord
R110  blocking-call-in-async     sleep/result/IO inside ``async def`` stalls loop
R111  await-straddle-race        shared state RMW across await / from pool task
R112  lock-order-cycle           conflicting lock acquisition orders (deadlock)
R113  fire-and-forget-task       discarded create_task handle loses exceptions
R114  context-propagation-gap    obs context not carried across executor hop
R120  per-element-ndarray-loop   Python loop where one numpy expression would do
R121  per-task-array-pickle      full ndarray pickled per submit in a task loop
R122  unhoisted-loop-invariant   expensive invariant call runs every iteration
R123  concat-in-loop             quadratic np.concatenate/append accumulation
R124  radius-cache-bypass        raw solve ignores the configured RadiusStore
W000  stale-suppression          ``noqa[CODE]`` marker that no longer fires
====  =========================  ==============================================

R1xx rules are *interprocedural*: they run on per-module dataflow
summaries joined into a project call graph
(:mod:`repro.analysis.dataflow`), so a hazard threaded through helper
functions or across modules is still caught.  The companion *runtime*
layer, :mod:`repro.analysis.sanitize`, audits numeric post-conditions
(NaN radii, negative radii at feasible origins, metric/minimum
mismatches) that no static rule can see.

Suppress a deliberate violation inline with ``# repro: noqa[CODE]`` plus a
justification.  Findings that carry a :class:`~repro.analysis.findings.Fix`
can be repaired mechanically — ``repro lint --fix`` (or
:func:`~repro.analysis.fixes.fix_paths`) applies the safe ones and re-lints
to a fixpoint; ``--fix --diff`` previews the edits.  Programmatic use::

    from repro.analysis import lint_paths
    report = lint_paths([Path("src")])
    assert report.clean, report.findings
"""

from __future__ import annotations

from repro.analysis.dataflow import ProjectContext, SummaryStore
from repro.analysis.findings import Finding, Fix, FixSafety, Severity, TextEdit
from repro.analysis.fixes import FileFixResult, FixOutcome, apply_fixes, fix_paths
from repro.analysis.registry import (
    ProjectRule,
    Rule,
    all_rules,
    get_rules,
    register,
    rule_catalog,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import (
    DEFAULT_EXCLUDES,
    LintReport,
    changed_python_files,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.suppressions import suppressed_codes

__all__ = [
    "Finding",
    "Severity",
    "Fix",
    "FixSafety",
    "TextEdit",
    "FileFixResult",
    "FixOutcome",
    "apply_fixes",
    "fix_paths",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rules",
    "rule_catalog",
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "changed_python_files",
    "DEFAULT_EXCLUDES",
    "ProjectContext",
    "SummaryStore",
    "render_text",
    "render_json",
    "suppressed_codes",
]
