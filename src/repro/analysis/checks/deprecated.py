"""Deprecation-hygiene rule: R009 internal use of deprecated entry points.

The PR-1 configuration redesign left compatibility shims behind —
``solver_options=`` (now raising after its deprecation cycle), plain dicts
passed to ``config=`` (still warning, one release behind) and the legacy
pool fan-out (``solve_radius_tasks`` / ``radius_task``, superseded by the
:class:`~repro.engine.backends.ExecutionBackend` protocol and
:func:`~repro.engine.fault.solve_radius_tasks_isolated`).  The shims exist
for *external* callers; internal code routing through them re-arms exactly
the migration the deprecation cycle is trying to finish.  R009 flags those
internal uses so the tree stays swept between releases.

Tests are exempt: exercising a shim's warning/raising behavior is their
job.  The one legitimate non-test use — the shim implementation and its
re-export for compatibility — carries an inline ``# repro: noqa[R009]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import FileContext, dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["DeprecatedEntryPointRule"]

#: legacy pool fan-out entry points (module-qualified), superseded by the
#: ExecutionBackend protocol
_LEGACY_POOL_FUNCS = frozenset({"solve_radius_tasks", "radius_task"})
_LEGACY_POOL_MODULES = frozenset({"repro.engine", "repro.engine.pool"})


@register
class DeprecatedEntryPointRule(Rule):
    """R009 — internal code routed through a deprecated compatibility shim."""

    code = "R009"
    name = "deprecated-entry-point"
    description = (
        "internal use of a deprecated entry point (solver_options=, dict "
        "config=, or the legacy pool fan-out); migrate to SolverConfig and "
        "the ExecutionBackend protocol — shims are for external callers"
    )
    severity = Severity.WARNING
    applies_to_tests = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        legacy_imports = self._legacy_imports(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
                continue
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "solver_options" and not self._is_none(kw.value):
                    yield self.finding(
                        ctx,
                        kw.value,
                        "solver_options= raises after its deprecation "
                        "cycle; pass config=SolverConfig(...)",
                    )
                elif kw.arg == "config" and isinstance(kw.value, ast.Dict):
                    yield self.finding(
                        ctx,
                        kw.value,
                        "dict literal passed to config= rides a deprecated "
                        "shim; pass config=SolverConfig(...)",
                    )
            name = dotted_name(node.func)
            if name is not None:
                tail = name.rsplit(".", 1)[-1]
                if tail in _LEGACY_POOL_FUNCS and (
                    name in legacy_imports or self._module_qualified(name)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"legacy pool entry point {tail}(); use "
                        "solve_radius_tasks_isolated over an "
                        "ExecutionBackend",
                    )

    def _check_import(
        self, ctx: FileContext, node: "ast.Import | ast.ImportFrom"
    ) -> Iterator[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module in _LEGACY_POOL_MODULES:
                for alias in node.names:
                    if alias.name in _LEGACY_POOL_FUNCS:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of legacy pool entry point "
                            f"{alias.name!r}; use the ExecutionBackend "
                            "protocol (repro.engine.backends)",
                        )

    @staticmethod
    def _legacy_imports(ctx: FileContext) -> set[str]:
        """Local names bound to a legacy pool function by a from-import."""
        names: set[str] = set()
        for local, (module, orig) in ctx.from_imports.items():
            if module in _LEGACY_POOL_MODULES and orig in _LEGACY_POOL_FUNCS:
                names.add(local)
        return names

    @staticmethod
    def _module_qualified(name: str) -> bool:
        head = name.rsplit(".", 1)[0] if "." in name else ""
        return head in ("pool", "engine") or head.endswith((".pool", ".engine"))

    @staticmethod
    def _is_none(node: ast.AST) -> bool:
        return isinstance(node, ast.Constant) and node.value is None
