"""Purity rule: R006 impact/feature callables must not mutate ``pi``.

The same perturbation vector is evaluated many times — by the boundary
minimizer's multi-starts, by pooled retry replays and by the Monte-Carlo
fallback — under the assumption that ``f(pi)`` is a pure function of its
argument.  An impact that writes into ``pi`` in place poisons every later
evaluation sharing that array (numpy passes views, not copies).  The rule
inspects any function with a parameter named ``pi`` (the library-wide
convention for perturbation vectors, after the paper's notation).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import FileContext, dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["ImpactPurityRule"]

#: ndarray/list/dict methods that mutate the receiver in place
_MUTATORS = frozenset(
    {
        "fill",
        "sort",
        "put",
        "resize",
        "setflags",
        "itemset",
        "partition",
        "append",
        "extend",
        "insert",
        "remove",
        "clear",
        "pop",
        "update",
        "setdefault",
    }
)

_PARAM = "pi"


def _root_name(node: ast.expr) -> str | None:
    """Leftmost name of a target chain: ``pi[0].x`` -> ``"pi"``."""
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register
class ImpactPurityRule(Rule):
    """R006 — in-place mutation of the ``pi`` argument."""

    code = "R006"
    name = "impact-mutates-pi"
    description = (
        "impact/feature functions must be pure in their perturbation "
        "argument pi; in-place writes poison pooled replays and the "
        "Monte-Carlo fallback, which re-evaluate the same array"
    )
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            a = func.args
            params = [*a.posonlyargs, *a.args, *a.kwonlyargs]
            if not any(p.arg == _PARAM for p in params):
                continue
            yield from self._check_body(ctx, func)

    def _check_body(
        self, ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # ``pi = pi.copy()`` (any plain rebinding) makes later writes local:
        # the blessed escape hatch.  Line-order approximation, no CFG.
        rebind_line = min(
            (
                n.lineno
                for n in ast.walk(func)
                if isinstance(n, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == _PARAM for t in n.targets
                )
            ),
            default=None,
        )
        for node in ast.walk(func):
            if rebind_line is not None and getattr(node, "lineno", 0) > rebind_line:
                continue
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    # plain rebinding (pi = ...) is fine; writing *into* the
                    # array (pi[...] = / pi.x = / pi[...] += ) is not
                    mutates = isinstance(
                        target, (ast.Subscript, ast.Attribute)
                    ) or (
                        isinstance(node, ast.AugAssign)
                        and isinstance(target, ast.Name)
                    )
                    if mutates and _root_name(target) == _PARAM:
                        yield self.finding(
                            ctx,
                            node,
                            f"function '{func.name}' writes into its pi "
                            "argument in place; copy first (pi = pi.copy()) "
                            "or compute without mutation",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, func, node)

    def _check_call(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.Call,
    ) -> Iterator[Finding]:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and _root_name(node.func.value) == _PARAM
        ):
            yield self.finding(
                ctx,
                node,
                f"function '{func.name}' calls the in-place mutator "
                f"pi.{node.func.attr}(); impacts must leave pi untouched",
            )
        for kw in node.keywords:
            if kw.arg == "out" and kw.value is not None:
                if dotted_name(kw.value) == _PARAM:
                    yield self.finding(
                        ctx,
                        node,
                        f"function '{func.name}' passes out=pi to a ufunc; "
                        "the result overwrites the shared perturbation vector",
                    )
