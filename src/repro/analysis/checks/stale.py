"""W000: stale suppression markers.

A ``# repro: noqa[CODE]`` marker earns its keep by suppressing a real
finding.  When the code it names no longer fires on that line (the
violation was fixed, the rule changed, or the code never existed), the
marker is dead weight that silently disables future findings — so the
runner flags it.

The detection itself lives in :mod:`repro.analysis.runner`, because it
needs the *raw* (pre-suppression) findings of every other rule: a marker
is stale only with respect to the rules that actually ran on its file.
This class exists so W000 appears in the rule catalog, participates in
``--select``, and can itself be suppressed — selecting W000 forces the
full rule set to run internally so staleness is always judged against
every rule.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Fix, Severity, TextEdit
from repro.analysis.registry import Rule, register
from repro.analysis.suppressions import _NOQA

__all__ = ["StaleSuppressionRule", "stale_marker_fix"]


@register
class StaleSuppressionRule(Rule):
    """W000: a ``# repro: noqa[CODE]`` marker that suppresses nothing."""

    code = "W000"
    name = "stale-suppression"
    description = "noqa[CODE] marker whose code no longer fires on its line"
    severity = Severity.WARNING
    applies_to_tests = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Findings are produced by the runner's suppression pass."""
        return iter(())

    def stale_finding(
        self,
        path: str,
        line: int,
        code: str,
        known: bool,
        line_text: str | None = None,
    ) -> Finding:
        """One stale-marker finding (called by the runner).

        With *line_text* (the marker's source line) the finding carries a
        fix that deletes the stale code from the marker — the whole comment
        when it is the only code listed.
        """
        why = (
            f"suppression for {code} but no {code} finding on this line"
            if known
            else f"suppression names unknown rule code {code}"
        )
        return Finding(
            code=self.code,
            name=self.name,
            message=f"stale marker: {why} — remove or update the noqa",
            path=path,
            line=line,
            col=0,
            severity=self.severity,
            fix=None if line_text is None else stale_marker_fix(line_text, line, code),
        )


def stale_marker_fix(line_text: str, line_no: int, code: str) -> Fix | None:
    """Edit removing *code* from the line's ``# repro: noqa[...]`` marker.

    The sole code on a marker takes the whole comment with it (justification
    text included, plus the whitespace separating it from the code).  One
    code among several is snipped out together with one adjacent comma, so
    the marker never degrades to the blanket ``noqa[]`` form.  Blanket
    markers (no bracket list) are left alone — W000 never targets them.
    """
    m = _NOQA.search(line_text)
    if m is None:
        return None
    group = m.group("codes")
    if group is None:
        return None
    parts = group.split(",")
    upper = [p.strip().upper() for p in parts]
    if code.upper() not in upper:
        return None
    if sum(1 for p in upper if p) == 1:
        start = m.start()
        while start > 0 and line_text[start - 1] in " \t":
            start -= 1
        edit = TextEdit(line_no, start, line_no, len(line_text), "")
        return Fix(
            description=f"remove stale noqa[{code}] marker", edits=(edit,)
        )
    i = upper.index(code.upper())
    base = m.start("codes")
    part_start = base + sum(len(p) + 1 for p in parts[:i])
    part_end = part_start + len(parts[i])
    if i > 0:
        span = (part_start - 1, part_end)  # take the preceding comma
    else:
        span = (part_start, part_end + 1)  # first code: take the comma after
    edit = TextEdit(line_no, span[0], line_no, span[1], "")
    return Fix(
        description=f"drop stale code {code} from the noqa marker",
        edits=(edit,),
    )
