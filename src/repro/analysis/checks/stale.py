"""W000: stale suppression markers.

A ``# repro: noqa[CODE]`` marker earns its keep by suppressing a real
finding.  When the code it names no longer fires on that line (the
violation was fixed, the rule changed, or the code never existed), the
marker is dead weight that silently disables future findings — so the
runner flags it.

The detection itself lives in :mod:`repro.analysis.runner`, because it
needs the *raw* (pre-suppression) findings of every other rule: a marker
is stale only with respect to the rules that actually ran on its file.
This class exists so W000 appears in the rule catalog, participates in
``--select``, and can itself be suppressed — selecting W000 forces the
full rule set to run internally so staleness is always judged against
every rule.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["StaleSuppressionRule"]


@register
class StaleSuppressionRule(Rule):
    """W000: a ``# repro: noqa[CODE]`` marker that suppresses nothing."""

    code = "W000"
    name = "stale-suppression"
    description = "noqa[CODE] marker whose code no longer fires on its line"
    severity = Severity.WARNING
    applies_to_tests = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Findings are produced by the runner's suppression pass."""
        return iter(())

    def stale_finding(self, path: str, line: int, code: str, known: bool) -> Finding:
        """One stale-marker finding (called by the runner)."""
        why = (
            f"suppression for {code} but no {code} finding on this line"
            if known
            else f"suppression names unknown rule code {code}"
        )
        return Finding(
            code=self.code,
            name=self.name,
            message=f"stale marker: {why} — remove or update the noqa",
            path=path,
            line=line,
            col=0,
            severity=self.severity,
        )
