"""Numeric-contract rule: R003 exact float equality on measured quantities.

Robustness radii, makespans and path latencies are outputs of floating-point
minimization and accumulation; comparing them with ``==``/``!=`` encodes an
exactness the solvers do not promise (the parity tests use bit-for-bit
comparison *deliberately*, via ``np.array_equal`` on identical code paths —
that is a different contract from ``a == b`` on independently computed
values).  The rule fires on equality comparisons where either operand names
one of those measured quantities, or where either operand is a *nonzero*
float literal.  Comparison against exactly ``0.0`` is exempt: testing
``denom == 0.0`` for a structurally degenerate case (zero normal vector,
zero heterogeneity) is the established idiom throughout the numeric code
and carries no rounding hazard — zero there is produced exactly, not
computed approximately.

Test code is exempt: the suite deliberately asserts exact equality on
hand-computable examples (tiny ETC matrices, stored config fields, the
bit-for-bit parity contract), which is an assertion strategy, not a
rounding bug.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import FileContext, dotted_name
from repro.analysis.findings import Finding, Fix, Severity, TextEdit
from repro.analysis.registry import Rule, register

__all__ = ["FloatEqualityRule"]

#: identifier substrings that denote solver-measured float quantities
_NUMERIC_TOKENS = (
    "radius",
    "radii",
    "makespan",
    "latency",
    "latencies",
    "robustness",
    "slack",
)


def _names_measured_quantity(node: ast.expr) -> bool:
    name = dotted_name(node)
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1].lower()
    return any(tok in tail for tok in _NUMERIC_TOKENS)


def _is_nonzero_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and type(node.value) is float
        and node.value != 0.0
    )


@register
class FloatEqualityRule(Rule):
    """R003 — ``==`` / ``!=`` on radii, makespans, latencies or float
    literals."""

    code = "R003"
    name = "float-equality"
    description = (
        "== / != on solver-measured floats (radii, makespans, latencies) or "
        "nonzero float literals; use math.isclose / np.isclose / "
        "pytest.approx (exact comparison against 0.0 — the degenerate-case "
        "sentinel idiom — is exempt)"
    )
    severity = Severity.WARNING
    applies_to_tests = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands[:-1], operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (left, right)
                if any(map(_is_nonzero_float_literal, pair)) or any(
                    map(_names_measured_quantity, pair)
                ):
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx,
                        node,
                        f"exact float comparison with '{sym}' on a measured "
                        "quantity; solver outputs carry rounding error — use "
                        "a tolerance-based comparison",
                        fix=self._isclose_fix(ctx, node),
                    )
                    break  # one finding per Compare is enough

    @staticmethod
    def _isclose_fix(ctx: FileContext, node: ast.Compare) -> Fix | None:
        """Rewrite ``a == b`` to ``np.isclose(a, b)`` (``!=`` gains ``not``).

        Only the simple two-operand shape is rewritten, and only when the
        file already binds numpy — the fix never adds an import.  Chained
        comparisons keep their finding but carry no fix.
        """
        if len(node.ops) != 1 or len(node.comparators) != 1:
            return None
        isclose = _isclose_expr(ctx)
        if isclose is None:
            return None
        left = ast.get_source_segment(ctx.source, node.left)
        right = ast.get_source_segment(ctx.source, node.comparators[0])
        end_line, end_col = node.end_lineno, node.end_col_offset
        if left is None or right is None or end_line is None or end_col is None:
            return None
        prefix = "" if isinstance(node.ops[0], ast.Eq) else "not "
        return Fix(
            description=f"rewrite exact comparison as {prefix}{isclose}(...)",
            edits=(
                TextEdit(
                    start_line=node.lineno,
                    start_col=node.col_offset,
                    end_line=end_line,
                    end_col=end_col,
                    replacement=f"{prefix}{isclose}({left}, {right})",
                ),
            ),
        )


def _isclose_expr(ctx: FileContext) -> str | None:
    """How this file spells ``numpy.isclose``, or None without a numpy
    binding."""
    for local, (module, orig) in ctx.from_imports.items():
        if module == "numpy" and orig == "isclose":
            return local
    for local, target in ctx.module_aliases.items():
        if target == "numpy":
            return f"{local}.isclose"
    return None
