"""Interprocedural rules R101–R104 (project phase).

These rules consume the :class:`~repro.analysis.dataflow.project.
ProjectContext` built from every module summary in the run; they see
across call boundaries, which the syntactic rules R001–R008 cannot.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.dataflow.project import ProjectContext
from repro.analysis.dataflow.summaries import PI_PARAMS, FunctionSummary, ModuleSummary
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ProjectRule, register

__all__ = [
    "SeedProvenanceRule",
    "PoolSharedStateRule",
    "PerturbationAliasingRule",
    "UnrecordedFailureRule",
]


@register
class SeedProvenanceRule(ProjectRule):
    """R101: an RNG is created from a seed that does not flow from a
    parameter, a ``SolverConfig``, a module constant or a ``utils.rng``
    helper — across function boundaries."""

    code = "R101"
    name = "seed-provenance-taint"
    description = (
        "RNG seed does not derive from a parameter, SolverConfig or "
        "utils.rng helper (interprocedural taint)"
    )
    severity = Severity.ERROR
    applies_to_tests = False

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules:
            for f in mod.functions.values():
                for site in f.rng_sites:
                    if site.derived and not project.rng_site_tainted(site.depends):
                        continue
                    yield self.finding_at(
                        mod.path,
                        site.line,
                        site.col,
                        f"{site.api}({site.seed_repr}) seeded from a value "
                        "that does not derive from a parameter, SolverConfig, "
                        "module constant or utils.rng helper — the result is "
                        "not replayable",
                    )


@register
class PoolSharedStateRule(ProjectRule):
    """R102: a callable submitted to a pool captures mutable module globals
    (or ``self`` attributes) that the submitting path also writes."""

    code = "R102"
    name = "pool-shared-state-race"
    description = (
        "callable submitted to a pool captures mutable state also written "
        "on the submitting path"
    )
    severity = Severity.ERROR
    applies_to_tests = False

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules:
            for f in mod.functions.values():
                for site in f.submit_sites:
                    if site.target is None:
                        continue
                    target = project.function(site.target)
                    if target is None:
                        continue
                    shared = project.transitive_global_reads(site.target) & set(
                        f.global_writes
                    )
                    if shared:
                        yield self.finding_at(
                            mod.path,
                            site.line,
                            site.col,
                            f"submits {site.target.rsplit('.', 1)[-1]} which "
                            f"reads mutable module global(s) "
                            f"{', '.join(sorted(shared))} written by the "
                            "submitting function — racy under pool fan-out",
                        )
                        continue
                    if site.target_kind == "self_attr" and f.is_method:
                        shared_self = set(target.self_reads) & set(f.self_writes)
                        if shared_self:
                            yield self.finding_at(
                                mod.path,
                                site.line,
                                site.col,
                                f"submits self.{site.target.rsplit('.', 1)[-1]}"
                                f" which reads self.{', self.'.join(sorted(shared_self))}"
                                " also written by the submitting method — racy"
                                " under pool fan-out",
                            )


@register
class PerturbationAliasingRule(ProjectRule):
    """R103: a ``pi``/``pi_orig`` array is passed to a callee that mutates
    the receiving parameter in place, or a transitively-mutated ``pi`` is
    returned/stored — the interprocedural extension of R006."""

    code = "R103"
    name = "perturbation-aliasing"
    description = (
        "pi/pi_orig mutated through a callee, or a mutated pi escapes by "
        "return/store (interprocedural R006)"
    )
    severity = Severity.ERROR
    applies_to_tests = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules:
            for qual, f in self._qualified(mod):
                yield from self._call_site_findings(project, mod, qual, f)
                yield from self._escape_findings(project, mod, qual, f)

    @staticmethod
    def _qualified(mod: ModuleSummary) -> Iterator[tuple[str, FunctionSummary]]:
        for fname, fsum in mod.functions.items():
            yield f"{mod.module}.{fname}", fsum

    def _call_site_findings(
        self,
        project: ProjectContext,
        mod: ModuleSummary,
        qual: str,
        f: FunctionSummary,
    ) -> Iterator[Finding]:
        for rec in f.calls:
            callee = project.function(rec.callee)
            if callee is None:
                continue
            for pos, caller_param in rec.pi_positions:
                cp = project.callee_param(callee, pos)
                if cp is not None and project.mutates_param(rec.callee, cp):
                    yield self.finding_at(
                        mod.path,
                        rec.line,
                        rec.col,
                        f"passes {caller_param!r} to "
                        f"{rec.callee.rsplit('.', 1)[-1]}() which mutates its "
                        f"{cp!r} parameter in place — the caller's "
                        "perturbation array is silently modified",
                    )
            for kw, caller_param in rec.pi_keywords:
                if kw in callee.params and project.mutates_param(rec.callee, kw):
                    yield self.finding_at(
                        mod.path,
                        rec.line,
                        rec.col,
                        f"passes {caller_param!r} as {kw}= to "
                        f"{rec.callee.rsplit('.', 1)[-1]}() which mutates it "
                        "in place — the caller's perturbation array is "
                        "silently modified",
                    )

    def _escape_findings(
        self,
        project: ProjectContext,
        mod: ModuleSummary,
        qual: str,
        f: FunctionSummary,
    ) -> Iterator[Finding]:
        local = {p for p, _ in f.mutated_params}
        for param, line in (*f.returned_params, *f.stored_params):
            if param not in PI_PARAMS:
                continue
            # local mutation + escape is R006's domain; only the *transitive*
            # (callee-induced) mutation is news here
            if param in local:
                continue
            if project.mutates_param(qual, param):
                yield self.finding_at(
                    mod.path,
                    line,
                    0,
                    f"{param!r} is mutated through a callee and then "
                    "returned/stored — aliasing hazard for the caller's "
                    "perturbation array",
                )


@register
class UnrecordedFailureRule(ProjectRule):
    """R104: an except-path in fault-handling code can complete without
    producing a ``FailureRecord`` when ``on_error="record"``."""

    code = "R104"
    name = "unrecorded-failure-path"
    description = (
        "except path in on_error-aware code can swallow a failure without "
        "a FailureRecord"
    )
    severity = Severity.ERROR
    applies_to_tests = False

    #: exception families whose silent disappearance loses a task failure;
    #: plain ``Exception``/``ImportError`` catches are R007's domain
    _INTERESTING = frozenset(
        {
            "ReproError",
            "SolverError",
            "SolverTimeoutError",
            "WorkerCrashError",
            "ValidationError",
            "InfeasibleAtOriginError",
            "BrokenProcessPool",
            "TimeoutError",
            "BaseException",
            "*bare*",
        }
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules:
            for f in mod.functions.values():
                if not f.has_on_error:
                    continue
                for h in f.handlers:
                    caught = {c.rsplit(".", 1)[-1] for c in h.catches}
                    if not caught & self._INTERESTING:
                        continue
                    if h.safe_local:
                        continue
                    if project.call_creates_failure_record(h.calls):
                        continue
                    yield self.finding_at(
                        mod.path,
                        h.line,
                        h.col,
                        f"except clause catching {', '.join(sorted(caught))} "
                        "neither re-raises, stores the exception, nor reaches "
                        "a FailureRecord — a task failure can vanish under "
                        "on_error='record'",
                    )
