"""Concurrency & async-safety rules R110–R114 (project phase).

The family consumes the concurrency facts extracted into each
:class:`~repro.analysis.dataflow.summaries.FunctionSummary` (``async def``
boundaries, suspension points, lock regions, task spawns, blocking calls,
obs-context use) and the three concurrency fixpoints on
:class:`~repro.analysis.dataflow.project.ProjectContext`
(:attr:`blocking_roots`, :meth:`transitive_locks`,
:attr:`uses_obs_context`).  Like the rest of the dataflow family the rules
are shape-based and lean toward fewer false positives: an unresolvable
receiver or callee never fires.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.dataflow.project import ProjectContext
from repro.analysis.dataflow.summaries import FunctionSummary, ModuleSummary
from repro.analysis.findings import Finding, Fix, Severity, TextEdit
from repro.analysis.registry import ProjectRule, register

__all__ = [
    "BlockingInAsyncRule",
    "AwaitStraddleRule",
    "LockOrderCycleRule",
    "FireAndForgetTaskRule",
    "ContextPropagationGapRule",
]


def _qualified(mod: ModuleSummary) -> Iterator[tuple[str, FunctionSummary]]:
    for fname, fsum in mod.functions.items():
        yield f"{mod.module}.{fname}", fsum


@register
class BlockingInAsyncRule(ProjectRule):
    """R110: a blocking call (``time.sleep``, a synchronous ``.result()``/
    pool wait, file I/O) runs inside an ``async def`` — directly, or through
    a chain of sync helpers — stalling the whole event loop."""

    code = "R110"
    name = "blocking-call-in-async"
    description = (
        "blocking call (sleep/result/join/IO) inside async code, directly "
        "or through sync helpers — stalls the event loop"
    )
    severity = Severity.ERROR
    applies_to_tests = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        roots = project.blocking_roots
        for mod in project.modules:
            for f in mod.functions.values():
                if not f.is_async:
                    continue
                for bc in f.blocking_calls:
                    yield self.finding_at(
                        mod.path,
                        bc.line,
                        bc.col,
                        f"blocking call {bc.api} inside 'async def "
                        f"{f.name}' stalls the event loop — await an async "
                        "equivalent or hand it to run_in_executor",
                    )
                for rec in f.calls:
                    callee = project.function(rec.callee)
                    desc = roots.get(rec.callee)
                    if callee is None or callee.is_async or desc is None:
                        continue
                    yield self.finding_at(
                        mod.path,
                        rec.line,
                        rec.col,
                        f"'async def {f.name}' calls sync helper "
                        f"{rec.callee.rsplit('.', 1)[-1]}() which blocks: "
                        f"{desc} — the event loop stalls for the duration",
                    )


@register
class AwaitStraddleRule(ProjectRule):
    """R111: shared mutable state (``self`` attributes, mutable module
    globals) is read before a suspension point and written after it without
    a lock covering both — or a pool-submitted callable read-modify-writes
    shared state without any lock."""

    code = "R111"
    name = "await-straddle-race"
    description = (
        "shared state read-modify-written across an await point, or from a "
        "pool-submitted callable, without a lock"
    )
    severity = Severity.ERROR
    applies_to_tests = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules:
            for f in mod.functions.values():
                if f.is_async:
                    yield from self._straddle_findings(mod, f)
                yield from self._submit_findings(project, mod, f)

    def _straddle_findings(
        self, mod: ModuleSummary, f: FunctionSummary
    ) -> Iterator[Finding]:
        reads: dict[str, list[int]] = {}
        writes: dict[str, list[int]] = {}
        for name, line, kind in f.shared_accesses:
            (reads if kind == "read" else writes).setdefault(name, []).append(line)
        flagged: set[tuple[str, int]] = set()
        for name, write_lines in writes.items():
            for b in write_lines:
                for a in reads.get(name, ()):
                    if a >= b:
                        continue
                    if not any(a < w <= b for w in f.await_lines):
                        continue
                    if any(
                        r.covers(a) and r.covers(b) for r in f.lock_regions
                    ):
                        continue
                    if (name, b) in flagged:
                        continue
                    flagged.add((name, b))
                    yield self.finding_at(
                        mod.path,
                        b,
                        0,
                        f"{name} is read (line {a}) and written (line {b}) "
                        "across an await point without a lock — another "
                        "task can interleave and the update is lost",
                    )

    def _submit_findings(
        self, project: ProjectContext, mod: ModuleSummary, f: FunctionSummary
    ) -> Iterator[Finding]:
        for site in f.submit_sites:
            if site.target is None:
                continue
            target = project.function(site.target)
            if target is None or target.lock_regions:
                continue
            shared = set(target.global_reads) & set(target.global_writes)
            if site.target_kind == "self_attr":
                shared |= set(target.self_reads) & set(target.self_writes)
            if shared:
                yield self.finding_at(
                    mod.path,
                    site.line,
                    site.col,
                    f"submits {site.target.rsplit('.', 1)[-1]} which "
                    f"read-modify-writes shared state "
                    f"({', '.join(sorted(shared))}) without a lock — "
                    "concurrent workers race on the update",
                )


@register
class LockOrderCycleRule(ProjectRule):
    """R112: the interprocedural lock-acquisition graph has a cycle — two
    code paths acquire the same locks in opposite orders (or a non-reentrant
    lock is re-acquired while held), a potential deadlock."""

    code = "R112"
    name = "lock-order-cycle"
    description = (
        "locks are acquired in conflicting orders across code paths "
        "(interprocedural) — potential deadlock"
    )
    severity = Severity.ERROR
    applies_to_tests = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        edges = self._edges(project)
        cyclic = self._cyclic_nodes(edges)
        emitted: set[tuple[str, int, int]] = set()
        for (held, acquired), sites in sorted(edges.items()):
            if held == acquired:
                in_cycle = True  # a self-edge is its own cycle
            else:
                in_cycle = (held, acquired) in cyclic
            if not in_cycle:
                continue
            for path, line, col in sites:
                if (path, line, col) in emitted:
                    continue
                emitted.add((path, line, col))
                if held == acquired:
                    msg = (
                        f"re-acquires non-reentrant lock '{held}' while "
                        "already holding it — self-deadlock"
                    )
                else:
                    msg = (
                        f"acquires '{acquired}' while holding '{held}', but "
                        "another path acquires them in the opposite order — "
                        "lock-order cycle (potential deadlock)"
                    )
                yield self.finding_at(path, line, col, msg)

    @staticmethod
    def _edges(
        project: ProjectContext,
    ) -> dict[tuple[str, str], list[tuple[str, int, int]]]:
        """held-lock -> acquired-lock edges with their acquisition sites."""
        edges: dict[tuple[str, str], list[tuple[str, int, int]]] = {}

        def add(held: str, acquired: str, path: str, line: int, col: int) -> None:
            if held == acquired and "rlock" in held.rsplit(".", 1)[-1].lower():
                return  # re-entrant by construction
            edges.setdefault((held, acquired), []).append((path, line, col))

        for mod in project.modules:
            for f in mod.functions.values():
                regions = f.lock_regions
                for outer in regions:
                    for inner in regions:
                        if inner is outer:
                            continue
                        nested = (
                            outer.line < inner.line
                            and inner.end_line <= outer.end_line
                        )
                        # two lock items on one `with a, b:` acquire in order
                        same_stmt = (
                            outer.line == inner.line
                            and outer.end_line == inner.end_line
                            and outer.col < inner.col
                        )
                        if nested or same_stmt:
                            add(
                                outer.name, inner.name,
                                mod.path, inner.line, inner.col,
                            )
                    for rec in f.calls:
                        if not outer.covers(rec.line):
                            continue
                        for lock in project.transitive_locks(rec.callee):
                            add(outer.name, lock, mod.path, rec.line, rec.col)
        return edges

    @staticmethod
    def _cyclic_nodes(
        edges: dict[tuple[str, str], list[tuple[str, int, int]]],
    ) -> set[tuple[str, str]]:
        """Edges whose endpoints sit on a directed cycle (mutual reach)."""
        adjacency: dict[str, set[str]] = {}
        for held, acquired in edges:
            adjacency.setdefault(held, set()).add(acquired)
            adjacency.setdefault(acquired, set())

        def reaches(src: str, dst: str) -> bool:
            seen = {src}
            stack = [src]
            while stack:
                node = stack.pop()
                for nxt in adjacency.get(node, ()):
                    if nxt == dst:
                        return True
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return False

        return {
            (a, b) for a, b in edges if a != b and reaches(b, a)
        }


@register
class FireAndForgetTaskRule(ProjectRule):
    """R113: the handle returned by ``asyncio.create_task``/
    ``ensure_future`` is discarded — the task may be garbage-collected
    mid-flight and its exception vanishes (async analogue of R104)."""

    code = "R113"
    name = "fire-and-forget-task"
    description = (
        "asyncio.create_task/ensure_future handle is discarded — the task "
        "can be collected mid-flight and its exception is lost"
    )
    severity = Severity.ERROR
    applies_to_tests = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules:
            for f in mod.functions.values():
                for spawn in f.task_spawns:
                    if not spawn.discarded:
                        continue
                    what = (
                        spawn.target.rsplit(".", 1)[-1] + "(...)"
                        if spawn.target is not None
                        else "a coroutine"
                    )
                    yield self.finding_at(
                        mod.path,
                        spawn.line,
                        spawn.col,
                        f"{spawn.api}({what}) handle is discarded — keep a "
                        "reference (or await/gather it) so the task cannot "
                        "be collected and its exception cannot vanish",
                        fix=Fix(
                            description="bind the task handle to _task",
                            edits=(
                                TextEdit(
                                    start_line=spawn.line,
                                    start_col=spawn.col,
                                    end_line=spawn.line,
                                    end_col=spawn.col,
                                    replacement="_task = ",
                                ),
                            ),
                        ),
                    )


@register
class ContextPropagationGapRule(ProjectRule):
    """R114: a callable that consumes ambient obs/contextvar state (spans,
    tracers, module-level ``ContextVar``\\ s) is handed across an executor
    boundary by code that never snapshots the current context — the state
    silently does not cross the boundary."""

    code = "R114"
    name = "context-propagation-gap"
    description = (
        "context-consuming callable crosses an executor boundary without a "
        "current_context()/copy_context() snapshot on the submitting path"
    )
    severity = Severity.ERROR
    applies_to_tests = False

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        uses = project.uses_obs_context
        for mod in project.modules:
            for f in mod.functions.values():
                if f.captures_context:
                    continue
                for site in f.submit_sites:
                    if site.target is None:
                        continue
                    if project.function(site.target) is None:
                        continue
                    if not uses.get(site.target, False):
                        continue
                    yield self.finding_at(
                        mod.path,
                        site.line,
                        site.col,
                        f"submits {site.target.rsplit('.', 1)[-1]} which "
                        "reads ambient obs/contextvar state, but the "
                        "submitting path never snapshots it "
                        "(current_context()/copy_context()) — the context "
                        "will not cross the executor boundary",
                    )
