"""Failure-transparency rule: R007 swallowed exceptions.

The fault-tolerant solve layer's contract is that *no failure disappears*:
every terminal error either raises, or becomes a structured
:class:`~repro.engine.fault.FailureRecord`.  A broad handler that neither
re-raises nor even looks at the exception (``except: pass``,
``except Exception: return False``) deletes failure information and — in a
degradation path — can turn a crashed solve into a silently wrong radius.

Heuristic: a broad handler (bare / ``Exception`` / ``BaseException``) is
*swallowing* when its body contains no ``raise`` and never references the
bound exception name.  Handlers that inspect or forward the exception
(``except Exception as exc: ...record(exc)``) pass; intentional probes
(pickle probing, best-effort teardown) carry a documented
``# repro: noqa[R007]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Fix, FixSafety, Severity, TextEdit
from repro.analysis.registry import Rule, register

__all__ = ["SwallowedExceptionRule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    if isinstance(t, ast.Name):
        return t.id in _BROAD
    if isinstance(t, ast.Tuple):
        return any(isinstance(e, ast.Name) and e.id in _BROAD for e in t.elts)
    return False


@register
class SwallowedExceptionRule(Rule):
    """R007 — broad except that ignores the exception entirely."""

    code = "R007"
    name = "swallowed-exception"
    description = (
        "bare/broad except whose body neither re-raises nor uses the bound "
        "exception discards failure information; record a FailureRecord, "
        "re-raise, or narrow the exception type"
    )
    severity = Severity.WARNING

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if self._handles_exception(node):
                continue
            what = "bare except" if node.type is None else "broad except"
            yield self.finding(
                ctx,
                node,
                f"{what} swallows the exception (no raise, bound name "
                "unused); failures must surface as exceptions or "
                "FailureRecords",
                fix=self._reraise_fix(node),
            )

    @staticmethod
    def _reraise_fix(handler: ast.ExceptHandler) -> Fix | None:
        """Append a bare ``raise`` at the end of the handler body.

        ``suggested``-only: re-raising changes control flow — the right
        repair may instead be a FailureRecord or a narrower exception type,
        so a human has to confirm the scaffold.
        """
        if not handler.body:
            return None  # pragma: no cover - empty handlers do not parse
        if handler.body[0].lineno == handler.lineno:
            return None  # single-line suite: no room for an indented raise
        last = handler.body[-1]
        end_line, end_col = last.end_lineno, last.end_col_offset
        if end_line is None or end_col is None:
            return None
        indent = handler.body[0].col_offset
        return Fix(
            description="re-raise at the end of the swallowing handler",
            edits=(
                TextEdit(
                    start_line=end_line,
                    start_col=end_col,
                    end_line=end_line,
                    end_col=end_col,
                    replacement="\n" + " " * indent + "raise",
                ),
            ),
            safety=FixSafety.SUGGESTED,
        )

    @staticmethod
    def _handles_exception(handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if bound and isinstance(node, ast.Name) and node.id == bound:
                return True
        return False
