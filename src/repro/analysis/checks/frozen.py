"""Immutability rule: R008 ``object.__setattr__`` outside ``__post_init__``.

Frozen dataclasses (:class:`~repro.core.config.SolverConfig`, mappings,
feature/result objects) are the library's value types: hashable cache keys
and safely shareable across threads and pool submissions.  The one blessed
loophole is ``object.__setattr__(self, ...)`` inside ``__post_init__``,
where a frozen dataclass normalizes its own fields during construction.
The same call anywhere else mutates a value type after it may already be a
cache key — so it is flagged wherever it appears.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import FileContext, dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["FrozenMutationRule"]


@register
class FrozenMutationRule(Rule):
    """R008 — frozen-field mutation outside ``__post_init__``."""

    code = "R008"
    name = "frozen-field-mutation"
    description = (
        "object.__setattr__ on dataclass instances is only legitimate "
        "inside __post_init__ (construction-time normalization); anywhere "
        "else it mutates a frozen value type that may already serve as a "
        "cache key"
    )
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._scan(ctx, ctx.tree, enclosing=None)

    def _scan(
        self, ctx: FileContext, node: ast.AST, enclosing: str | None
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            name = enclosing
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
            if isinstance(child, ast.Call):
                target = dotted_name(child.func)
                if target in ("object.__setattr__", "__setattr__") and (
                    enclosing != "__post_init__"
                ):
                    where = (
                        f"function '{enclosing}'" if enclosing else "module level"
                    )
                    yield self.finding(
                        ctx,
                        child,
                        f"object.__setattr__ at {where}; frozen fields may "
                        "only be written during __post_init__",
                    )
            yield from self._scan(ctx, child, name)
