"""Performance rules R120–R124 (project phase) guarding the numeric hot path.

The robustness-radius pipeline spends its time in a handful of shapes —
per-scenario radius solves, perturbation sweeps, Monte-Carlo batches — and
the difference between the vectorised and the naive form of each is easily
an order of magnitude.  This family consumes the performance facts
extracted into each :class:`~repro.analysis.dataflow.summaries.
FunctionSummary` (known-ndarray locals, loop regions, per-element loops,
loop-invariant expensive calls, loop accumulation sites, array-carrying
submit sites) plus the :attr:`~repro.analysis.dataflow.project.
ProjectContext.consults_radius_store` fixpoint, and flags the naive forms.

None of the rules apply to test files: tests and benchmarks legitimately
spell out naive reference loops to check the vectorised implementations
against.  Like the rest of the dataflow families the rules are shape-based
and lean toward fewer false positives — an unknown array, an unresolvable
callee, or an argument whose loop-variance cannot be established never
fires.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.dataflow.project import ProjectContext
from repro.analysis.dataflow.summaries import FunctionSummary
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ProjectRule, register

__all__ = [
    "ElementwiseLoopRule",
    "PerTaskArrayPickleRule",
    "UnhoistedInvariantRule",
    "ConcatInLoopRule",
    "RadiusCacheBypassRule",
]

#: callee tails that perform a raw (uncached) radius / metric solve
_RAW_SOLVER_TAILS = {
    "robustness_radius",
    "robustness_metric",
    "solve_radius_tasks_isolated",
}

#: parameter / attribute names that mean "a radius store is configured"
_STORE_NAMES = {"store", "radius_store", "cache", "radius_cache"}


@register
class ElementwiseLoopRule(ProjectRule):
    """R120: a Python ``for`` loop walks a known ndarray element by element
    (``for i in range(len(xs))`` indexing, or arithmetic on each scalar),
    paying interpreter dispatch per element where one vectorised numpy
    expression would do."""

    code = "R120"
    name = "per-element-ndarray-loop"
    description = (
        "per-element Python loop over a known ndarray — vectorise with a "
        "whole-array numpy expression"
    )
    severity = Severity.WARNING
    applies_to_tests = False

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules:
            for f in mod.functions.values():
                for el in f.element_loops:
                    yield self.finding_at(
                        mod.path,
                        el.line,
                        el.col,
                        f"Python loop processes ndarray '{el.array}' element "
                        f"by element ({el.detail}) — replace with a "
                        "vectorised numpy expression over the whole array",
                    )


@register
class PerTaskArrayPickleRule(ProjectRule):
    """R121: a loop submits work to an executor passing a known ndarray as a
    task argument, so the same large array is pickled once per task instead
    of once per pool (or sliced per task)."""

    code = "R121"
    name = "per-task-array-pickle"
    description = (
        "ndarray passed as a task argument from a per-task submit loop — "
        "pickled once per task; share it or pass slices"
    )
    severity = Severity.WARNING
    applies_to_tests = False

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules:
            for f in mod.functions.values():
                for site in f.submit_sites:
                    if not site.in_loop or not site.ndarray_args:
                        continue
                    arrays = ", ".join(f"'{a}'" for a in site.ndarray_args)
                    yield self.finding_at(
                        mod.path,
                        site.line,
                        site.col,
                        f"submit inside a loop passes ndarray {arrays} to "
                        "every task — each submit pickles the full array; "
                        "pass per-task slices or use an initializer to "
                        "share it once",
                    )


@register
class UnhoistedInvariantRule(ProjectRule):
    """R122: an expensive call (``np.linalg.*``, solver / engine
    construction, RNG creation) sits inside a loop although every argument
    is loop-invariant — the result is identical each iteration and the call
    belongs before the loop."""

    code = "R122"
    name = "unhoisted-loop-invariant"
    description = (
        "expensive call with loop-invariant arguments inside a loop — "
        "hoist it above the loop"
    )
    severity = Severity.WARNING
    applies_to_tests = False

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules:
            for f in mod.functions.values():
                for lc in f.loop_calls:
                    tail = lc.callee.rsplit(".", 1)[-1]
                    yield self.finding_at(
                        mod.path,
                        lc.line,
                        lc.col,
                        f"{tail}() has only loop-invariant arguments but "
                        f"runs every iteration of the loop at line "
                        f"{lc.loop_line} — hoist it above the loop",
                    )


@register
class ConcatInLoopRule(ProjectRule):
    """R123: an accumulator is rebound to ``np.concatenate``/``np.append``
    of itself inside a loop, reallocating and copying the whole array every
    iteration (quadratic growth). Collect parts in a list and concatenate
    once after the loop."""

    code = "R123"
    name = "concat-in-loop"
    severity = Severity.WARNING
    description = (
        "np.concatenate/np.append accumulation inside a loop reallocates "
        "every iteration — collect parts and concatenate once"
    )
    applies_to_tests = False

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for mod in project.modules:
            for f in mod.functions.values():
                for site in f.accum_sites:
                    yield self.finding_at(
                        mod.path,
                        site.line,
                        site.col,
                        f"'{site.name}' grows via np.{site.func} inside the "
                        f"loop at line {site.loop_line}, copying the whole "
                        "array each iteration — append parts to a list and "
                        "concatenate once after the loop",
                    )


@register
class RadiusCacheBypassRule(ProjectRule):
    """R124: a function has a radius store / cache configured (a ``store``
    parameter, a ``self.store``/``self.cache`` attribute, or a
    ``RadiusStore`` it constructed) yet performs a raw radius solve without
    it — or any helper it calls — ever probing the store, so every call
    recomputes what the store exists to memoise."""

    code = "R124"
    name = "radius-cache-bypass"
    description = (
        "raw radius solve in a function with a configured RadiusStore that "
        "is never consulted — probe the store first"
    )
    severity = Severity.WARNING
    applies_to_tests = False

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        consults = project.consults_radius_store
        for mod in project.modules:
            for fname, f in mod.functions.items():
                qual = f"{mod.module}.{fname}"
                if not self._store_configured(f):
                    continue
                if consults.get(qual, False):
                    continue
                for rec in f.calls:
                    tail = rec.callee.rsplit(".", 1)[-1]
                    if tail not in _RAW_SOLVER_TAILS:
                        continue
                    # a raw solve is also cleared when the solve itself is
                    # wrapped by a store-probing project helper
                    if consults.get(rec.callee, False):
                        continue
                    yield self.finding_at(
                        mod.path,
                        rec.line,
                        rec.col,
                        f"{tail}() recomputes a radius although a radius "
                        "store is configured here and never consulted — "
                        "probe store.get(...) before solving (or route "
                        "through the caching engine)",
                    )

    @staticmethod
    def _store_configured(f: FunctionSummary) -> bool:
        if any(p in _STORE_NAMES for p in f.params):
            return True
        if any(attr in _STORE_NAMES for attr in f.self_reads):
            return True
        return any(
            name.rsplit(".", 1)[-1] == "RadiusStore" for name in f.call_names
        )
