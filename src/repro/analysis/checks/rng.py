"""Determinism rules: R001 legacy global-state RNG, R002 unseeded Generator.

The engine's seeded retry replay (:mod:`repro.engine.fault`) and the
Monte-Carlo fallback are only reproducible when every random draw flows
from an explicit seed through :func:`repro.utils.rng.ensure_rng`.  A single
``np.random.rand()`` call — which mutates interpreter-global state — breaks
bit-for-bit replay silently, so it is banned from library code outright.
Test code is exempt: arbitrary inputs in tests may use whatever entropy
they like without affecting library determinism.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Fix, Severity, TextEdit
from repro.analysis.registry import Rule, register

__all__ = ["LegacyGlobalRngRule", "UnseededDefaultRngRule"]

#: numpy.random functions backed by the hidden global RandomState
_LEGACY_NP = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "gamma",
        "beta",
        "binomial",
        "poisson",
        "choice",
        "shuffle",
        "permutation",
        "get_state",
        "set_state",
    }
)


@register
class LegacyGlobalRngRule(Rule):
    """R001 — legacy global-state RNG use in library code."""

    code = "R001"
    name = "legacy-global-rng"
    description = (
        "np.random.seed/rand/... and the stdlib random module mutate global "
        "RNG state and silently break seeded retry replay; use "
        "repro.utils.rng.ensure_rng(seed) instead"
    )
    severity = Severity.ERROR
    applies_to_tests = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield self.finding(
                        ctx,
                        node,
                        "import from the stdlib 'random' module (global-state "
                        "RNG); thread a numpy Generator via ensure_rng(seed)",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved.startswith("numpy.random."):
                tail = resolved.rsplit(".", 1)[1]
                if tail in _LEGACY_NP:
                    yield self.finding(
                        ctx,
                        node,
                        f"legacy global-state RNG call {resolved}(); use "
                        "ensure_rng(seed) and Generator methods so seeded "
                        "replay stays bit-for-bit",
                    )
            elif resolved.startswith("random."):
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib global-state RNG call {resolved}(); use "
                    "ensure_rng(seed) and Generator methods instead",
                )


@register
class UnseededDefaultRngRule(Rule):
    """R002 — ``np.random.default_rng()`` without a seed in library code."""

    code = "R002"
    name = "unseeded-default-rng"
    description = (
        "np.random.default_rng() with no argument draws OS entropy; library "
        "code must accept a seed and pass it through (seed=None is then the "
        "caller's explicit choice)"
    )
    severity = Severity.ERROR
    applies_to_tests = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.resolve(node.func) != "numpy.random.default_rng":
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "unseeded default_rng(); accept a seed argument and "
                    "forward it (ensure_rng normalizes None/int/Generator)",
                    fix=self._seed_fix(node),
                )

    @staticmethod
    def _seed_fix(node: ast.Call) -> Fix | None:
        """Insert an explicit ``0`` seed just before the closing paren.

        A constant placeholder is the determinism-preserving repair: the
        call becomes replayable immediately, and threading a real ``seed``
        parameter through the enclosing API is then an ordinary refactor.
        """
        end_line, end_col = node.end_lineno, node.end_col_offset
        if end_line is None or end_col is None or end_col < 1:
            return None  # pragma: no cover - pre-3.8 AST shape
        return Fix(
            description="seed default_rng() with an explicit 0 placeholder",
            edits=(
                TextEdit(
                    start_line=end_line,
                    start_col=end_col - 1,
                    end_line=end_line,
                    end_col=end_col - 1,
                    replacement="0",
                ),
            ),
        )
