"""Built-in checkers.

Importing this package registers every rule with
:mod:`repro.analysis.registry` (each module applies the ``@register``
decorator at import time).
"""

from __future__ import annotations

from repro.analysis.checks.concur import (
    AwaitStraddleRule,
    BlockingInAsyncRule,
    ContextPropagationGapRule,
    FireAndForgetTaskRule,
    LockOrderCycleRule,
)
from repro.analysis.checks.deprecated import DeprecatedEntryPointRule
from repro.analysis.checks.excepts import SwallowedExceptionRule
from repro.analysis.checks.floats import FloatEqualityRule
from repro.analysis.checks.frozen import FrozenMutationRule
from repro.analysis.checks.interproc import (
    PerturbationAliasingRule,
    PoolSharedStateRule,
    SeedProvenanceRule,
    UnrecordedFailureRule,
)
from repro.analysis.checks.perf import (
    ConcatInLoopRule,
    ElementwiseLoopRule,
    PerTaskArrayPickleRule,
    RadiusCacheBypassRule,
    UnhoistedInvariantRule,
)
from repro.analysis.checks.pickle_safety import (
    ExceptionReduceRule,
    UnpicklableSubmitRule,
)
from repro.analysis.checks.purity import ImpactPurityRule
from repro.analysis.checks.rng import LegacyGlobalRngRule, UnseededDefaultRngRule
from repro.analysis.checks.stale import StaleSuppressionRule

__all__ = [
    "LegacyGlobalRngRule",
    "UnseededDefaultRngRule",
    "FloatEqualityRule",
    "UnpicklableSubmitRule",
    "ExceptionReduceRule",
    "ImpactPurityRule",
    "SwallowedExceptionRule",
    "FrozenMutationRule",
    "DeprecatedEntryPointRule",
    "SeedProvenanceRule",
    "PoolSharedStateRule",
    "PerturbationAliasingRule",
    "UnrecordedFailureRule",
    "BlockingInAsyncRule",
    "AwaitStraddleRule",
    "LockOrderCycleRule",
    "FireAndForgetTaskRule",
    "ContextPropagationGapRule",
    "ElementwiseLoopRule",
    "PerTaskArrayPickleRule",
    "UnhoistedInvariantRule",
    "ConcatInLoopRule",
    "RadiusCacheBypassRule",
    "StaleSuppressionRule",
]
