"""Pickle-safety rules: R004 unpicklable pool payloads, R005 exception
``__reduce__`` round-trips.

The engine fans numeric solves out over :class:`~concurrent.futures.
ProcessPoolExecutor` under the ``spawn`` start method, so every submitted
callable and every exception crossing back must pickle.  Lambdas and
closures never pickle; exception subclasses with keyword-only ``__init__``
parameters pickle only when they define ``__reduce__`` (the default
``Exception.__reduce__`` replays ``cls(*self.args)``, which drops
keyword-only attributes or raises ``TypeError`` outright).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import FileContext, dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["UnpicklableSubmitRule", "ExceptionReduceRule"]

#: engine fan-out entry points whose task payloads cross the pool boundary
_FANOUT_FUNCS = frozenset({"solve_radius_tasks", "solve_radius_tasks_isolated"})


def _collect_unpicklable_names(tree: ast.Module) -> set[str]:
    """Names bound to lambdas (anywhere) or to defs nested inside functions."""
    names: set[str] = set()

    class _Scope(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0

        def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
            if self.depth > 0:
                names.add(node.name)
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func

        def visit_Assign(self, node: ast.Assign) -> None:
            if isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            self.generic_visit(node)

    _Scope().visit(tree)
    return names


#: receiver spellings that identify ``.map`` as an executor fan-out (a bare
#: ``.map`` is too common an idiom to flag unconditionally)
_EXECUTOR_RECEIVERS = ("pool", "executor", "backend")


@register
class UnpicklableSubmitRule(Rule):
    """R004 — lambda/closure passed to ``submit``/``map`` or engine fan-out."""

    code = "R004"
    name = "unpicklable-pool-payload"
    description = (
        "lambdas and nested functions passed to ExecutionBackend/"
        "ProcessPoolExecutor submit or map, or to the engine fan-out, "
        "cannot pickle under spawn; define the callable at module level"
    )
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tainted = _collect_unpicklable_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_pool_entry(node):
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                if isinstance(value, ast.Lambda):
                    yield self.finding(
                        ctx,
                        value,
                        "lambda passed across the process-pool boundary; "
                        "lambdas never pickle — use a module-level function",
                    )
                elif isinstance(value, ast.Name) and value.id in tainted:
                    yield self.finding(
                        ctx,
                        value,
                        f"'{value.id}' is a nested function or lambda; it "
                        "cannot pickle under the spawn start method — move "
                        "it to module level",
                    )

    @staticmethod
    def _is_pool_entry(node: ast.Call) -> bool:
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "submit":
                return True
            if node.func.attr == "map":
                receiver = dotted_name(node.func.value)
                tail = (receiver or "").rsplit(".", 1)[-1]
                if tail in _EXECUTOR_RECEIVERS or tail.endswith(
                    tuple("_" + r for r in _EXECUTOR_RECEIVERS)
                ):
                    return True
        name = dotted_name(node.func)
        if name is None:
            return False
        return name.rsplit(".", 1)[-1] in _FANOUT_FUNCS


@register
class ExceptionReduceRule(Rule):
    """R005 — repro exception with keyword-only ``__init__`` but no
    ``__reduce__``."""

    code = "R005"
    name = "exception-pickle-contract"
    description = (
        "ReproError subclasses whose __init__ takes keyword-only parameters "
        "must define __reduce__, or the default Exception reduce drops "
        "their attributes (or fails) when a pool worker ships them back"
    )
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        exc_names = {"ReproError"}
        for local, (module, _orig) in ctx.from_imports.items():
            if module == "repro.exceptions":
                exc_names.add(local)

        classes = [
            n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)
        ]
        # propagate membership through same-file inheritance chains
        changed = True
        members: set[str] = set()
        while changed:
            changed = False
            for cls in classes:
                if cls.name in members:
                    continue
                bases = {b for b in map(dotted_name, cls.bases) if b}
                base_tails = {b.rsplit(".", 1)[-1] for b in bases}
                if base_tails & (exc_names | members):
                    members.add(cls.name)
                    changed = True

        for cls in classes:
            if cls.name not in members:
                continue
            init = self._method(cls, "__init__")
            if init is None:
                continue  # inherits a safe __init__
            if not init.args.kwonlyargs:
                continue  # cls(*self.args) round-trips by default
            if self._method(cls, "__reduce__") is not None:
                continue
            yield self.finding(
                ctx,
                cls,
                f"exception '{cls.name}' takes keyword-only __init__ "
                "parameters but defines no __reduce__; it will not "
                "round-trip pickle across the pool boundary",
            )

    @staticmethod
    def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                return stmt
        return None
