"""Counters, gauges and fixed-bucket histograms for the robustness pipeline.

A deliberately small, zero-dependency metrics core modeled on the Prometheus
data model: a :class:`MetricsRegistry` owns named metric families, each
family owns one child per label set, and the whole registry exports as JSON
(:meth:`MetricsRegistry.to_json`) or Prometheus text exposition format
(:meth:`MetricsRegistry.render_prometheus`).

The instrumented metric names (see ``docs/OBSERVABILITY.md`` for the full
taxonomy):

- ``repro_radius_solve_seconds`` — histogram of terminal per-task solve
  latency in the fault-isolated scheduler (labels: ``path=serial|pool``);
- ``repro_engine_evaluations_total`` — engine entry points
  (``kind=allocation|hiperd|population``);
- ``repro_cache_events_total`` — radius-cache ``event=hit|miss``;
- ``repro_retries_total`` / ``repro_timeouts_total`` /
  ``repro_crashes_total`` — fault-ladder events;
- ``repro_failure_records_total`` — terminal failure records by ``stage``;
- ``repro_pool_submits_total`` — futures submitted to the process pool;
- ``repro_sanitizer_events_total`` — sanitizer ``kind=violation|fp-event``.

The HTTP service (:mod:`repro.serve`) adds its own family, recorded
**unconditionally** (a server always wants its request metrics, and
``GET /metrics`` scrapes this registry):

- ``repro_serve_requests_total`` — responses by ``route`` and ``code``;
- ``repro_serve_request_seconds`` — request latency histogram by ``route``;
- ``repro_serve_batches_total`` — micro-batch flushes by
  ``reason=full|deadline|drain``;
- ``repro_serve_queue_depth`` — requests waiting in the batch queue;
- ``repro_serve_rejections_total`` — shed requests by
  ``reason=quota|queue_full|draining``.

Engine-side metrics stay gated on :func:`repro.obs.trace.enabled` at every
call site — a disabled run never touches the registry from the solve path.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Iterable

from repro.exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_metrics",
    "DEFAULT_LATENCY_BUCKETS",
]

#: fixed bucket upper bounds (seconds) of the solve-latency histograms;
#: spans 0.1 ms to 10 s, the observed range of SLSQP radius solves
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValidationError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (pool size, cache fill, ...)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the current value."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-boundary histogram (cumulative buckets, Prometheus-style)."""

    __slots__ = ("buckets", "counts", "sum", "count", "_lock")

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValidationError("histogram buckets must be a sorted non-empty sequence")
        self.buckets = bounds
        #: per-bucket (non-cumulative) observation counts; the final slot is
        #: the implicit ``+Inf`` bucket
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect_left(self.buckets, float(value))
        with self._lock:
            self.counts[idx] += 1
            self.sum += float(value)
            self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per bucket boundary (ending with ``+Inf``)."""
        out: list[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Bucket-boundary estimate of the ``q``-quantile (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValidationError(f"q must be in (0, 1], got {q!r}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        for bound, cum in zip(self.buckets + (float("inf"),), self.cumulative()):
            if cum >= target:
                return bound
        return float("inf")  # pragma: no cover - cumulative always reaches count


class MetricsRegistry:
    """Named metric families, each keyed by label set."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, dict[str, Any]] = {}

    def _family(self, name: str, kind: str, help: str, **extra: Any) -> dict[str, Any]:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = {"kind": kind, "help": help, "children": {}, **extra}
                self._families[name] = fam
            elif fam["kind"] != kind:
                raise ValidationError(
                    f"metric {name!r} already registered as {fam['kind']}, not {kind}"
                )
            return fam

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter child of ``name`` for this label set (created lazily)."""
        fam = self._family(name, "counter", help)
        key = _label_key(labels)
        with self._lock:
            child = fam["children"].get(key)
            if child is None:
                child = fam["children"][key] = Counter()
        return child

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge child of ``name`` for this label set."""
        fam = self._family(name, "gauge", help)
        key = _label_key(labels)
        with self._lock:
            child = fam["children"].get(key)
            if child is None:
                child = fam["children"][key] = Gauge()
        return child

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """The histogram child of ``name`` for this label set."""
        fam = self._family(name, "histogram", help, buckets=tuple(buckets))
        key = _label_key(labels)
        with self._lock:
            child = fam["children"].get(key)
            if child is None:
                child = fam["children"][key] = Histogram(fam["buckets"])
        return child

    # -- export --------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """JSON-ready dump of every family and child."""
        out: dict[str, Any] = {}
        with self._lock:
            families = {name: fam for name, fam in self._families.items()}
        for name, fam in sorted(families.items()):
            children = []
            for key, child in sorted(fam["children"].items()):
                entry: dict[str, Any] = {"labels": dict(key)}
                if fam["kind"] == "histogram":
                    entry.update(
                        buckets=list(child.buckets),
                        counts=list(child.counts),
                        sum=child.sum,
                        count=child.count,
                    )
                else:
                    entry["value"] = child.value
                children.append(entry)
            out[name] = {"kind": fam["kind"], "help": fam["help"], "children": children}
        return out

    def render_json(self) -> str:
        """:meth:`to_json` serialized with stable key order."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = {name: fam for name, fam in self._families.items()}
        for name, fam in sorted(families.items()):
            if fam["help"]:
                lines.append(f"# HELP {name} {fam['help']}")
            lines.append(f"# TYPE {name} {fam['kind']}")
            for key, child in sorted(fam["children"].items()):
                if fam["kind"] == "histogram":
                    cum = child.cumulative()
                    bounds = [repr(float(b)) for b in child.buckets] + ["+Inf"]
                    for bound, count in zip(bounds, cum):
                        labels = _render_labels(key, (("le", bound),))
                        lines.append(f"{name}_bucket{labels} {count}")
                    lines.append(f"{name}_sum{_render_labels(key)} {child.sum}")
                    lines.append(f"{name}_count{_render_labels(key)} {child.count}")
                else:
                    lines.append(f"{name}{_render_labels(key)} {child.value}")
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        """Drop every family (used by tests and :func:`reset_metrics`)."""
        with self._lock:
            self._families.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def reset_metrics() -> None:
    """Clear the default registry (test isolation)."""
    _REGISTRY.clear()
