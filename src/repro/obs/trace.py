"""Zero-dependency structured tracing for the robustness pipeline.

A :class:`Span` is one timed operation (an engine evaluation, a pooled
radius solve, a retry attempt); a :class:`Tracer` collects finished spans
into a bounded in-memory buffer.  The ambient *current span* is tracked
with :mod:`contextvars`, so nested instrumented calls parent correctly even
across threads, and :class:`SpanContext` — the ``(trace_id, span_id)`` pair
— is a plain picklable dataclass, so a parent span's identity can ride a
process-pool submission and the worker's spans re-attach to the right trace
when they are shipped back (:meth:`Tracer.ingest`).

Observability is **off by default**: every instrumentation point in the
engine/fault/pool/cache/sanitize layers guards on :func:`enabled` (one
module-global attribute read), and :func:`maybe_span` returns a shared
no-op context manager while disabled, so a disabled run executes the exact
same numeric code as an uninstrumented one — results are bit-for-bit
identical and the measured overhead is bounded by
``benchmarks/test_bench_obs.py``.

Typical use::

    from repro import obs

    with obs.observed() as tracer:
        engine.evaluate_population(problems, on_error="record")
    spans = tracer.export()          # list of dicts, JSON-ready
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.exceptions import ValidationError

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "TracedResult",
    "enabled",
    "enable",
    "disable",
    "observed",
    "get_tracer",
    "maybe_span",
    "current_context",
]

#: span buffer capacity of a default-constructed tracer; the oldest spans
#: are dropped first when a pathological run overflows it
DEFAULT_CAPACITY = 100_000

_ids = itertools.count(1)
_trace_ids = itertools.count(1)
_id_lock = threading.Lock()


def _next_span_id() -> str:
    with _id_lock:
        return f"s{next(_ids):08x}"


def _next_trace_id() -> str:
    with _id_lock:
        return f"t{next(_trace_ids):08x}-{os.getpid()}"


@dataclass(frozen=True)
class SpanContext:
    """Picklable identity of a span — crosses the process-pool boundary.

    Workers receive the submitting span's context inside the task payload,
    parent their own spans to ``span_id``, and return the finished spans to
    the parent process, where :meth:`Tracer.ingest` files them under the
    same ``trace_id``.
    """

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One timed, named, attributed operation."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    #: monotonic start, ns (:func:`time.perf_counter_ns` of this process)
    start_ns: int
    #: monotonic end, ns; 0 while the span is open
    end_ns: int = 0
    #: ``"ok"`` or ``"error"``
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)
    #: os pid the span was recorded in (chrome trace lane)
    pid: int = field(default_factory=os.getpid)

    @property
    def duration_s(self) -> float:
        """Span duration in seconds (0.0 while still open)."""
        if self.end_ns == 0:
            return 0.0
        return (self.end_ns - self.start_ns) / 1e9

    def set_attr(self, key: str, value: Any) -> None:
        """Attach one attribute (JSON-encodable values only by convention)."""
        self.attrs[key] = value

    def context(self) -> SpanContext:
        """The picklable identity of this span."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready encoding (also the cross-process wire format)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": int(self.start_ns),
            "end_ns": int(self.end_ns),
            "status": self.status,
            "attrs": dict(self.attrs),
            "pid": int(self.pid),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Decode a payload written by :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            start_ns=int(data["start_ns"]),
            end_ns=int(data.get("end_ns", 0)),
            status=str(data.get("status", "ok")),
            attrs=dict(data.get("attrs", {})),
            pid=int(data.get("pid", 0)),
        )


@dataclass(frozen=True)
class TracedResult:
    """A worker's return value plus the spans it recorded (picklable).

    Pool workers only produce this when the submission carried a
    :class:`SpanContext`; the supervisor unwraps it immediately and ingests
    the spans, so nothing downstream of the fault layer ever sees it.
    """

    result: Any
    spans: tuple[dict[str, Any], ...]


#: the ambient span context of the current logical thread of execution
_current: ContextVar[SpanContext | None] = ContextVar("repro_obs_current", default=None)


class Tracer:
    """Collector of finished spans (bounded, thread-safe appends).

    One tracer is active at a time (:func:`enable` installs it); spans from
    pool workers arrive as dicts via :meth:`ingest`.
    """

    def __init__(self, *, capacity: int = DEFAULT_CAPACITY) -> None:
        if int(capacity) <= 0:
            raise ValidationError("capacity must be >= 1")
        self._spans: deque[Span] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        #: spans dropped because the buffer was full
        self.dropped = 0
        self.trace_id = _next_trace_id()

    def __len__(self) -> int:
        return len(self._spans)

    # -- span lifecycle ------------------------------------------------------
    def start_span(
        self,
        name: str,
        *,
        parent: SpanContext | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; the parent defaults to the ambient current span."""
        if parent is None:
            parent = _current.get()
        return Span(
            name=name,
            trace_id=parent.trace_id if parent is not None else self.trace_id,
            span_id=_next_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            start_ns=time.perf_counter_ns(),
            attrs=dict(attrs),
        )

    def finish(self, span: Span, *, status: str = "ok") -> None:
        """Close a span and append it to the buffer."""
        if span.end_ns == 0:
            span.end_ns = time.perf_counter_ns()
        span.status = status
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Context manager: open, make current, finish (status from outcome)."""
        sp = self.start_span(name, **attrs)
        token = _current.set(sp.context())
        try:
            yield sp
        except BaseException:
            _current.reset(token)
            self.finish(sp, status="error")
            raise
        _current.reset(token)
        self.finish(sp)

    def event(self, name: str, **attrs: Any) -> Span:
        """A zero-duration instant span (retry markers, submissions)."""
        sp = self.start_span(name, **attrs)
        sp.end_ns = sp.start_ns
        self.finish(sp)
        return sp

    # -- cross-process -------------------------------------------------------
    def ingest(self, spans: Iterable[dict[str, Any]]) -> int:
        """File spans shipped back from a worker process; returns the count."""
        n = 0
        for payload in spans:
            with self._lock:
                if len(self._spans) == self._spans.maxlen:
                    self.dropped += 1
                self._spans.append(Span.from_dict(payload))
            n += 1
        return n

    # -- output --------------------------------------------------------------
    def spans(self) -> list[Span]:
        """A snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def export(self) -> list[dict[str, Any]]:
        """JSON-ready snapshot of the finished spans."""
        return [s.to_dict() for s in self.spans()]

    def clear(self) -> None:
        """Drop every buffered span."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0


class _NullSpan:
    """The do-nothing span yielded while observability is disabled."""

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _State:
    """Module-global on/off switch plus the installed tracer."""

    __slots__ = ("on", "tracer")

    def __init__(self) -> None:
        self.on = False
        self.tracer: Tracer | None = None


_STATE = _State()


def enabled() -> bool:
    """Whether observability is currently on (one attribute read)."""
    return _STATE.on


def get_tracer() -> Tracer | None:
    """The installed tracer (None while disabled)."""
    return _STATE.tracer


def enable(tracer: Tracer | None = None) -> Tracer:
    """Turn observability on, installing ``tracer`` (or a fresh one)."""
    if tracer is None:
        tracer = _STATE.tracer if _STATE.tracer is not None else Tracer()
    _STATE.tracer = tracer
    _STATE.on = True
    return tracer


def disable() -> None:
    """Turn observability off (the tracer and its spans are kept)."""
    _STATE.on = False


@contextmanager
def observed(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Enable observability for a block; restores the previous state after.

    ::

        with observed() as tracer:
            engine.evaluate_allocation(mappings, etc, tau)
        breakdown = stage_breakdown(tracer.spans())
    """
    prev_on, prev_tracer = _STATE.on, _STATE.tracer
    active = enable(tracer if tracer is not None else Tracer())
    try:
        yield active
    finally:
        _STATE.on = prev_on
        _STATE.tracer = prev_tracer


def maybe_span(name: str, **attrs: Any) -> Any:
    """A real span when observability is on, the shared no-op otherwise.

    The instrumentation idiom of the hot paths::

        with obs.maybe_span("engine.evaluate_allocation", n=len(pop)) as sp:
            ...
            sp.set_attr("cache_hits", hits)   # no-op while disabled
    """
    if not _STATE.on or _STATE.tracer is None:
        return _NULL_SPAN
    return _STATE.tracer.span(name, **attrs)


def current_context() -> SpanContext | None:
    """The picklable context of the ambient span (None when disabled/idle).

    This is what rides a process-pool submission: the worker passes it as
    ``parent=`` so its spans join the submitting trace.
    """
    if not _STATE.on:
        return None
    return _current.get()


def activate(ctx: SpanContext | None) -> Any:
    """Set the ambient span context (worker-side); returns the reset token."""
    return _current.set(ctx)


def deactivate(token: Any) -> None:
    """Undo :func:`activate`."""
    _current.reset(token)
