"""Observability layer: structured tracing, metrics, profiling hooks.

Three zero-dependency pieces, all **off by default** and threaded through
the engine, fault-isolated scheduler, process pool, radius cache, sanitizer
and the CLI:

- :mod:`repro.obs.trace` — spans with context-var parenting, picklable
  :class:`SpanContext` propagation across the process-pool boundary, and a
  bounded in-process :class:`Tracer`;
- :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms with
  JSON and Prometheus text exporters;
- :mod:`repro.obs.profile` — per-stage cost breakdown and Chrome
  ``trace_event`` export (``repro trace run --profile ...``).

Enable for a block::

    from repro import obs

    with obs.observed() as tracer:
        batch = engine.evaluate_population(problems, on_error="record")
    print(obs.render_breakdown(tracer.spans()))
    print(obs.get_registry().render_prometheus())

When disabled (the default), instrumentation points reduce to one global
flag read; results are bit-for-bit identical to an uninstrumented run and
the overhead is bounded by ``benchmarks/test_bench_obs.py`` (< 2%).
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_metrics,
)
from repro.obs.profile import (
    StageCost,
    chrome_trace,
    render_breakdown,
    stage_breakdown,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import (
    Span,
    SpanContext,
    TracedResult,
    Tracer,
    activate,
    current_context,
    deactivate,
    disable,
    enable,
    enabled,
    get_tracer,
    maybe_span,
    observed,
)

__all__ = [
    "Span",
    "SpanContext",
    "TracedResult",
    "Tracer",
    "enabled",
    "enable",
    "disable",
    "observed",
    "get_tracer",
    "maybe_span",
    "current_context",
    "activate",
    "deactivate",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_metrics",
    "DEFAULT_LATENCY_BUCKETS",
    "StageCost",
    "stage_breakdown",
    "render_breakdown",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]
