"""Profiling views over collected spans: per-stage cost breakdown and
Chrome ``trace_event`` export.

The breakdown aggregates spans by name (count, total, mean, max wall time),
which answers the profiling question directly: where do radius solves spend
their time, and which stage of the fault ladder dominates a degraded run.
The Chrome exporter emits the ``trace_event`` JSON object format — open the
file in ``chrome://tracing`` or Perfetto — with one complete event
(``"ph": "X"``) per closed span and one instant event (``"ph": "i"``) per
zero-duration marker span.

:func:`validate_chrome_trace` checks a trace document against the small
schema description shipped in ``tests/obs/golden/trace_schema.json`` (CI's
``trace-selfcheck`` step); the validator is hand-rolled so the check does
not require a jsonschema dependency.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.trace import Span

__all__ = [
    "StageCost",
    "stage_breakdown",
    "render_breakdown",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]


@dataclass(frozen=True)
class StageCost:
    """Aggregate wall-time cost of one span name."""

    name: str
    count: int
    total_s: float
    mean_s: float
    max_s: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready encoding."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
        }


def _as_spans(spans: Iterable[Span | dict[str, Any]]) -> list[Span]:
    return [s if isinstance(s, Span) else Span.from_dict(s) for s in spans]


def stage_breakdown(spans: Iterable[Span | dict[str, Any]]) -> list[StageCost]:
    """Aggregate spans by name, most expensive stage first."""
    totals: dict[str, list[float]] = {}
    for span in _as_spans(spans):
        acc = totals.setdefault(span.name, [0, 0.0, 0.0])
        acc[0] += 1
        acc[1] += span.duration_s
        acc[2] = max(acc[2], span.duration_s)
    out = [
        StageCost(
            name=name,
            count=int(n),
            total_s=total,
            mean_s=total / n if n else 0.0,
            max_s=mx,
        )
        for name, (n, total, mx) in totals.items()
    ]
    return sorted(out, key=lambda c: (-c.total_s, c.name))


def render_breakdown(spans: Iterable[Span | dict[str, Any]]) -> str:
    """The per-stage cost table printed by ``repro trace run --profile``."""
    from repro.utils.tables import format_table

    rows = [
        [c.name, c.count, f"{c.total_s * 1e3:.3f}", f"{c.mean_s * 1e3:.3f}", f"{c.max_s * 1e3:.3f}"]
        for c in stage_breakdown(spans)
    ]
    if not rows:
        return "no spans recorded"
    return format_table(["stage", "count", "total ms", "mean ms", "max ms"], rows)


def chrome_trace(spans: Iterable[Span | dict[str, Any]]) -> dict[str, Any]:
    """Convert spans to the Chrome ``trace_event`` JSON object format.

    Timestamps are microseconds relative to the earliest span in the batch
    (``chrome://tracing`` only needs a consistent origin).  The span tree is
    preserved through ``args`` (``span_id``/``parent_id``), and each process
    that contributed spans gets its own ``pid`` lane.
    """
    materialized = _as_spans(spans)
    origin_ns = min((s.start_ns for s in materialized), default=0)
    events: list[dict[str, Any]] = []
    for span in materialized:
        ts_us = (span.start_ns - origin_ns) / 1e3
        args = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "trace_id": span.trace_id,
            "status": span.status,
            **span.attrs,
        }
        if span.end_ns <= span.start_ns:
            events.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "ts": ts_us,
                    "pid": span.pid,
                    "tid": 0,
                    "s": "p",
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": ts_us,
                    "dur": (span.end_ns - span.start_ns) / 1e3,
                    "pid": span.pid,
                    "tid": 0,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Iterable[Span | dict[str, Any]], path: Path | str
) -> Path:
    """Write :func:`chrome_trace` output to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans), indent=2) + "\n", encoding="utf-8")
    return path


#: the schema shape accepted by :func:`validate_chrome_trace` when no file
#: is provided — kept in sync with ``tests/obs/golden/trace_schema.json``
DEFAULT_TRACE_SCHEMA: dict[str, Any] = {
    "required_top": ["traceEvents"],
    "allowed_ph": ["X", "i", "M"],
    "event_required": {
        "name": "string",
        "ph": "string",
        "ts": "number",
        "pid": "integer",
        "tid": "integer",
    },
    "duration_required_for_ph": ["X"],
}

_TYPE_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "object": lambda v: isinstance(v, dict),
}


def validate_chrome_trace(
    doc: Any, schema: dict[str, Any] | None = None
) -> list[str]:
    """Validate a trace document against a golden schema description.

    Returns a list of human-readable problems (empty = valid).  The schema
    is the small declarative dict format shipped at
    ``tests/obs/golden/trace_schema.json``: required top-level keys, the
    required fields and types of each event, the allowed phase codes, and
    which phases must carry a duration.
    """
    schema = schema if schema is not None else DEFAULT_TRACE_SCHEMA
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"trace document must be a JSON object, got {type(doc).__name__}"]
    for key in schema.get("required_top", []):
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        problems.append("traceEvents must be a list")
        return problems
    if not events:
        problems.append("traceEvents is empty (the traced run recorded nothing)")
    allowed_ph: Sequence[str] = schema.get("allowed_ph", [])
    requirements: dict[str, str] = schema.get("event_required", {})
    needs_dur: Sequence[str] = schema.get("duration_required_for_ph", [])
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{i}] is not an object")
            continue
        for field, type_name in requirements.items():
            if field not in event:
                problems.append(f"event[{i}] ({event.get('name')!r}) missing {field!r}")
            elif not _TYPE_CHECKS[type_name](event[field]):
                problems.append(
                    f"event[{i}].{field} should be {type_name}, "
                    f"got {type(event[field]).__name__}"
                )
        ph = event.get("ph")
        if allowed_ph and ph not in allowed_ph:
            problems.append(f"event[{i}].ph {ph!r} not in {list(allowed_ph)}")
        if ph in needs_dur:
            dur = event.get("dur")
            if not _TYPE_CHECKS["number"](dur) or dur < 0:
                problems.append(f"event[{i}] (ph=X) needs a non-negative 'dur'")
        ts = event.get("ts")
        if _TYPE_CHECKS["number"](ts) and ts < 0:
            problems.append(f"event[{i}].ts is negative")
    return problems
