"""Shared utilities: RNG plumbing, injectable clocks, validation helpers,
ASCII tables, JSON-safe float/array codecs."""

from repro.utils.clock import Clock, FakeClock, SystemClock, get_clock, set_clock, use_clock
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.serialization import (
    decode_array,
    decode_float,
    encode_array,
    encode_float,
)
from repro.utils.validation import (
    as_1d_float_array,
    as_2d_float_array,
    check_finite,
    check_in_range,
    check_nonnegative_int,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.tables import format_table, format_series

__all__ = [
    "Clock",
    "SystemClock",
    "FakeClock",
    "get_clock",
    "set_clock",
    "use_clock",
    "ensure_rng",
    "spawn_rngs",
    "as_1d_float_array",
    "as_2d_float_array",
    "check_finite",
    "check_in_range",
    "check_nonnegative_int",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "format_table",
    "format_series",
    "encode_float",
    "decode_float",
    "encode_array",
    "decode_array",
]
