"""Shared utilities: RNG plumbing, validation helpers, ASCII tables."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    as_1d_float_array,
    as_2d_float_array,
    check_finite,
    check_in_range,
    check_nonnegative_int,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.tables import format_table, format_series

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "as_1d_float_array",
    "as_2d_float_array",
    "check_finite",
    "check_in_range",
    "check_nonnegative_int",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "format_table",
    "format_series",
]
