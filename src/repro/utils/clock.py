"""Injectable monotonic clocks for deterministic timing measurements.

Wall-clock reads (``time.monotonic`` / ``time.perf_counter``) leak
nondeterminism into otherwise reproducible results: the fault-tolerant solve
layer stamps every :class:`~repro.engine.fault.FailureRecord` with a
``wall_time``, and the failure simulator reports how long a degraded run
took to execute.  Tests and resilience experiments that assert on those
timings need a clock they control.

:func:`get_clock` returns the process-wide active clock (a real
:class:`SystemClock` unless a test installed something else), and
:func:`use_clock` swaps in a replacement for a ``with`` block.
:class:`FakeClock` is a deterministic stand-in: every read returns the
current value and then advances it by a fixed ``tick``, so the k-th read of
a run always observes the same timestamp — making measured durations a pure
function of the call sequence.

The active clock only affects *measurement* (timestamps and durations);
sleeping and deadline waiting still happen in real time.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "SystemClock", "FakeClock", "get_clock", "set_clock", "use_clock"]


@runtime_checkable
class Clock(Protocol):
    """Anything that can report monotonic time in seconds."""

    def monotonic(self) -> float:
        """Seconds on a monotonically non-decreasing clock."""
        ...  # pragma: no cover - protocol

    def perf_counter(self) -> float:
        """Seconds on the highest-resolution monotonic clock available."""
        ...  # pragma: no cover - protocol


class SystemClock:
    """The real wall clock (delegates to :mod:`time`)."""

    def monotonic(self) -> float:
        """``time.monotonic()``."""
        return time.monotonic()

    def perf_counter(self) -> float:
        """``time.perf_counter()``."""
        return time.perf_counter()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SystemClock()"


class FakeClock:
    """A deterministic clock: each read returns then advances the time.

    Parameters
    ----------
    start:
        Initial reading, in seconds.
    tick:
        Amount every read advances the clock by.  With ``tick > 0`` repeated
        reads are strictly increasing (so duration measurements are positive
        and exactly reproducible); ``tick=0`` freezes time.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.001) -> None:
        if float(tick) < 0:
            raise ValueError(f"tick must be >= 0, got {tick!r}")
        self._now = float(start)
        self._tick = float(tick)
        #: number of reads served so far
        self.reads = 0

    def _read(self) -> float:
        now = self._now
        self._now += self._tick
        self.reads += 1
        return now

    def monotonic(self) -> float:
        """Current fake time; advances by ``tick``."""
        return self._read()

    def perf_counter(self) -> float:
        """Same stream as :meth:`monotonic` (one timeline, not two)."""
        return self._read()

    def advance(self, seconds: float) -> None:
        """Jump the clock forward without counting as a read."""
        if float(seconds) < 0:
            raise ValueError(f"cannot advance backwards ({seconds!r})")
        self._now += float(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FakeClock(now={self._now!r}, tick={self._tick!r})"


_ACTIVE: Clock = SystemClock()


def get_clock() -> Clock:
    """The process-wide active clock (default: :class:`SystemClock`)."""
    return _ACTIVE


def set_clock(clock: Clock | None) -> Clock:
    """Install ``clock`` (None restores the system clock); returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = SystemClock() if clock is None else clock
    return previous


@contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Swap the active clock for the duration of a ``with`` block."""
    previous = set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)
