"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int`` seed, or an existing
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalizes all three to a
``Generator`` so that experiments are reproducible end to end by passing a
single integer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or an
        existing ``Generator`` which is returned unchanged (so a caller can
        thread one stream through multiple library calls).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None | np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``n`` statistically independent generators.

    Useful when an experiment has several independent stochastic stages
    (workload generation, mapping generation, perturbation sampling) that
    should not share a stream, yet must all be reproducible from one seed.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    root = ensure_rng(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]
